"""The reprolint rule engine: findings, suppressions, reporters, gating.

reprolint is a self-contained static-analysis framework over the stdlib
``ast`` module, carrying the codebase-specific invariants of the compiled
serving stack (version-stamp discipline, lock discipline, dispatch-only
kernel access, ...) as machine-checked rules instead of reviewer memory.

Architecture:

* a :class:`Rule` owns one invariant: an id (``RLxxx``), a severity, a path
  scope (:meth:`Rule.applies_to`), and a per-file :class:`ast.NodeVisitor`
  factory (:meth:`Rule.visitor`) that reports :class:`Finding` objects
  through its :class:`FileContext`;
* :func:`lint_source` / :func:`lint_paths` parse each file once and run
  every applicable rule's visitor over the shared tree;
* findings are filtered against ``# reprolint: disable=RLxxx`` suppression
  comments (line, next-line, and file scope — see :class:`Suppressions`);
* reporters render text (``path:line:col: RLxxx message``) or JSON, and the
  CLI (:mod:`tools.reprolint.__main__`) exits non-zero on any unsuppressed
  finding so CI can gate on a clean run.

The engine deliberately has **zero third-party dependencies** so the lint
job needs no installs and stays fast.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Sequence

#: Severity levels, mildest first (ordering is meaningful for sorting).
SEVERITIES = ("convention", "warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    message: str
    path: str
    line: int
    col: int
    severity: str = "warning"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} [{self.severity}] {self.message}"


class FileContext:
    """Per-file state shared by every rule visitor: path, source, findings."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.findings: list[Finding] = []

    def report(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
    ) -> None:
        self.findings.append(
            Finding(
                rule_id=rule.rule_id,
                message=message,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                severity=rule.severity,
            )
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`rule_id` / :attr:`severity` / :attr:`description`
    and implement :meth:`visitor`; :meth:`applies_to` scopes the rule to the
    repository areas whose invariant it guards (match on the *posix-relative*
    path, so Windows checkouts behave identically).
    """

    rule_id: str = "RL000"
    severity: str = "warning"
    description: str = ""
    #: Path fragments (posix) this rule applies to; empty means every file.
    path_scopes: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if not self.path_scopes:
            return True
        posix = PurePosixPath(path).as_posix()
        return any(scope in posix for scope in self.path_scopes)

    def visitor(self, context: FileContext) -> ast.NodeVisitor:  # pragma: no cover
        raise NotImplementedError


_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-next-line|disable-file)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


class Suppressions:
    """``# reprolint: disable=...`` comments parsed out of one file.

    Three scopes:

    * ``# reprolint: disable=RL001`` — suppresses RL001 findings reported on
      that physical line;
    * ``# reprolint: disable-next-line=RL001`` — suppresses them on the line
      below (for statements whose own line has no room for a justification);
    * ``# reprolint: disable-file=RL001`` — suppresses them anywhere in the
      file (put it near the top with the justification).

    ``all`` is accepted as a wildcard code.  Suppression comments should
    always carry a justification in the surrounding context; the rule list
    in the README documents the expected form.
    """

    def __init__(self, source: str) -> None:
        self.by_line: dict[int, set[str]] = {}
        self.file_wide: set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "reprolint" not in line:
                continue
            for match in _SUPPRESS_RE.finditer(line):
                scope, codes_text = match.group(1), match.group(2)
                codes = {code.strip().upper() for code in codes_text.split(",")}
                if scope == "disable-file":
                    self.file_wide |= codes
                elif scope == "disable-next-line":
                    self.by_line.setdefault(lineno + 1, set()).update(codes)
                else:
                    self.by_line.setdefault(lineno, set()).update(codes)

    def covers(self, finding: Finding) -> bool:
        if "ALL" in self.file_wide or finding.rule_id in self.file_wide:
            return True
        codes = self.by_line.get(finding.line)
        if codes is None:
            return False
        return "ALL" in codes or finding.rule_id in codes


@dataclass
class LintResult:
    """Outcome of one lint run: kept findings plus suppression accounting."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files += other.files
        self.errors.extend(other.errors)

    def sort(self) -> None:
        key = lambda f: (f.path, f.line, f.col, f.rule_id)  # noqa: E731
        self.findings.sort(key=key)
        self.suppressed.sort(key=key)


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
) -> LintResult:
    """Lint one source string as if it lived at ``path`` (posix-relative).

    ``path`` drives the rules' scoping, so tests can exercise path-scoped
    rules on inline fixtures.  Syntax errors are reported as lint errors
    rather than raised: an unparseable file must fail the gate, not crash it.
    """
    result = LintResult(files=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.errors.append(f"{path}:{exc.lineno or 1}: syntax error: {exc.msg}")
        return result
    context = FileContext(path, source, tree)
    for rule in rules:
        if rule.applies_to(path):
            rule.visitor(context).visit(tree)
    suppressions = Suppressions(source)
    for finding in context.findings:
        if suppressions.covers(finding):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    result.sort()
    return result


def iter_python_files(targets: Iterable[str], root: Path) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, sorted."""
    seen: set[Path] = set()
    for target in targets:
        base = Path(target)
        if not base.is_absolute():
            base = root / base
        if base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            candidates = [base]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(
    targets: Iterable[str],
    rules: Sequence[Rule],
    root: Path | None = None,
) -> LintResult:
    """Lint every python file under ``targets`` (files or directories)."""
    root = Path.cwd() if root is None else Path(root)
    total = LintResult()
    for file_path in iter_python_files(targets, root):
        try:
            relative = file_path.resolve().relative_to(root.resolve())
            shown = relative.as_posix()
        except ValueError:
            shown = file_path.as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            total.errors.append(f"{shown}: unreadable: {exc}")
            total.files += 1
            continue
        total.extend(lint_source(source, shown, rules))
    total.sort()
    return total


# ---------------------------------------------------------------------- #
# Reporters
# ---------------------------------------------------------------------- #
def render_text(result: LintResult, rules: Sequence[Rule]) -> str:
    lines = [error for error in result.errors]
    lines += [finding.render() for finding in result.findings]
    summary = (
        f"reprolint: {len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, {result.files} file(s), "
        f"{len(rules)} rule(s)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult, rules: Sequence[Rule]) -> str:
    payload = {
        "findings": [finding.as_dict() for finding in result.findings],
        "suppressed": [finding.as_dict() for finding in result.suppressed],
        "errors": result.errors,
        "files": result.files,
        "rules": [
            {
                "rule": rule.rule_id,
                "severity": rule.severity,
                "description": rule.description,
            }
            for rule in rules
        ],
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def exit_code(result: LintResult) -> int:
    """0 on a clean run, 1 when any unsuppressed finding or error remains."""
    return 0 if result.ok else 1
