"""reprolint: AST-based invariant linter for the compiled serving stack.

Usage (CLI)::

    python -m tools.reprolint src tests benchmarks [--format text|json]

Usage (API)::

    from tools.reprolint import ALL_RULES, lint_paths, lint_source

    result = lint_paths(["src"], ALL_RULES)
    assert result.ok, result.findings

See :mod:`tools.reprolint.engine` for the framework and
:mod:`tools.reprolint.rules` for the rule battery (RL001-RL007).
"""

from .engine import (
    Finding,
    FileContext,
    LintResult,
    Rule,
    Suppressions,
    exit_code,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "FileContext",
    "LintResult",
    "Rule",
    "Suppressions",
    "exit_code",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
