"""The reprolint rule battery: codebase-specific invariants as AST checks.

Each rule guards one invariant the compiled serving stack depends on; the
README's "Invariants" section documents the rationale and the suppression
etiquette.  Rules are pure :mod:`ast` visitors — no imports of the package
under analysis — so the linter can run on a broken tree.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from .engine import FileContext, Rule

#: Constructor/lifecycle methods where cache/snapshot fields are *created*
#: rather than populated or mutated; the stamp/lock rules skip them.
_LIFECYCLE_METHODS = frozenset(
    {"__init__", "__post_init__", "__getstate__", "__setstate__", "__new__"}
)


def _attr_chain_names(node: ast.AST) -> Iterable[str]:
    """Every Name id and Attribute attr appearing in ``node``'s subtree."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


def _assign_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


def _is_reset_literal(value: ast.expr | None) -> bool:
    """Whether an assigned value just (re)initializes an empty container.

    ``self._memo = {}`` / ``= None`` / ``= []`` / ``= OrderedDict()`` are
    cache *creation*, not population: there is no data to stamp yet.
    """
    if value is None:
        return True
    if isinstance(value, ast.Constant) and value.value is None:
        return True
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.Tuple)) and not getattr(
        value, "keys", None
    ) and not getattr(value, "elts", None):
        return True
    if isinstance(value, ast.Call) and not value.args and not value.keywords:
        callee = value.func
        name = callee.attr if isinstance(callee, ast.Attribute) else getattr(callee, "id", "")
        return name in {"dict", "list", "set", "OrderedDict", "defaultdict", "WeakValueDictionary"}
    return False


# ---------------------------------------------------------------------- #
# RL001 — version-stamp discipline
# ---------------------------------------------------------------------- #
_CACHE_ATTR_RE = re.compile(
    r"(^|_)(memo|memos|cache|caches|cached|label|labels|table|tables|entries)(_|$)"
)

#: Attribute reads that resolve compiled cost data (the inputs every
#: cost-derived cache entry must be stamped against).
_COST_SOURCE_ATTRS = frozenset(
    {
        "array",
        "linear_array",
        "resolve_cost",
        "forward_weights",
        "reverse_weights",
        "build_cost_array",
        "base_weights",
        "base_slot_weights",
        "build_array",
        "_arrays",
        "_base",
    }
)

#: Identifiers whose presence shows the function participates in the
#: version-stamp protocol (reads a version counter, a stamp, or routes the
#: artifact through the self-evicting ``memo()`` cache).
_VERSION_MARKERS = frozenset(
    {
        "version",
        "_version",
        "cost_version",
        "weights_version",
        "built_version",
        "built_cost_version",
        "build_version",
        "validated_version",
        "topology_version",
        "built_topology_version",
        "cache_version",
        "stamp",
        "_stamp",
        "memo",
    }
)


class VersionStampRule(Rule):
    """RL001: cost-derived cache population must read a version stamp.

    Every memo/cache attribute in the compiled subsystem whose population
    reads a cost array must also read ``cost_version`` / ``weights_version``
    (or route through the version-stamped ``memo()``): an unstamped entry
    survives live-traffic patches and replays pre-update answers.
    """

    rule_id = "RL001"
    severity = "error"
    description = (
        "cost-derived cache populated without reading a version stamp "
        "(cost_version/weights_version/memo())"
    )
    path_scopes = ("network/compiled/", "service/cache.py", "routing/contraction.py")

    def visitor(self, context: FileContext) -> ast.NodeVisitor:
        rule = self

        class Visitor(ast.NodeVisitor):
            def _check_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
                if node.name in _LIFECYCLE_METHODS:
                    return
                cache_writes: list[tuple[ast.stmt, str]] = []
                reads_cost = False
                reads_version = False
                for child in ast.walk(node):
                    if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                        value = getattr(child, "value", None)
                        for target in _assign_targets(child):
                            name = _cache_target_name(target)
                            if name is not None and not _is_reset_literal(value):
                                cache_writes.append((child, name))
                    if isinstance(child, ast.Attribute) and child.attr in _COST_SOURCE_ATTRS:
                        reads_cost = True
                    if isinstance(child, ast.Attribute) and child.attr in _VERSION_MARKERS:
                        reads_version = True
                    elif isinstance(child, ast.Name) and child.id in _VERSION_MARKERS:
                        reads_version = True
                if cache_writes and reads_cost and not reads_version:
                    for statement, name in cache_writes:
                        context.report(
                            rule,
                            statement,
                            f"cache attribute {name!r} is populated from compiled cost "
                            "data without reading cost_version/weights_version or "
                            "routing through memo(); stale entries will replay after "
                            "live-traffic updates",
                        )

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self._check_function(node)
                self.generic_visit(node)

            def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
                self._check_function(node)
                self.generic_visit(node)

        def _cache_target_name(target: ast.expr) -> str | None:
            """The cache-ish attribute/name a store targets, if any."""
            if isinstance(target, ast.Subscript):
                target = target.value
            if isinstance(target, ast.Attribute) and _CACHE_ATTR_RE.search(target.attr):
                return target.attr
            if isinstance(target, ast.Name) and _CACHE_ATTR_RE.search(target.id):
                return target.id
            return None

        return Visitor()


# ---------------------------------------------------------------------- #
# RL002 — lock discipline on compiled-snapshot / hierarchy fields
# ---------------------------------------------------------------------- #
#: Fields holding a compiled snapshot or versioned hierarchy state; every
#: post-construction write must happen under the owning ``*_lock``.
_GUARDED_FIELDS = frozenset(
    {
        "_compiled",
        "_hierarchy",
        "_hierarchies",
        "_state",
        "_labels",
        "_landmark_tables",
        "_base",
    }
)


def _mentions_lock(node: ast.expr) -> bool:
    return any("lock" in name.lower() for name in _attr_chain_names(node))


class LockDisciplineRule(Rule):
    """RL002: compiled-snapshot/hierarchy fields are written under a lock.

    The compiled snapshot (``RoadNetwork._compiled``), the versioned weight
    state of a :class:`CompiledHierarchy`, and their sibling fields are read
    concurrently by the ``route_many`` thread pool; a write outside a
    ``with ..._lock:`` block can tear the snapshot/patch protocol.
    """

    rule_id = "RL002"
    severity = "error"
    description = (
        "compiled-snapshot/hierarchy field written outside a 'with ..._lock:' block"
    )
    path_scopes = ("repro/network/", "repro/service/")

    def visitor(self, context: FileContext) -> ast.NodeVisitor:
        rule = self

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self._with_depth = 0
                self._function_stack: list[str] = []

            def visit_With(self, node: ast.With) -> None:
                guarded = any(_mentions_lock(item.context_expr) for item in node.items)
                self._with_depth += 1 if guarded else 0
                self.generic_visit(node)
                self._with_depth -= 1 if guarded else 0

            def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
                self._function_stack.append(node.name)
                self.generic_visit(node)
                self._function_stack.pop()

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self._visit_function(node)

            def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
                self._visit_function(node)

            def _check_assign(self, node: ast.stmt) -> None:
                if self._with_depth > 0:
                    return
                if self._function_stack and self._function_stack[-1] in _LIFECYCLE_METHODS:
                    return
                for target in _assign_targets(node):
                    if isinstance(target, ast.Subscript):
                        target = target.value
                    if isinstance(target, ast.Attribute) and target.attr in _GUARDED_FIELDS:
                        context.report(
                            rule,
                            node,
                            f"write to guarded field {target.attr!r} outside a "
                            "'with ..._lock:' block; concurrent route_many readers "
                            "can observe a torn snapshot",
                        )

            def visit_Assign(self, node: ast.Assign) -> None:
                self._check_assign(node)
                self.generic_visit(node)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                self._check_assign(node)
                self.generic_visit(node)

            def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
                self._check_assign(node)
                self.generic_visit(node)

        return Visitor()


# ---------------------------------------------------------------------- #
# RL003 — hot paths reach kernels only through dispatch
# ---------------------------------------------------------------------- #
#: Kernel-layer modules the serving/traffic/baseline layers must never
#: import directly; ``dispatch`` (and the ``graph`` constants) are the API.
_KERNEL_MODULES = frozenset({"kernels", "sparse", "batch", "workspace", "ch"})


class DispatchOnlyRule(Rule):
    """RL003: service/traffic/baselines reach kernels only via ``dispatch``.

    Importing ``kernels`` / ``sparse`` / ``batch`` / ``ch`` (or the
    ``dict_*`` reference implementations) directly from the serving layers
    bypasses the fallback protocol, the ``compiled_disabled()`` escape
    hatch, and the version-stamp plumbing the dispatch layer carries.
    """

    rule_id = "RL003"
    severity = "error"
    description = (
        "kernel-layer import outside dispatch (use network.compiled.dispatch)"
    )
    path_scopes = ("repro/service/", "repro/traffic/", "repro/baselines/")

    def visitor(self, context: FileContext) -> ast.NodeVisitor:
        rule = self

        class Visitor(ast.NodeVisitor):
            def _module_tail(self, module: str | None) -> str:
                return (module or "").rsplit(".", 1)[-1]

            def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
                module = node.module or ""
                tail = self._module_tail(module)
                compiled_module = "compiled" in module.split(".")
                if compiled_module and tail in _KERNEL_MODULES:
                    context.report(
                        rule,
                        node,
                        f"direct import from kernel module {module!r}; route through "
                        "network.compiled.dispatch",
                    )
                for alias in node.names:
                    if alias.name.startswith("dict_"):
                        context.report(
                            rule,
                            node,
                            f"direct import of reference kernel {alias.name!r}; the "
                            "public routing functions dispatch to it automatically",
                        )
                    elif compiled_module and alias.name in _KERNEL_MODULES:
                        context.report(
                            rule,
                            node,
                            f"direct import of kernel module {alias.name!r}; route "
                            "through network.compiled.dispatch",
                        )
                self.generic_visit(node)

            def visit_Import(self, node: ast.Import) -> None:
                for alias in node.names:
                    parts = alias.name.split(".")
                    if "compiled" in parts and parts[-1] in _KERNEL_MODULES:
                        context.report(
                            rule,
                            node,
                            f"direct import of kernel module {alias.name!r}; route "
                            "through network.compiled.dispatch",
                        )
                self.generic_visit(node)

        return Visitor()


# ---------------------------------------------------------------------- #
# RL004 — dtype contracts in the compiled subsystem
# ---------------------------------------------------------------------- #
#: numpy constructors and the positional index their ``dtype`` occupies.
_NP_CONSTRUCTORS = {
    "asarray": 1,
    "array": 1,
    "zeros": 1,
    "empty": 1,
    "ones": 1,
    "fromiter": 1,
    "frombuffer": 1,
    "full": 2,
}


class DtypeContractRule(Rule):
    """RL004: numpy constructors in ``network/compiled/`` pin their dtype.

    The kernels exchange flat arrays across module boundaries (weights,
    offsets, labels); an implicit platform-dependent dtype (int32 vs int64,
    float upcasts) silently changes memory layout and comparison semantics,
    so every constructor spells its dtype.
    """

    rule_id = "RL004"
    severity = "warning"
    description = "numpy constructor without an explicit dtype in network/compiled/"
    path_scopes = ("network/compiled/",)

    def visitor(self, context: FileContext) -> ast.NodeVisitor:
        rule = self
        numpy_aliases = {"np", "numpy"}

        class Visitor(ast.NodeVisitor):
            def visit_Import(self, node: ast.Import) -> None:
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                self.generic_visit(node)

            def visit_Call(self, node: ast.Call) -> None:
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in numpy_aliases
                    and func.attr in _NP_CONSTRUCTORS
                ):
                    dtype_position = _NP_CONSTRUCTORS[func.attr]
                    has_kw = any(kw.arg == "dtype" for kw in node.keywords)
                    has_positional = len(node.args) > dtype_position
                    if not has_kw and not has_positional:
                        context.report(
                            rule,
                            node,
                            f"np.{func.attr}(...) without an explicit dtype; compiled "
                            "arrays must pin their dtype (platform defaults differ)",
                        )
                self.generic_visit(node)

        return Visitor()


# ---------------------------------------------------------------------- #
# RL005 — no silent exception swallowing in the serving layer
# ---------------------------------------------------------------------- #
class SilentExceptRule(Rule):
    """RL005: the serving layer never swallows exceptions silently.

    A ``try/except Exception: pass`` in ``service/`` or ``traffic/`` hides
    failed traffic drains and dead engines from ``ServiceStats``; failures
    must be converted into error responses, counted, or re-raised.
    """

    rule_id = "RL005"
    severity = "error"
    description = "broad except handler whose body only passes (serving layer)"
    path_scopes = ("repro/service/", "repro/traffic/")

    _BROAD = frozenset({"Exception", "BaseException"})

    def visitor(self, context: FileContext) -> ast.NodeVisitor:
        rule = self
        broad = self._BROAD

        def is_broad(handler: ast.ExceptHandler) -> bool:
            if handler.type is None:
                return True
            if isinstance(handler.type, ast.Name):
                return handler.type.id in broad
            if isinstance(handler.type, ast.Tuple):
                return any(
                    isinstance(element, ast.Name) and element.id in broad
                    for element in handler.type.elts
                )
            return False

        def is_silent(handler: ast.ExceptHandler) -> bool:
            for statement in handler.body:
                if isinstance(statement, (ast.Pass, ast.Continue)):
                    continue
                if isinstance(statement, ast.Expr) and isinstance(
                    statement.value, ast.Constant
                ):
                    continue  # docstring / Ellipsis
                return False
            return True

        class Visitor(ast.NodeVisitor):
            def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
                if is_broad(node) and is_silent(node):
                    context.report(
                        rule,
                        node,
                        "broad exception handler silently discards the failure; "
                        "convert it into an error response, count it in stats, or "
                        "narrow the exception type",
                    )
                self.generic_visit(node)

        return Visitor()


# ---------------------------------------------------------------------- #
# RL006 — no wall-clock time in kernels / benchmark loops
# ---------------------------------------------------------------------- #
class WallClockRule(Rule):
    """RL006: kernels and benchmarks time with ``perf_counter``, not wall clock.

    ``time.time()`` is subject to NTP slews and coarse resolution; a timing
    loop built on it produces unstable speedup ratios, and the CI regression
    gate compares exactly those ratios.
    """

    rule_id = "RL006"
    severity = "warning"
    description = "wall-clock time.time() in kernel/benchmark code (use perf_counter)"
    path_scopes = ("network/compiled/", "benchmarks/", "repro/routing/")

    def visitor(self, context: FileContext) -> ast.NodeVisitor:
        rule = self
        bare_time_imported = False

        class Visitor(ast.NodeVisitor):
            def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
                nonlocal bare_time_imported
                if node.module == "time" and any(
                    alias.name == "time" for alias in node.names
                ):
                    bare_time_imported = True
                    context.report(
                        rule,
                        node,
                        "'from time import time' in timing-sensitive code; import "
                        "time and use time.perf_counter()",
                    )
                self.generic_visit(node)

            def visit_Call(self, node: ast.Call) -> None:
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "time"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                ):
                    context.report(
                        rule,
                        node,
                        "time.time() in timing-sensitive code; use "
                        "time.perf_counter() for monotonic interval timing",
                    )
                elif (
                    bare_time_imported
                    and isinstance(func, ast.Name)
                    and func.id == "time"
                ):
                    context.report(
                        rule,
                        node,
                        "bare time() call in timing-sensitive code; use "
                        "time.perf_counter() for monotonic interval timing",
                    )
                self.generic_visit(node)

        return Visitor()


# ---------------------------------------------------------------------- #
# RL007 — no mutable default arguments
# ---------------------------------------------------------------------- #
class MutableDefaultRule(Rule):
    """RL007: no mutable default arguments anywhere in the tree.

    A ``def f(x, cache={})`` default is shared across calls — in a serving
    stack that is a cross-request data leak, not just a style problem.
    """

    rule_id = "RL007"
    severity = "error"
    description = "mutable default argument (shared across calls)"
    path_scopes = ()  # everywhere

    _MUTABLE_CALLS = frozenset({"dict", "list", "set", "bytearray"})

    def visitor(self, context: FileContext) -> ast.NodeVisitor:
        rule = self
        mutable_calls = self._MUTABLE_CALLS

        def is_mutable(default: ast.expr) -> bool:
            if isinstance(default, (ast.Dict, ast.List, ast.Set)):
                return True
            if isinstance(default, ast.Call) and not default.args and not default.keywords:
                callee = default.func
                return isinstance(callee, ast.Name) and callee.id in mutable_calls
            return False

        class Visitor(ast.NodeVisitor):
            def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if is_mutable(default):
                        context.report(
                            rule,
                            default,
                            f"mutable default argument in {node.name}(); use None "
                            "and create the container inside the function",
                        )

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self._check(node)
                self.generic_visit(node)

            def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
                self._check(node)
                self.generic_visit(node)

        return Visitor()


# ---------------------------------------------------------------------- #
# RL008 — every potentially-blocking wait in the serving layer is bounded
# ---------------------------------------------------------------------- #
class UnboundedBlockingRule(Rule):
    """RL008: blocking primitives in service/traffic must pass a timeout.

    The resilience layer's guarantees (deadline budgets, orderly ``close``,
    no-deadlock chaos suite) only hold if nothing in ``service/`` or
    ``traffic/`` can block forever.  ``queue.Queue.get``, ``Future.result``,
    ``Thread.join``, and ``Condition``/``Event`` ``.wait`` therefore always
    pass an explicit ``timeout`` (or ``block=False`` for queue gets) — an
    unbounded wait anywhere in these layers is a latent deadlock.
    """

    rule_id = "RL008"
    severity = "error"
    description = (
        "potentially-unbounded blocking call in the serving layer "
        "(pass an explicit timeout)"
    )
    path_scopes = ("repro/service/", "repro/traffic/")

    def visitor(self, context: FileContext) -> ast.NodeVisitor:
        rule = self

        def keyword_names(node: ast.Call) -> set[str]:
            return {kw.arg for kw in node.keywords if kw.arg is not None}

        def is_false_constant(expr: ast.expr) -> bool:
            return isinstance(expr, ast.Constant) and expr.value is False

        def receiver_mentions(node: ast.expr, needle: str) -> bool:
            return any(needle in name.lower() for name in _attr_chain_names(node))

        class Visitor(ast.NodeVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                func = node.func
                if isinstance(func, ast.Attribute):
                    self._check(node, func)
                self.generic_visit(node)

            def _check(self, node: ast.Call, func: ast.Attribute) -> None:
                method = func.attr
                keywords = keyword_names(node)
                if "timeout" in keywords:
                    return
                if method == "get":
                    # Only queue-like receivers: dict.get is everywhere and
                    # never blocks.  Non-blocking gets pass block=False.
                    if not receiver_mentions(func.value, "queue"):
                        return
                    blockless = any(
                        kw.arg == "block" and is_false_constant(kw.value)
                        for kw in node.keywords
                    ) or (len(node.args) >= 1 and is_false_constant(node.args[0]))
                    if blockless or len(node.args) >= 2:
                        return
                    context.report(
                        rule,
                        node,
                        "queue .get() without timeout/block=False can block a "
                        "drain or worker thread forever; pass an explicit timeout",
                    )
                elif method == "result":
                    # Future.result() blocks until completion; a positional
                    # arg is the timeout.
                    if node.args:
                        return
                    context.report(
                        rule,
                        node,
                        "Future.result() without a timeout can hang a batch on "
                        "one stuck worker; pass result(timeout=...)",
                    )
                elif method == "join":
                    # A zero-arg .join() is thread-shaped (str.join / os.path
                    # .join always take arguments); a positional arg is the
                    # thread timeout.
                    if node.args or node.keywords:
                        return
                    context.report(
                        rule,
                        node,
                        "Thread.join() without a timeout can hang shutdown on a "
                        "stuck thread; pass join(timeout=...)",
                    )
                elif method == "wait":
                    # Condition.wait / Event.wait; a positional arg is the
                    # timeout.
                    if node.args:
                        return
                    context.report(
                        rule,
                        node,
                        ".wait() without a timeout can strand a waiter if the "
                        "notify is lost; pass wait(timeout=...)",
                    )

        return Visitor()


# ---------------------------------------------------------------------- #
# RL009 — shared-memory segment lifecycle discipline
# ---------------------------------------------------------------------- #
class SharedMemoryLifecycleRule(Rule):
    """RL009: every ``SharedMemory(...)`` site follows the owner/worker split.

    The sharded serving stack leans on one etiquette: the *owner* process
    (``create=True``) both closes its mapping and unlinks the name; an
    *attaching* process only ever closes — a worker-side ``unlink`` deletes
    the segment under every other process.  The rule checks each direct
    constructor call:

    * ``create=True`` sites: the enclosing scope must handle both ``close``
      and ``unlink`` (failure paths included);
    * attach sites: the enclosing scope must handle ``close`` and must
      never call ``.unlink(...)``.

    Two structural escapes transfer the obligation instead: a call used as
    a ``with`` context manager (the statement closes it), and a call
    returned directly (``return SharedMemory(...)`` — ownership, and with
    it the lifecycle obligation, passes to the caller).
    """

    rule_id = "RL009"
    severity = "error"
    description = (
        "SharedMemory lifecycle violation (owner must close+unlink, "
        "attachers close-only)"
    )
    path_scopes = ()  # everywhere — tests and benchmarks leak segments too

    def visitor(self, context: FileContext) -> ast.NodeVisitor:
        rule = self

        def is_shared_memory_call(node: ast.Call) -> bool:
            func = node.func
            if isinstance(func, ast.Name):
                return func.id == "SharedMemory"
            return isinstance(func, ast.Attribute) and func.attr == "SharedMemory"

        def is_owner_call(node: ast.Call) -> bool:
            for kw in node.keywords:
                if kw.arg == "create":
                    return not (
                        isinstance(kw.value, ast.Constant) and kw.value.value is False
                    )
            return False

        class Scope:
            """One function (or the module) and its SharedMemory activity."""

            def __init__(self, node: ast.AST) -> None:
                self.node = node
                self.calls: list[tuple[ast.Call, bool]] = []  # (call, owner?)
                self.mentions_close = False
                self.mentions_unlink = False
                self.calls_unlink = False

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self._scopes: list[Scope] = []

            def visit_Module(self, node: ast.Module) -> None:
                self._in_scope(node)

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self._in_scope(node)

            def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
                self._in_scope(node)

            def _in_scope(self, node: ast.AST) -> None:
                scope = Scope(node)
                self._scopes.append(scope)
                self.generic_visit(node)
                self._scopes.pop()
                self._finish(scope)

            def visit_With(self, node: ast.With) -> None:
                # A with-managed constructor is closed by the statement;
                # only the unlink half of the owner obligation remains.
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call) and is_shared_memory_call(expr):
                        scope = self._scopes[-1] if self._scopes else None
                        if scope is not None and is_owner_call(expr):
                            scope.mentions_close = True
                            scope.calls.append((expr, True))
                self.generic_visit(node)

            def visit_Return(self, node: ast.Return) -> None:
                # return SharedMemory(...) — ownership (and the lifecycle
                # obligation) transfers to the caller; nothing to check here.
                self.generic_visit(node)

            def visit_Call(self, node: ast.Call) -> None:
                if is_shared_memory_call(node) and self._scopes:
                    scope = self._scopes[-1]
                    already = any(call is node for call, _ in scope.calls)
                    if not already and not self._is_transferred(node):
                        scope.calls.append((node, is_owner_call(node)))
                self.generic_visit(node)

            def _is_transferred(self, node: ast.Call) -> bool:
                """Directly returned or with-managed calls carry no local
                obligation (checked against the enclosing scope's body)."""
                scope_node = self._scopes[-1].node
                for stmt in ast.walk(scope_node):
                    if isinstance(stmt, ast.Return) and stmt.value is node:
                        return True
                    if isinstance(stmt, ast.With) and any(
                        item.context_expr is node for item in stmt.items
                    ):
                        return True
                return False

            def visit_Attribute(self, node: ast.Attribute) -> None:
                if self._scopes:
                    scope = self._scopes[-1]
                    lowered = node.attr.lower()
                    if "close" in lowered:
                        scope.mentions_close = True
                    if "unlink" in lowered:
                        scope.mentions_unlink = True
                self.generic_visit(node)

            def visit_Name(self, node: ast.Name) -> None:
                if self._scopes:
                    scope = self._scopes[-1]
                    lowered = node.id.lower()
                    if "close" in lowered:
                        scope.mentions_close = True
                    if "unlink" in lowered:
                        scope.mentions_unlink = True
                self.generic_visit(node)

            def _finish(self, scope: Scope) -> None:
                unlink_called = any(
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "unlink"
                    for child in ast.walk(scope.node)
                )
                for call, owner in scope.calls:
                    if owner:
                        if not scope.mentions_close or not scope.mentions_unlink:
                            context.report(
                                rule,
                                call,
                                "SharedMemory(create=True) owner site must close "
                                "its mapping and unlink the name (failure paths "
                                "included), or hand the handle off via "
                                "'return'/'with'",
                            )
                    else:
                        if unlink_called:
                            context.report(
                                rule,
                                call,
                                "attaching SharedMemory site also calls .unlink(); "
                                "only the creating owner may unlink — a worker-"
                                "side unlink deletes the segment under every "
                                "other process",
                            )
                        elif not scope.mentions_close:
                            context.report(
                                rule,
                                call,
                                "attaching SharedMemory site never closes its "
                                "mapping; attach sites are close-only (or hand "
                                "the handle off via 'return'/'with')",
                            )

        return Visitor()


# ---------------------------------------------------------------------- #
# RL010 — socket I/O in the serving layer runs on armed sockets only
# ---------------------------------------------------------------------- #
class SocketTimeoutRule(Rule):
    """RL010: socket operations in service/traffic carry explicit timeouts.

    The multi-node transport's liveness machinery — heartbeats, failover,
    journal replay — assumes no coordinator or worker thread can wedge on a
    dead peer.  That only holds if every blocking socket operation runs on
    a socket armed with a finite deadline.  Concretely, in ``service/`` and
    ``traffic/``:

    * a function calling ``recv``/``recv_into``/``recvfrom``/``accept``/
      ``connect``/``sendall`` on a socket-shaped receiver (its name mentions
      ``sock``, ``conn``, or ``listener``) must also call ``settimeout(...)``
      somewhere in that same function;
    * ``settimeout(None)`` — unbounded blocking mode — is banned outright;
    * ``select.select`` must pass its timeout argument;
    * ``socket.create_connection`` must pass ``timeout=``.

    The per-function granularity is deliberate: arming at construction and
    blocking three modules away hides the deadline from the reader at
    exactly the call that can hang, and refactors silently lose it.
    """

    rule_id = "RL010"
    severity = "error"
    description = (
        "socket operation without an explicit timeout in the serving layer"
    )
    path_scopes = ("repro/service/", "repro/traffic/")

    _SOCKET_METHODS = frozenset(
        {"recv", "recv_into", "recvfrom", "accept", "connect", "sendall"}
    )
    _RECEIVER_HINTS = ("sock", "conn", "listener")

    def visitor(self, context: FileContext) -> ast.NodeVisitor:
        rule = self

        def is_none_constant(expr: ast.expr) -> bool:
            return isinstance(expr, ast.Constant) and expr.value is None

        def keyword_names(node: ast.Call) -> set[str]:
            return {kw.arg for kw in node.keywords if kw.arg is not None}

        def socket_shaped(expr: ast.expr) -> bool:
            names = [name.lower() for name in _attr_chain_names(expr)]
            return any(hint in name for name in names for hint in rule._RECEIVER_HINTS)

        def arms_timeout(call: ast.Call) -> bool:
            func = call.func
            return (
                isinstance(func, ast.Attribute)
                and func.attr == "settimeout"
                and bool(call.args)
                and not is_none_constant(call.args[0])
            )

        def scope_calls(scope: ast.AST) -> list[ast.Call]:
            """Every call in this scope, not descending into nested defs."""
            calls: list[ast.Call] = []
            stack = list(ast.iter_child_nodes(scope))
            while stack:
                node = stack.pop()
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested functions are their own scope
                if isinstance(node, ast.Call):
                    calls.append(node)
                stack.extend(ast.iter_child_nodes(node))
            return calls

        class Visitor(ast.NodeVisitor):
            def visit_Module(self, node: ast.Module) -> None:
                self._scan(node)
                self.generic_visit(node)

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self._scan(node)
                self.generic_visit(node)

            def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
                self._scan(node)
                self.generic_visit(node)

            def _scan(self, scope: ast.AST) -> None:
                calls = scope_calls(scope)
                armed = any(arms_timeout(call) for call in calls)
                for call in calls:
                    func = call.func
                    if not isinstance(func, ast.Attribute):
                        continue
                    method = func.attr
                    if method == "settimeout":
                        if call.args and is_none_constant(call.args[0]):
                            context.report(
                                rule,
                                call,
                                "settimeout(None) puts the socket in unbounded "
                                "blocking mode; arm a finite timeout instead",
                            )
                    elif (
                        method == "select"
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "select"
                    ):
                        if len(call.args) < 4 and "timeout" not in keyword_names(call):
                            context.report(
                                rule,
                                call,
                                "select.select() without a timeout argument can "
                                "block forever; pass a finite timeout",
                            )
                    elif method == "create_connection":
                        if len(call.args) < 2 and "timeout" not in keyword_names(call):
                            context.report(
                                rule,
                                call,
                                "socket.create_connection() without timeout= "
                                "waits out the OS connect timeout (minutes); "
                                "pass an explicit timeout",
                            )
                    elif method in rule._SOCKET_METHODS and socket_shaped(func.value):
                        if not armed:
                            context.report(
                                rule,
                                call,
                                f"socket .{method}() in a function that never "
                                "arms a timeout; call settimeout(...) on the "
                                "socket before blocking I/O",
                            )

        return Visitor()


class DurabilityDisciplineRule(Rule):
    """RL011: durable-write discipline in the crash-consistency layer.

    The durability package and the model persistence module are the two
    places whose entire contract is "a crash cannot lose acknowledged
    data"; sloppy file handling there is silent data loss waiting for a
    power cut.  In ``service/durability/`` and ``service/persistence.py``:

    * a function calling ``os.replace(...)`` / ``os.rename(...)`` (the
      publish step of write-then-rename) must call ``os.fsync(...)`` — or a
      named fsync helper — *lexically earlier* in the same function: the
      rename is atomic in the namespace but says nothing about the data;
    * a file handle produced by ``open`` / ``os.fdopen`` / ``gzip.open`` /
      ``gzip.GzipFile`` / ``tempfile.NamedTemporaryFile`` must either be
      the context expression of a ``with`` statement or be assigned
      directly to a ``self.`` attribute (a long-lived handle an owner
      closes); anything else leaks the handle on the first exception;
    * bare ``open(...).write(...)``-style call chains are banned outright —
      the handle is unreachable the moment the statement ends, so it can
      neither be flushed deterministically nor closed on error.

    Factory functions that intentionally hand ownership to a caller (e.g.
    the injectable ``opener`` hooks) suppress with a justification — see
    the suppression etiquette in the README.
    """

    rule_id = "RL011"
    severity = "error"
    description = (
        "durable-write discipline: fsync before rename-publish, "
        "context-managed (or owner-held) file handles"
    )
    path_scopes = ("repro/service/durability/", "repro/service/persistence.py")

    _OPENER_ATTRS = frozenset({"open", "fdopen", "GzipFile", "NamedTemporaryFile"})

    def visitor(self, context: FileContext) -> ast.NodeVisitor:
        rule = self

        def is_opener(call: ast.Call) -> bool:
            func = call.func
            if isinstance(func, ast.Name) and func.id == "open":
                return True
            if not isinstance(func, ast.Attribute) or func.attr not in rule._OPENER_ATTRS:
                return False
            # os.open returns a raw fd (paired with os.close/os.fdopen),
            # not a file object — the handle rules don't apply to it.
            return not (isinstance(func.value, ast.Name) and func.value.id == "os" and func.attr == "open")

        def opener_label(call: ast.Call) -> str:
            func = call.func
            return func.id if isinstance(func, ast.Name) else func.attr  # type: ignore[union-attr]

        def is_fsync(call: ast.Call) -> bool:
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr == "fsync":
                return True
            # A dedicated helper (e.g. _fsync_dir) counts: the name carries
            # the intent and greps identically.
            return isinstance(func, ast.Name) and "fsync" in func.id.lower()

        def is_publish(call: ast.Call) -> bool:
            func = call.func
            return (
                isinstance(func, ast.Attribute)
                and func.attr in {"replace", "rename"}
                and isinstance(func.value, ast.Name)
                and func.value.id == "os"
            )

        def scope_nodes(scope: ast.AST) -> list[ast.AST]:
            """Every node in this scope, not descending into nested defs."""
            nodes: list[ast.AST] = []
            stack = list(ast.iter_child_nodes(scope))
            while stack:
                node = stack.pop()
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested functions are their own scope
                nodes.append(node)
                stack.extend(ast.iter_child_nodes(node))
            return nodes

        class Visitor(ast.NodeVisitor):
            def visit_Module(self, node: ast.Module) -> None:
                self._scan(node)
                self.generic_visit(node)

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self._scan(node)
                self.generic_visit(node)

            def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
                self._scan(node)
                self.generic_visit(node)

            def _scan(self, scope: ast.AST) -> None:
                nodes = scope_nodes(scope)
                calls = [node for node in nodes if isinstance(node, ast.Call)]
                # Handles considered owned: `with <opener>(...) ...` items
                # and `self.<attr> = <opener>(...)` assignments.
                managed: set[int] = set()
                for node in nodes:
                    if isinstance(node, (ast.With, ast.AsyncWith)):
                        for item in node.items:
                            managed.add(id(item.context_expr))
                    elif isinstance(node, ast.Assign):
                        owned = any(
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            for target in node.targets
                        )
                        if owned:
                            managed.add(id(node.value))
                fsync_lines = sorted(
                    call.lineno for call in calls if is_fsync(call)
                )
                chained: set[int] = set()
                for call in calls:
                    func = call.func
                    if (
                        isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Call)
                        and is_opener(func.value)
                    ):
                        chained.add(id(func.value))
                        context.report(
                            rule,
                            call,
                            f"bare {opener_label(func.value)}(...).{func.attr}(...) "
                            "chain: the handle is unreachable after this "
                            "statement — it can neither be fsynced nor closed "
                            "on error; use a with block",
                        )
                for call in calls:
                    if is_publish(call):
                        if not any(line < call.lineno for line in fsync_lines):
                            func_attr = call.func.attr  # type: ignore[union-attr]
                            context.report(
                                rule,
                                call,
                                f"os.{func_attr}() publishes data that was "
                                "never fsynced: the rename is atomic in the "
                                "namespace but a power loss can still surface "
                                "a truncated file; fsync the handle first",
                            )
                    elif (
                        is_opener(call)
                        and id(call) not in managed
                        and id(call) not in chained
                    ):
                        context.report(
                            rule,
                            call,
                            f"file handle from {opener_label(call)}(...) is "
                            "neither context-managed (with block) nor stored "
                            "on a self. attribute with owner-side close(); a "
                            "crash here leaks it un-flushed",
                        )

        return Visitor()


#: The default rule battery, in id order.
ALL_RULES: tuple[Rule, ...] = (
    VersionStampRule(),
    LockDisciplineRule(),
    DispatchOnlyRule(),
    DtypeContractRule(),
    SilentExceptRule(),
    WallClockRule(),
    MutableDefaultRule(),
    UnboundedBlockingRule(),
    SharedMemoryLifecycleRule(),
    SocketTimeoutRule(),
    DurabilityDisciplineRule(),
)
