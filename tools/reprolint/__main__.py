"""CLI entry point: ``python -m tools.reprolint [paths...] [options]``.

Exits 0 on a clean run and 1 when any unsuppressed finding (or parse error)
remains, so CI jobs and pre-commit hooks can gate on it directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import exit_code, lint_paths, render_json, render_text
from .rules import ALL_RULES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant linter for the compiled serving stack",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root for relative paths (default: current directory)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule battery and exit",
    )
    args = parser.parse_args(argv)

    rules = ALL_RULES
    if args.select:
        wanted = {code.strip().upper() for code in args.select.split(",") if code.strip()}
        unknown = wanted - {rule.rule_id for rule in ALL_RULES}
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = tuple(rule for rule in ALL_RULES if rule.rule_id in wanted)

    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id} [{rule.severity}] {rule.description}")
        return 0

    root = Path(args.root) if args.root else Path.cwd()
    missing = [
        target
        for target in args.paths
        if not (Path(target) if Path(target).is_absolute() else root / target).exists()
    ]
    if missing:
        parser.error(f"path(s) not found: {', '.join(missing)}")

    result = lint_paths(args.paths, rules, root=root)
    renderer = render_json if args.format == "json" else render_text
    print(renderer(result, rules))
    return exit_code(result)


if __name__ == "__main__":
    sys.exit(main())
