"""Repository tooling (static analysis, maintenance scripts)."""
