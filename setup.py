"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` keeps working on minimal offline environments whose
setuptools cannot build PEP 660 editable wheels (no ``wheel`` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
