"""Routing on the region graph (Section VI).

Case 1: both endpoints lie inside regions.  Same-region requests are answered
from inner-region paths (most traversed first) with a fastest-path fallback.
Cross-region requests first find a *region path* on the region graph — the
search greedily follows region edges that bring it geometrically closer to the
destination region, using a direct edge whenever one exists — and then maps
the region path back to a road-network path by stitching the region edges'
concrete paths together (fastest-path connectors fill any gaps).

Case 2: at least one endpoint is outside all regions.  A fastest path between
the endpoints is computed; the first and last region-covered vertices on it
select the source / destination regions, and the final answer is the fastest
prefix + the Case-1 path + the fastest suffix.  When no or only one candidate
region is touched, the fastest path itself is returned.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import NoPathError, RegionGraphError
from ..network.road_network import RoadNetwork, VertexId
from ..network.spatial import equirectangular_m
from ..regions.region import RegionId
from ..regions.region_graph import RegionEdge, RegionGraph
from ..routing.dijkstra import fastest_path
from ..routing.path import Path
from ..routing.preference_dijkstra import preference_dijkstra

if TYPE_CHECKING:  # pragma: no cover
    from ..preferences.model import PreferenceVector


@dataclass(frozen=True)
class RouteDiagnostics:
    """How a routing request was answered (used in evaluation breakdowns)."""

    case: str
    """``"in-region-same"``, ``"in-region"``, ``"in-out-region"``, ``"out-region"``,
    ``"fallback-fastest"``, ``"cost-override"`` (service-level override), or
    ``"degraded-stale"`` (resilience layer served a stale cached route)."""
    region_hops: int = 0
    used_b_edges: int = 0
    served_cost_version: int | None = None
    """For ``"degraded-stale"`` answers: the network cost version the served
    path was computed under (``None`` elsewhere) — consumers can tell exactly
    how stale a degraded route is."""


class RegionRouter:
    """Answers (source, destination) requests using a fitted region graph."""

    def __init__(self, region_graph: RegionGraph, max_region_hops: int = 64) -> None:
        self._graph = region_graph
        self._network = region_graph.network
        self._max_region_hops = max_region_hops

    # ------------------------------------------------------------------ #
    def route(self, source: VertexId, destination: VertexId) -> Path:
        """Recommend a path; see :meth:`route_with_diagnostics`."""
        path, _ = self.route_with_diagnostics(source, destination)
        return path

    def route_with_diagnostics(
        self, source: VertexId, destination: VertexId
    ) -> tuple[Path, RouteDiagnostics]:
        """Recommend a path and report which routing case applied."""
        if source == destination:
            return Path.of([source]), RouteDiagnostics(case="in-region-same")

        region_s = self._graph.region_of(source)
        region_d = self._graph.region_of(destination)

        if region_s is not None and region_d is not None:
            if region_s == region_d:
                return self._route_same_region(source, destination, region_s)
            return self._route_between_regions(source, destination, region_s, region_d)
        return self._route_case2(source, destination, region_s, region_d)

    # ------------------------------------------------------------------ #
    # Case 1 — same region
    # ------------------------------------------------------------------ #
    def _route_same_region(
        self, source: VertexId, destination: VertexId, region_id: RegionId
    ) -> tuple[Path, RouteDiagnostics]:
        best_path: Path | None = None
        best_count = 0
        for inner, count in self._graph.inner_paths(region_id):
            vertices = inner.vertices
            if source in vertices and destination in vertices:
                si = vertices.index(source)
                di = vertices.index(destination, si) if destination in vertices[si:] else -1
                if di > si and count > best_count:
                    best_path = Path(vertices=vertices[si : di + 1])
                    best_count = count
        if best_path is not None:
            return best_path, RouteDiagnostics(case="in-region-same")
        return (
            self._connector(source, destination, self._region_preference(region_id)),
            RouteDiagnostics(case="in-region-same"),
        )

    def _region_preference(self, region_id: RegionId) -> "PreferenceVector | None":
        """The most common learned preference among the region's T-edges."""
        preferences = [
            edge.preference
            for edge in self._graph.edges()
            if edge.preference is not None and region_id in (edge.region_a, edge.region_b)
        ]
        if not preferences:
            return None
        return Counter(preferences).most_common(1)[0][0]

    def _connector(
        self, source: VertexId, destination: VertexId, preference: "PreferenceVector | None"
    ) -> Path:
        """A short connecting path, preference-aware when a preference is known."""
        if source == destination:
            return Path.of([source])
        if preference is not None:
            try:
                return preference_dijkstra(self._network, source, destination, preference)
            except NoPathError:
                pass
        return fastest_path(self._network, source, destination)

    # ------------------------------------------------------------------ #
    # Case 1 — different regions
    # ------------------------------------------------------------------ #
    def _route_between_regions(
        self,
        source: VertexId,
        destination: VertexId,
        region_s: RegionId,
        region_d: RegionId,
        case_label: str = "in-region",
    ) -> tuple[Path, RouteDiagnostics]:
        region_path = self._find_region_path(region_s, region_d)
        if region_path is None:
            return (
                fastest_path(self._network, source, destination),
                RouteDiagnostics(case="fallback-fastest"),
            )

        # The region edges along the region path define the *corridor*: the
        # road-network edges that local drivers actually used when traveling
        # between these regions, plus the preference that explains them.
        used_b = 0
        corridor: dict[tuple[VertexId, VertexId], int] = {}
        preferences: list["PreferenceVector"] = []

        def add_corridor(hop: tuple[VertexId, VertexId], count: int) -> None:
            corridor[hop] = corridor.get(hop, 0) + count
            reverse = (hop[1], hop[0])
            corridor[reverse] = corridor.get(reverse, 0) + count

        for region_a, region_b in zip(region_path, region_path[1:]):
            edge = self._edge_object(region_a, region_b)
            if edge is None:
                continue
            if edge.is_b_edge:
                used_b += 1
            if edge.preference is not None:
                preferences.append(edge.preference)
            for vertices, count in edge.path_counts.items():
                for hop in zip(vertices, vertices[1:]):
                    add_corridor(hop, count)
        # Inner-region paths of the endpoint regions belong to the corridor too.
        for region_id in (region_s, region_d):
            for inner, count in self._graph.inner_paths(region_id):
                for hop in inner.edge_keys:
                    add_corridor(hop, count)

        preference = Counter(preferences).most_common(1)[0][0] if preferences else None
        path = self._corridor_route(source, destination, corridor, preference)
        return path, RouteDiagnostics(
            case=case_label, region_hops=len(region_path) - 1, used_b_edges=used_b
        )

    def _corridor_route(
        self,
        source: VertexId,
        destination: VertexId,
        corridor: dict[tuple[VertexId, VertexId], int],
        preference: "PreferenceVector | None",
    ) -> Path:
        """Route ``source`` to ``destination`` hugging the trajectory corridor.

        The master cost of the (learned or transferred) preference is used,
        discounted on corridor edges — the more trajectories traversed an
        edge, the stronger the discount — so the answer follows the roads
        local drivers chose while still adapting to the query's exact
        endpoints; edges violating the slave road-condition preference outside
        the corridor are mildly penalized.
        """
        from ..routing.costs import CostFeature, cost_function
        from ..routing.dijkstra import dijkstra

        master = cost_function(preference.master) if preference is not None else cost_function(
            CostFeature.TRAVEL_TIME
        )
        slave = preference.slave if preference is not None else None

        def corridor_cost(edge) -> float:
            cost = master(edge)
            count = corridor.get(edge.key, 0)
            if count > 0:
                return cost / (1.0 + math.log1p(count))
            if slave is not None and not slave.satisfied_by(edge.road_type):
                return cost * 1.5
            return cost

        def build_cost_array(graph):
            # Vectorized corridor cost: start from the master feature's flat
            # array, penalize slave-violating edges, then overwrite corridor
            # slots with the popularity discount (same precedence as above).
            attr = getattr(master, "cost_attr", None)
            if attr is None:
                return None
            base = graph.array(attr)
            weights = base.copy()
            if slave is not None:
                satisfied = graph.memo(
                    ("corridor-slave-mask", slave),
                    lambda: np.fromiter(
                        (slave.satisfied_by(edge.road_type) for edge in graph.edges),
                        dtype=bool,
                        count=graph.edge_count,
                    ),
                    cost_dependent=False,  # road types never change under traffic
                )
                weights[~satisfied] *= 1.5
            slot = graph.slot
            for hop, count in corridor.items():
                index = slot(*hop)
                if index is not None:
                    weights[index] = base[index] / (1.0 + math.log1p(count))
            return weights

        corridor_cost.build_cost_array = build_cost_array  # type: ignore[attr-defined]

        try:
            return dijkstra(self._network, source, destination, corridor_cost)
        except NoPathError:
            return fastest_path(self._network, source, destination)

    def _find_region_path(self, region_s: RegionId, region_d: RegionId) -> list[RegionId] | None:
        """Greedy geometric walk on the region graph with a BFS fallback."""
        greedy = self._greedy_region_walk(region_s, region_d)
        if greedy is not None:
            return greedy
        return self._bfs_region_path(region_s, region_d)

    def _greedy_region_walk(self, region_s: RegionId, region_d: RegionId) -> list[RegionId] | None:
        goal = self._graph.region_centroid(region_d)
        current = region_s
        path = [current]
        visited = {current}
        for _ in range(self._max_region_hops):
            if current == region_d:
                return path
            neighbors = self._graph.neighbors(current)
            if region_d in neighbors:
                path.append(region_d)
                return path
            candidates = [n for n in neighbors if n not in visited]
            if not candidates:
                return None
            # Prefer the neighbour whose centroid is closest to the goal, and
            # only move if it actually makes geometric progress.
            def distance_to_goal(region: RegionId) -> float:
                return equirectangular_m(self._graph.region_centroid(region), goal)

            best = min(candidates, key=distance_to_goal)
            if distance_to_goal(best) >= distance_to_goal(current) and len(path) > 1:
                return None
            path.append(best)
            visited.add(best)
            current = best
        return None

    def _bfs_region_path(self, region_s: RegionId, region_d: RegionId) -> list[RegionId] | None:
        """Fewest-region-edge path (the paper prefers few region edges)."""
        from collections import deque

        parent: dict[RegionId, RegionId] = {}
        seen = {region_s}
        queue: deque[RegionId] = deque([region_s])
        while queue:
            current = queue.popleft()
            if current == region_d:
                path = [current]
                while current != region_s:
                    current = parent[current]
                    path.append(current)
                path.reverse()
                return path
            for neighbor in self._graph.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    parent[neighbor] = current
                    queue.append(neighbor)
        return None

    def _edge_object(self, region_a: RegionId, region_b: RegionId) -> RegionEdge | None:
        if self._graph.has_edge(region_a, region_b):
            return self._graph.edge(region_a, region_b)
        if self._graph.has_edge(region_b, region_a):
            return self._graph.edge(region_b, region_a)
        return None

    def _edge_path(
        self,
        region_a: RegionId,
        region_b: RegionId,
        from_vertex: VertexId | None = None,
        to_vertex: VertexId | None = None,
    ) -> Path | None:
        """A concrete road-network path for traversing region edge (a, b).

        Among the paths associated with the region edge, the one whose
        endpoints best fit the query (geometrically close to where the route
        currently is and to where it is heading) is preferred; popularity
        breaks ties.  Reverse-edge paths are used (reversed) when the forward
        edge carries no paths.
        """
        candidates: list[tuple[Path, int]] = []
        if self._graph.has_edge(region_a, region_b):
            edge = self._graph.edge(region_a, region_b)
            candidates = [(Path(vertices=v), c) for v, c in edge.path_counts.items()]
        if not candidates and self._graph.has_edge(region_b, region_a):
            reverse_edge = self._graph.edge(region_b, region_a)
            for vertices, count in reverse_edge.path_counts.items():
                candidate = Path(vertices=vertices).reversed()
                if candidate.is_valid(self._network):
                    candidates.append((candidate, count))
        if not candidates:
            return None
        if from_vertex is None and to_vertex is None:
            return max(candidates, key=lambda item: item[1])[0]

        def detour_m(path: Path) -> float:
            total = 0.0
            if from_vertex is not None:
                total += equirectangular_m(
                    self._network.coordinates(from_vertex),
                    self._network.coordinates(path.source),
                )
            if to_vertex is not None:
                total += equirectangular_m(
                    self._network.coordinates(path.destination),
                    self._network.coordinates(to_vertex),
                )
            return total

        return min(candidates, key=lambda item: (detour_m(item[0]), -item[1]))[0]

    def _stitch(
        self,
        source: VertexId,
        destination: VertexId,
        segments: list[tuple[Path, "PreferenceVector | None"]],
    ) -> Path:
        """Join region-edge segments with preference-aware connectors.

        Gaps before a segment are bridged with the segment's edge preference
        (learned or transferred); the final gap to the destination uses the
        last segment's preference.  This keeps the attachment portions
        consistent with the routing behaviour the region edges encode.
        """
        full: Path | None = None
        cursor = source
        last_preference: "PreferenceVector | None" = None
        try:
            for segment, preference in segments:
                if cursor != segment.source:
                    connector = self._connector(cursor, segment.source, preference)
                    full = connector if full is None else full.splice(connector)
                full = segment if full is None else full.splice(segment)
                cursor = segment.destination
                last_preference = preference
            if cursor != destination:
                connector = self._connector(cursor, destination, last_preference)
                full = connector if full is None else full.splice(connector)
        except NoPathError:
            return fastest_path(self._network, source, destination)
        if full is None:
            return fastest_path(self._network, source, destination)
        return _remove_cycles(full)

    # ------------------------------------------------------------------ #
    # Case 2 — endpoints outside regions
    # ------------------------------------------------------------------ #
    def _route_case2(
        self,
        source: VertexId,
        destination: VertexId,
        region_s: RegionId | None,
        region_d: RegionId | None,
    ) -> tuple[Path, RouteDiagnostics]:
        case_label = "out-region" if region_s is None and region_d is None else "in-out-region"
        try:
            baseline = fastest_path(self._network, source, destination)
        except NoPathError:
            raise
        # Scan the fastest path for candidate regions.
        first_idx, first_region = self._first_region_on(baseline.vertices)
        last_idx, last_region = self._last_region_on(baseline.vertices)
        if (
            first_region is None
            or last_region is None
            or first_region == last_region
            or first_idx >= last_idx
        ):
            return baseline, RouteDiagnostics(case=case_label)

        anchor_s = baseline.vertices[first_idx]
        anchor_d = baseline.vertices[last_idx]
        prefix = Path(vertices=baseline.vertices[: first_idx + 1])
        suffix = Path(vertices=baseline.vertices[last_idx:])
        middle, diagnostics = self._route_between_regions(
            anchor_s, anchor_d, first_region, last_region, case_label=case_label
        )
        try:
            combined = prefix.splice(middle).splice(suffix)
        except Exception:
            return baseline, RouteDiagnostics(case=case_label)
        return _remove_cycles(combined), RouteDiagnostics(
            case=case_label,
            region_hops=diagnostics.region_hops,
            used_b_edges=diagnostics.used_b_edges,
        )

    def _first_region_on(self, vertices: tuple[VertexId, ...]) -> tuple[int, RegionId | None]:
        for index, vertex in enumerate(vertices):
            region = self._graph.region_of(vertex)
            if region is not None:
                return index, region
        return -1, None

    def _last_region_on(self, vertices: tuple[VertexId, ...]) -> tuple[int, RegionId | None]:
        for index in range(len(vertices) - 1, -1, -1):
            region = self._graph.region_of(vertices[index])
            if region is not None:
                return index, region
        return -1, None


def _remove_cycles(path: Path) -> Path:
    """Remove loops (repeated vertices) that stitching may introduce."""
    seen: dict[VertexId, int] = {}
    vertices: list[VertexId] = []
    for vertex in path.vertices:
        if vertex in seen:
            # Cut the loop: drop everything after the first occurrence.
            cut = seen[vertex]
            for removed in vertices[cut + 1 :]:
                seen.pop(removed, None)
            vertices = vertices[: cut + 1]
        else:
            seen[vertex] = len(vertices)
            vertices.append(vertex)
    if len(vertices) < 1:
        return path
    return Path.of(vertices)
