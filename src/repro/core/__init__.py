"""The learn-to-route (L2R) pipeline: configuration, routing, and orchestration."""

from .config import L2RConfig, PeakHours
from .router import RegionRouter, RouteDiagnostics
from .l2r import FittedModel, LearnToRoute, OfflineTimings

__all__ = [
    "FittedModel",
    "L2RConfig",
    "LearnToRoute",
    "OfflineTimings",
    "PeakHours",
    "RegionRouter",
    "RouteDiagnostics",
]
