"""Configuration of the learn-to-route (L2R) pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ConfigurationError
from ..preferences.apply import ApplyConfig
from ..preferences.transfer import TransferConfig


@dataclass(frozen=True)
class PeakHours:
    """Definition of the peak traffic periods (seconds of day)."""

    morning_start_s: float = 7 * 3600.0
    morning_end_s: float = 9 * 3600.0
    evening_start_s: float = 16 * 3600.0
    evening_end_s: float = 18 * 3600.0

    def __post_init__(self) -> None:
        for label, value in (
            ("morning_start_s", self.morning_start_s),
            ("morning_end_s", self.morning_end_s),
            ("evening_start_s", self.evening_start_s),
            ("evening_end_s", self.evening_end_s),
        ):
            if not 0.0 <= value <= 86_400.0:
                raise ConfigurationError(f"{label} must lie within a day (0..86400 s)")
        if self.morning_start_s >= self.morning_end_s:
            raise ConfigurationError("morning_start_s must be before morning_end_s")
        if self.evening_start_s >= self.evening_end_s:
            raise ConfigurationError("evening_start_s must be before evening_end_s")

    def is_peak(self, departure_time_s: float) -> bool:
        """True if a departure time (seconds of day) falls inside a peak period."""
        t = departure_time_s % 86_400.0
        return (
            self.morning_start_s <= t <= self.morning_end_s
            or self.evening_start_s <= t <= self.evening_end_s
        )


@dataclass(frozen=True)
class L2RConfig:
    """All knobs of the L2R pipeline, with the paper's defaults."""

    enforce_road_types: bool = True
    """Apply the Table I road-type constraints during clustering."""
    functionality_top_k: int = 2
    """Number of top road types describing a region's functionality (re.F)."""
    max_paths_per_t_edge: int = 12
    """Cap on ground-truth paths used when learning a T-edge's preference."""
    max_region_pairs_per_trajectory: int | None = 200
    """Cap on T-edges produced by a single trajectory (m*(m-1)/2 blow-up)."""
    transfer: TransferConfig = field(default_factory=TransferConfig)
    apply: ApplyConfig = field(default_factory=ApplyConfig)
    time_dependent: bool = False
    """Build separate peak / off-peak region graphs (Section III scope note)."""
    peak_hours: PeakHours = field(default_factory=PeakHours)
    max_region_hops: int = 64
    """Safety cap on the number of region edges followed by one routing query."""

    def __post_init__(self) -> None:
        if self.functionality_top_k < 1:
            raise ConfigurationError("functionality_top_k must be at least 1")
        if self.max_paths_per_t_edge < 1:
            raise ConfigurationError("max_paths_per_t_edge must be at least 1")
        if not 0.0 <= self.transfer.amr <= 2.0:
            raise ConfigurationError("transfer.amr must lie in [0, 2] (reSim range)")
        if self.max_region_hops < 1:
            raise ConfigurationError("max_region_hops must be at least 1")
