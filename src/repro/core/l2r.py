"""The learn-to-route (L2R) pipeline — the paper's primary contribution.

``fit()`` runs the three offline steps on a road network and a training
trajectory set:

1. build the trajectory graph, cluster it into regions (Algorithm 1), and
   build the region graph with T-edges, B-edges, transfer centers, and
   inner-region paths (Section IV);
2. learn a routing preference per T-edge (Section V-A) and transfer the
   preferences to B-edges with graph-based transduction (Section V-B);
3. materialize concrete paths on B-edges between transfer centers using the
   preference-aware Dijkstra (Section V-C).

``route()`` then answers arbitrary (source, destination) requests on the
region graph (Section VI).  When ``config.time_dependent`` is on, separate
peak and off-peak region graphs are fitted and the departure time picks one.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..exceptions import NotFittedError
from ..network.road_network import RoadNetwork, VertexId
from ..preferences.apply import materialize_b_edge_paths
from ..preferences.features import FeatureCatalog
from ..preferences.learning import LearnedPreference, learn_t_edge_preferences
from ..preferences.transfer import TransferResult, transfer_to_b_edges
from ..regions.clustering import BottomUpClustering, ClusteringResult
from ..regions.region_graph import RegionGraph, build_region_graph
from ..regions.trajectory_graph import TrajectoryGraph
from ..routing.path import Path
from ..trajectories.models import MatchedTrajectory
from .config import L2RConfig
from .router import RegionRouter, RouteDiagnostics


@dataclass
class OfflineTimings:
    """Offline processing time breakdown (Section VII-C, 'Offline Processing')."""

    region_graph_s: float = 0.0
    preference_learning_s: float = 0.0
    preference_transfer_s: float = 0.0
    path_materialization_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (
            self.region_graph_s
            + self.preference_learning_s
            + self.preference_transfer_s
            + self.path_materialization_s
        )


@dataclass
class FittedModel:
    """Everything produced by fitting L2R on one trajectory subset."""

    trajectory_graph: TrajectoryGraph
    clustering: ClusteringResult
    region_graph: RegionGraph
    learned_preferences: dict[tuple[int, int], LearnedPreference]
    transfer_result: TransferResult | None
    router: RegionRouter
    timings: OfflineTimings = field(default_factory=OfflineTimings)


class LearnToRoute:
    """The unified trajectory-based routing solution (L2R)."""

    def __init__(self, config: L2RConfig | None = None, catalog: FeatureCatalog | None = None) -> None:
        self.config = config or L2RConfig()
        self.catalog = catalog or FeatureCatalog()
        self._network: RoadNetwork | None = None
        self._default_model: FittedModel | None = None
        self._peak_model: FittedModel | None = None
        self._offpeak_model: FittedModel | None = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, network: RoadNetwork, trajectories: Sequence[MatchedTrajectory]) -> "LearnToRoute":
        """Run the offline pipeline; returns ``self`` for chaining."""
        self._network = network
        if self.config.time_dependent:
            peak = [t for t in trajectories if self.config.peak_hours.is_peak(t.departure_time)]
            offpeak = [t for t in trajectories if not self.config.peak_hours.is_peak(t.departure_time)]
            # Degenerate splits fall back to a single model on all data.
            if len(peak) >= 10 and len(offpeak) >= 10:
                self._peak_model = self._fit_subset(network, peak)
                self._offpeak_model = self._fit_subset(network, offpeak)
                self._default_model = None
                return self
        self._default_model = self._fit_subset(network, list(trajectories))
        self._peak_model = None
        self._offpeak_model = None
        return self

    def _fit_subset(
        self, network: RoadNetwork, trajectories: list[MatchedTrajectory]
    ) -> FittedModel:
        timings = OfflineTimings()

        started = time.perf_counter()
        trajectory_graph = TrajectoryGraph.from_trajectories(network, trajectories)
        clustering = BottomUpClustering(
            enforce_road_types=self.config.enforce_road_types
        ).cluster(trajectory_graph)
        region_graph = build_region_graph(
            network,
            clustering,
            trajectories,
            functionality_top_k=self.config.functionality_top_k,
            connect=True,
            max_region_pairs_per_trajectory=self.config.max_region_pairs_per_trajectory,
        )
        timings.region_graph_s = time.perf_counter() - started

        started = time.perf_counter()
        learned = learn_t_edge_preferences(
            network,
            region_graph,
            catalog=self.catalog,
            max_paths_per_edge=self.config.max_paths_per_t_edge,
        )
        timings.preference_learning_s = time.perf_counter() - started

        transfer_result: TransferResult | None = None
        started = time.perf_counter()
        if region_graph.b_edges() and learned:
            transfer_result = transfer_to_b_edges(
                region_graph, catalog=self.catalog, config=self.config.transfer
            )
        timings.preference_transfer_s = time.perf_counter() - started

        started = time.perf_counter()
        materialize_b_edge_paths(network, region_graph, config=self.config.apply)
        timings.path_materialization_s = time.perf_counter() - started

        router = RegionRouter(region_graph, max_region_hops=self.config.max_region_hops)
        return FittedModel(
            trajectory_graph=trajectory_graph,
            clustering=clustering,
            region_graph=region_graph,
            learned_preferences=learned,
            transfer_result=transfer_result,
            router=router,
            timings=timings,
        )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._default_model is not None or self._peak_model is not None

    def _model_for(self, departure_time: float | None) -> FittedModel:
        if self._default_model is not None:
            return self._default_model
        if self._peak_model is None or self._offpeak_model is None:
            raise NotFittedError("LearnToRoute")
        if departure_time is not None and self.config.peak_hours.is_peak(departure_time):
            return self._peak_model
        return self._offpeak_model

    def route(
        self, source: VertexId, destination: VertexId, departure_time: float | None = None
    ) -> Path:
        """Recommend a path for an arbitrary (source, destination) pair.

        ``departure_time`` (seconds of day) selects the peak or off-peak model
        when the pipeline was fitted with ``config.time_dependent``; otherwise
        it does **not** influence path selection — the single fitted model
        answers regardless of the requested time.  Callers who need the
        requested time echoed back should route through the service layer,
        whose :class:`~repro.service.api.RouteResponse` always records it on
        the originating request.
        """
        if not self.is_fitted:
            raise NotFittedError("LearnToRoute")
        return self._model_for(departure_time).router.route(source, destination)

    def route_with_diagnostics(
        self, source: VertexId, destination: VertexId, departure_time: float | None = None
    ) -> tuple[Path, RouteDiagnostics]:
        """Recommend a path plus diagnostics on which routing case applied."""
        if not self.is_fitted:
            raise NotFittedError("LearnToRoute")
        return self._model_for(departure_time).router.route_with_diagnostics(source, destination)

    # ------------------------------------------------------------------ #
    # Serving and persistence
    # ------------------------------------------------------------------ #
    def as_engine(self, name: str | None = None):
        """This pipeline adapted to the ``RoutingEngine`` protocol."""
        from ..service.engine import L2REngine

        return L2REngine(self, name=name)

    def save(self, path) -> "pathlib.Path":
        """Persist the fitted model so a serving process can skip ``fit()``.

        See :func:`repro.service.persistence.save_model`; the returned value
        is the written path.
        """
        from ..service.persistence import save_model

        return save_model(self, path)

    @classmethod
    def load(cls, path) -> "LearnToRoute":
        """Restore a pipeline previously written by :meth:`save`."""
        from ..service.persistence import load_model

        return load_model(path)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def network(self) -> RoadNetwork:
        if self._network is None:
            raise NotFittedError("LearnToRoute")
        return self._network

    @property
    def model(self) -> FittedModel:
        """The fitted model (the off-peak model when time-dependent)."""
        if self._default_model is not None:
            return self._default_model
        if self._offpeak_model is not None:
            return self._offpeak_model
        raise NotFittedError("LearnToRoute")

    @property
    def region_graph(self) -> RegionGraph:
        return self.model.region_graph

    @property
    def offline_timings(self) -> OfflineTimings:
        return self.model.timings

    def region_of(self, vertex: VertexId) -> int | None:
        """The region containing a vertex, or ``None`` (used for categorization)."""
        return self.region_graph.region_of(vertex)
