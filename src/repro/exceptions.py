"""Exception hierarchy for the L2R reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class NetworkError(ReproError):
    """Problems with a road network (missing vertices, malformed edges...)."""


class VertexNotFoundError(NetworkError):
    """A vertex id was referenced that does not exist in the road network."""

    def __init__(self, vertex_id: object) -> None:
        super().__init__(f"vertex {vertex_id!r} is not part of the road network")
        self.vertex_id = vertex_id


class EdgeNotFoundError(NetworkError):
    """An edge was referenced that does not exist in the road network."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r}, {target!r}) is not part of the road network")
        self.source = source
        self.target = target


class NoPathError(ReproError):
    """No path could be found between the requested source and destination."""

    def __init__(self, source: object, destination: object, reason: str = "") -> None:
        message = f"no path from {source!r} to {destination!r}"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)
        self.source = source
        self.destination = destination


class StaleHierarchyError(ReproError):
    """A contraction hierarchy was queried after its network changed.

    CH shortcut weights are frozen at build time; answering from a stale
    hierarchy would silently return pre-update (e.g. pre-traffic) routes.
    """

    def __init__(self, built_version: int, current_version: int) -> None:
        super().__init__(
            f"contraction hierarchy was built at network version {built_version} "
            f"but the network is now at version {current_version}; rebuild it "
            "(or query with on_stale='rebuild' / 'ignore')"
        )
        self.built_version = built_version
        self.current_version = current_version


class TransientEngineError(ReproError):
    """A routing engine failed in a way that may succeed on retry.

    The canonical *retryable* failure: injected faults, flaky downstream
    calls, transient resource exhaustion.  Request-level failures
    (:class:`NoPathError`, :class:`VertexNotFoundError`) are deliberately
    *not* transient — retrying them wastes budget and they do not indicate
    engine ill-health to a circuit breaker.
    """


class DeadlineExceededError(ReproError):
    """A request's wall-clock deadline budget ran out before an answer.

    Raised (or reported on the response) by the service's resilience layer
    when the remaining :class:`~repro.service.resilience.DeadlineBudget`
    reaches zero while walking the engine fallback chain.
    """

    def __init__(self, budget_s: float, elapsed_s: float, stage: str = "") -> None:
        message = (
            f"deadline budget of {budget_s:.3f}s exhausted after {elapsed_s:.3f}s"
        )
        if stage:
            message = f"{message} ({stage})"
        super().__init__(message)
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s


class CircuitOpenError(TransientEngineError):
    """An engine's circuit breaker is open; the call was never attempted.

    Transient by construction: the breaker will transition to half-open
    after its recovery period and the engine may answer again.
    """

    def __init__(self, engine: str, state: str = "open") -> None:
        super().__init__(
            f"circuit breaker for engine {engine!r} is {state}; skipping the call"
        )
        self.engine = engine
        self.state = state


class ServiceOverloadedError(ReproError):
    """The service shed this request: too many already in flight.

    The admission controller's fast-reject path — raised before any engine
    work happens so overload turns into cheap, immediate errors instead of
    queueing collapse.
    """

    def __init__(self, in_flight: int, max_in_flight: int) -> None:
        super().__init__(
            f"service overloaded: {in_flight} requests in flight "
            f"(limit {max_in_flight}); request shed"
        )
        self.in_flight = in_flight
        self.max_in_flight = max_in_flight


class ShardingError(ReproError):
    """Problems in the sharded serving layer (worker boot, transport, pool
    lifecycle).  Worker *request* failures are reported on responses, not
    raised; this covers infrastructure faults the coordinator cannot map to
    a single request."""


class TrajectoryError(ReproError):
    """Problems with trajectory data (too few records, unmatched points...)."""


class MapMatchingError(TrajectoryError):
    """The map matcher could not align a trajectory with the road network."""


class ClusteringError(ReproError):
    """The region clustering could not be performed."""


class RegionGraphError(ReproError):
    """Problems while building or querying the region graph."""


class PreferenceError(ReproError):
    """Problems in preference learning, transfer, or application."""


class TransferError(PreferenceError):
    """The transduction-based preference transfer failed."""


class EvaluationError(ReproError):
    """Problems inside the evaluation harness."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class NotFittedError(ReproError):
    """A pipeline method requiring a fitted model was called before ``fit``."""

    def __init__(self, what: str = "model") -> None:
        super().__init__(
            f"this {what} has not been fitted yet; call fit() with a road network "
            "and a trajectory set before routing"
        )
