"""Synthetic congestion for benchmarks and load tests.

:func:`synthetic_congestion` yields batches of
:class:`~repro.traffic.updates.TrafficUpdate` objects that mimic rush-hour
waves: each step picks a random subset of edges and sets their travel time
(and, attenuated, fuel consumption) to a congestion multiple of the *free
flow* values captured when the generator was created.  Working from absolute
free-flow baselines keeps repeated steps bounded — congestion levels move
around instead of compounding multiplicatively forever.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..exceptions import NetworkError
from ..network.road_network import RoadNetwork
from .updates import TrafficUpdate


def synthetic_congestion(
    network: RoadNetwork,
    *,
    seed: int = 0,
    fraction: float = 0.1,
    peak_factor: float = 3.0,
    fuel_sensitivity: float = 0.4,
    steps: int | None = None,
) -> Iterator[list[TrafficUpdate]]:
    """Yield batches of congestion updates against free-flow baselines.

    ``fraction`` of the network's edges are touched per step (at least one);
    each touched edge gets a travel time of ``free_flow * factor`` with
    ``factor`` drawn uniformly from ``[1, peak_factor]``, and a fuel
    consumption scaled by ``1 + (factor - 1) * fuel_sensitivity`` (stop-and-go
    traffic burns more fuel, sub-linearly).  ``steps=None`` yields forever.

    The free-flow baselines are snapshotted up front, so the generator must
    not outlive topology mutations of the network (new edges would be
    unknown to it — they are simply never congested).
    """
    if not 0.0 < fraction <= 1.0:
        raise NetworkError(f"fraction must be in (0, 1], got {fraction}")
    if peak_factor < 1.0:
        raise NetworkError(f"peak_factor must be >= 1, got {peak_factor}")
    free_flow = {
        edge.key: (edge.travel_time_s, edge.fuel_ml) for edge in network.edges()
    }
    if not free_flow:
        raise NetworkError("cannot generate congestion for a network with no edges")
    keys = sorted(free_flow)
    rng = random.Random(seed)
    per_step = max(1, round(len(keys) * fraction))

    step = 0
    while steps is None or step < steps:
        batch = []
        for source, target in rng.sample(keys, per_step):
            travel_time_s, fuel_ml = free_flow[(source, target)]
            factor = 1.0 + rng.random() * (peak_factor - 1.0)
            batch.append(
                TrafficUpdate.set(
                    source,
                    target,
                    travel_time_s=travel_time_s * factor,
                    fuel_ml=fuel_ml * (1.0 + (factor - 1.0) * fuel_sensitivity),
                )
            )
        yield batch
        step += 1
