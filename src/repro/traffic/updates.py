"""Typed live-traffic cost updates.

A :class:`TrafficUpdate` describes how one directed edge's travel costs
change: per-feature **absolute** replacements, **scale** factors, or additive
**deltas** (applied in that order when combined on one update).  Updates are
immutable and hashable so they can be batched, logged, deduplicated, and
replayed; a batch (any iterable of updates) is applied transactionally by a
:class:`~repro.traffic.feed.TrafficFeed`.

The patchable features are exactly the compiled cost attributes
(``distance_m`` / ``travel_time_s`` / ``fuel_ml``) — see
:data:`repro.network.compiled.graph.EDGE_COST_ATTRIBUTES`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..exceptions import NetworkError
from ..network.compiled.graph import EDGE_COST_ATTRIBUTES
from ..network.road_network import VertexId

if TYPE_CHECKING:  # pragma: no cover
    from ..network.road_network import Edge

EdgeKey = tuple[VertexId, VertexId]


def _as_terms(values: Mapping[str, float], kind: str) -> tuple[tuple[str, float], ...]:
    """Normalize a ``{attribute: number}`` mapping into a hashable tuple."""
    terms = []
    for attribute, value in values.items():
        if attribute not in EDGE_COST_ATTRIBUTES:
            raise NetworkError(
                f"traffic {kind} for unknown cost attribute {attribute!r}; "
                f"patchable attributes are {EDGE_COST_ATTRIBUTES}"
            )
        terms.append((attribute, float(value)))
    return tuple(sorted(terms))


@dataclass(frozen=True)
class TrafficUpdate:
    """One edge's cost change: absolute values, scale factors, and/or deltas.

    Use the constructors for the common cases::

        TrafficUpdate.set(u, v, travel_time_s=95.0)     # absolute
        TrafficUpdate.scale_by(u, v, travel_time_s=2.5) # congestion factor
        TrafficUpdate.shift(u, v, fuel_ml=12.0)         # additive delta

    When one update carries several kinds they compose as
    ``absolute -> scale -> delta`` per attribute.
    """

    source: VertexId
    target: VertexId
    absolute: tuple[tuple[str, float], ...] = ()
    scale: tuple[tuple[str, float], ...] = ()
    delta: tuple[tuple[str, float], ...] = ()

    @property
    def key(self) -> EdgeKey:
        """The directed edge this update targets."""
        return (self.source, self.target)

    @property
    def attributes(self) -> frozenset[str]:
        """The cost attributes this update touches."""
        return frozenset(
            attribute for terms in (self.absolute, self.scale, self.delta)
            for attribute, _ in terms
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def set(cls, source: VertexId, target: VertexId, **values: float) -> "TrafficUpdate":
        """Replace cost attributes with absolute values."""
        return cls(source=source, target=target, absolute=_as_terms(values, "absolute"))

    @classmethod
    def scale_by(cls, source: VertexId, target: VertexId, **factors: float) -> "TrafficUpdate":
        """Multiply cost attributes by per-feature factors."""
        return cls(source=source, target=target, scale=_as_terms(factors, "scale"))

    @classmethod
    def shift(cls, source: VertexId, target: VertexId, **deltas: float) -> "TrafficUpdate":
        """Add per-feature deltas to cost attributes."""
        return cls(source=source, target=target, delta=_as_terms(deltas, "delta"))

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def resolve(
        self, edge: "Edge", pending: Mapping[str, float] | None = None
    ) -> dict[str, float]:
        """The absolute attribute values this update produces on ``edge``.

        ``pending`` carries values already produced by earlier updates of the
        same batch for the same edge, so updates compose in batch order.
        Returns only the touched attributes; validation of the resulting
        numbers (finite, positive) happens in
        :meth:`RoadNetwork.update_edge_costs`.
        """
        resolved: dict[str, float] = dict(pending or {})

        def current(attribute: str) -> float:
            if attribute in resolved:
                return resolved[attribute]
            return float(getattr(edge, attribute))

        for attribute, value in self.absolute:
            resolved[attribute] = value
        for attribute, factor in self.scale:
            resolved[attribute] = current(attribute) * factor
        for attribute, delta in self.delta:
            resolved[attribute] = current(attribute) + delta
        return resolved

    def __post_init__(self) -> None:
        if not (self.absolute or self.scale or self.delta):
            raise NetworkError(
                f"traffic update for edge ({self.source}, {self.target}) "
                "changes nothing; give at least one absolute/scale/delta term"
            )


@dataclass(frozen=True)
class TrafficUpdateResult:
    """What one transactionally-applied batch did to the network.

    Handed to every :class:`~repro.traffic.feed.TrafficFeed` subscriber —
    the service layer uses :attr:`touched_edges` for delta-aware route-cache
    invalidation and :attr:`cost_version` to stamp its monitoring snapshot.
    """

    touched_edges: frozenset[EdgeKey]
    """Directed edges whose costs actually changed."""
    cost_version: int
    """The network's cost version after the batch landed."""
    applied: int = 0
    """Number of updates in the batch (may exceed touched edges when several
    updates hit the same edge)."""
    attributes: frozenset[str] = field(default_factory=frozenset)
    """Union of cost attributes touched by the batch."""

    @property
    def touched_count(self) -> int:
        return len(self.touched_edges)
