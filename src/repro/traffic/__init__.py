"""Live-traffic cost updates.

The paper's peak/off-peak preference models only matter in a serving system
if edge travel costs can change while the system is running.  This subsystem
is the write path for such changes:

* :mod:`repro.traffic.updates` — :class:`TrafficUpdate` (per-edge absolute /
  scale / delta cost changes) and :class:`TrafficUpdateResult` (touched
  edges + cost version of an applied batch);
* :mod:`repro.traffic.feed` — :class:`TrafficFeed`, which applies batches
  transactionally to the network (patching the live compiled CSR view in
  place, see :class:`~repro.network.compiled.graph.CostStore`) and notifies
  subscribers such as :class:`~repro.service.RoutingService`;
* :mod:`repro.traffic.drain` — :class:`TrafficDrain`, a bounded background
  queue draining update batches into the feed off the request path
  (last-write-wins coalescing, bounded-staleness accounting, crash-restart);
* :mod:`repro.traffic.synthetic` — :func:`synthetic_congestion`, rush-hour
  waves for benchmarks and load tests.
"""

from .drain import DrainStats, TrafficDrain
from .feed import TrafficFeed
from .synthetic import synthetic_congestion
from .updates import EdgeKey, TrafficUpdate, TrafficUpdateResult

__all__ = [
    "DrainStats",
    "EdgeKey",
    "TrafficDrain",
    "TrafficFeed",
    "TrafficUpdate",
    "TrafficUpdateResult",
    "synthetic_congestion",
]
