"""The transactional bridge between live-traffic updates and the network.

A :class:`TrafficFeed` owns the write path for one
:class:`~repro.network.road_network.RoadNetwork`: it resolves a batch of
:class:`~repro.traffic.updates.TrafficUpdate` objects against the current
edge costs, applies them in one all-or-nothing
:meth:`~repro.network.road_network.RoadNetwork.update_edge_costs` call (which
patches the live compiled view instead of dropping it), and then notifies its
subscribers with a :class:`~repro.traffic.updates.TrafficUpdateResult`
reporting the touched edges and the new cost version.

The service layer subscribes through ``TrafficFeed(network, services=[...])``
(or :meth:`TrafficFeed.subscribe`), wiring
:meth:`~repro.service.RoutingService.on_traffic_update` so cached routes that
cross a touched edge are evicted — and nothing else is.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..network.road_network import RoadNetwork
from .updates import EdgeKey, TrafficUpdate, TrafficUpdateResult

if TYPE_CHECKING:  # pragma: no cover
    from typing import Protocol

    from ..service.service import RoutingService

    class TrafficJournal(Protocol):
        """Write-ahead sink (e.g. :class:`~repro.service.durability.manager.
        DurabilityManager`): called under the feed lock *before* a batch is
        resolved, with the pre-apply cost version it anchors to."""

        def log_traffic(
            self, updates: Sequence[TrafficUpdate], base_version: int
        ) -> None: ...


Subscriber = Callable[[TrafficUpdateResult], object]


class TrafficFeed:
    """Applies :class:`TrafficUpdate` batches to one network, transactionally.

    Batches are serialized by an internal lock, so subscribers observe
    results in strictly increasing cost-version order even when several
    producers push updates concurrently.
    """

    def __init__(
        self,
        network: RoadNetwork,
        services: "Sequence[RoutingService] | None" = None,
    ) -> None:
        self._network = network
        # Reentrant: subscribers run inside apply() and may themselves call
        # subscribe() or push a compensating apply() without deadlocking.
        self._lock = threading.RLock()
        self._subscribers: list[Subscriber] = []
        self._journal: "TrafficJournal | None" = None
        self._batches_applied = 0
        for service in services or ():
            self.subscribe(
                lambda result, _service=service: _service.on_traffic_update(
                    result.touched_edges, cost_version=result.cost_version
                )
            )

    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def batches_applied(self) -> int:
        """Number of successfully applied batches."""
        return self._batches_applied

    def attach_journal(self, journal: "TrafficJournal | None") -> None:
        """Write-ahead every future batch through ``journal`` (``None``
        detaches).

        The journal's ``log_traffic(batch, base_version)`` runs inside the
        feed lock before the batch is resolved or applied, so a batch whose
        log write fails is never applied — the invariant WAL recovery
        (:meth:`~repro.service.durability.manager.DurabilityManager.recover`)
        relies on: every applied batch is on disk, anchored to the exact
        version it was resolved against.
        """
        with self._lock:
            self._journal = journal

    def subscribe(self, callback: Subscriber) -> Subscriber:
        """Register a callback invoked after every applied batch.

        Returns the callback so it can be used as a decorator.  Subscribers
        run inside the feed's lock (in registration order) — keep them quick;
        the built-in service wiring only evicts cache lines and bumps
        counters.
        """
        with self._lock:
            self._subscribers.append(callback)
        return callback

    def apply(self, updates: Iterable[TrafficUpdate]) -> TrafficUpdateResult:
        """Resolve and apply one batch; the *network patch* is all-or-nothing.

        Every update is resolved against the *current* costs (updates to the
        same edge within one batch compose in batch order), then the whole
        batch is validated and applied through
        :meth:`RoadNetwork.update_edge_costs`.  A missing edge, unknown
        attribute, or non-positive resulting value raises before anything is
        touched, leaving network, compiled view, and caches unchanged.

        Subscribers run *after* the patch has landed and are isolated from
        each other: a raising subscriber never prevents the remaining ones
        from invalidating their caches.  The first subscriber exception is
        re-raised once all of them have run — by then the network update
        itself has succeeded.
        """
        batch = list(updates)
        with self._lock:
            if self._journal is not None:
                # Write-ahead: the raw batch hits the journal before any of
                # it is resolved or applied.  An append failure (disk fault,
                # crash) aborts the batch entirely — never applied, never
                # acknowledged.
                self._journal.log_traffic(tuple(batch), self._network.cost_version)
            network_edge = self._network.edge
            merged: dict[EdgeKey, dict[str, float]] = {}
            for update in batch:
                key = (update.source, update.target)
                merged[key] = update.resolve(network_edge(*key), merged.get(key))
            changed = self._network.update_edge_costs(merged)
            attributes: set[str] = set()
            for key in changed:
                attributes.update(merged[key])
            result = TrafficUpdateResult(
                touched_edges=changed,
                cost_version=self._network.cost_version,
                applied=len(batch),
                attributes=frozenset(attributes),
            )
            if changed:
                self._batches_applied += 1
                first_error: BaseException | None = None
                for callback in self._subscribers:
                    try:
                        callback(result)
                    except Exception as exc:
                        if first_error is None:
                            first_error = exc
                if first_error is not None:
                    raise first_error
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrafficFeed(network={self._network.name!r}, "
            f"batches={self._batches_applied}, subscribers={len(self._subscribers)})"
        )
