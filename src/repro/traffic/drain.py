"""Streaming traffic ingestion: a background drain off the request path.

PR 3's :class:`~repro.traffic.feed.TrafficFeed` applies update batches
synchronously on the publisher's thread — correct, but it puts cache
invalidation and compiled-store patching on whatever thread produced the
update.  A :class:`TrafficDrain` decouples the two: producers
:meth:`~TrafficDrain.submit` batches onto a bounded queue and return
immediately; a daemon thread pulls everything queued, coalesces it
(last-write-wins per directed edge), and pushes one merged batch through the
feed.  Re-weights therefore happen off the request path, and a burst of
updates costs one ``apply`` instead of many.

Robustness properties, each observable through :meth:`stats`:

* **bounded queue** — a full queue sheds the *newest* batch at submit time
  (counted as ``dropped_batches``) instead of blocking the producer;
* **bounded-staleness accounting** — every applied batch records how long
  its oldest constituent waited (``last_staleness_s`` / ``max_staleness_s``);
  waits beyond ``staleness_budget_s`` are counted as violations;
* **crash-restart** — an exception inside ``feed.apply`` is counted
  (``crashes``) and remembered (``last_error``), and the drain thread keeps
  draining: ingestion never dies with one poisoned batch;
* **poison-pill shutdown** — :meth:`close` enqueues a sentinel and joins the
  thread with a timeout; it is idempotent and safe to call from
  :meth:`RoutingService.close`.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Protocol

from .updates import EdgeKey, TrafficUpdate

if TYPE_CHECKING:  # pragma: no cover
    from .feed import TrafficFeed


class _AppliesBatches(Protocol):  # pragma: no cover - typing only
    def apply(self, updates: Iterable[TrafficUpdate]) -> object: ...


#: Poison pill ending the drain thread; compared by identity.
_SHUTDOWN = object()


@dataclass(frozen=True)
class DrainStats:
    """Immutable snapshot of one :class:`TrafficDrain`'s counters."""

    queue_depth: int = 0
    """Batches currently waiting in the queue."""
    submitted_batches: int = 0
    applied_batches: int = 0
    """Merged batches pushed through ``feed.apply`` (post-coalescing)."""
    applied_updates: int = 0
    """Individual updates surviving coalescing."""
    coalesced_updates: int = 0
    """Updates superseded by a newer queued update for the same edge."""
    dropped_batches: int = 0
    """Batches shed at submit time because the queue was full."""
    crashes: int = 0
    """Exceptions raised (and survived) inside ``feed.apply``."""
    last_error: str | None = None
    last_staleness_s: float = 0.0
    """Queue wait of the oldest update in the most recently applied batch."""
    max_staleness_s: float = 0.0
    staleness_violations: int = 0
    """Applied batches whose staleness exceeded ``staleness_budget_s``."""
    running: bool = False


class TrafficDrain:
    """Background daemon pulling update batches into a :class:`TrafficFeed`.

    ``feed`` may be a real feed or anything exposing ``apply`` (e.g. a
    :class:`~repro.service.faults.FaultyFeed` in chaos tests).  The drain
    starts on construction unless ``start=False`` (tests that need to stage
    several batches before any apply call :meth:`drain_once` manually or
    :meth:`start` later).
    """

    def __init__(
        self,
        feed: "TrafficFeed | _AppliesBatches",
        *,
        max_queue: int = 256,
        poll_timeout_s: float = 0.05,
        staleness_budget_s: float | None = None,
        start: bool = True,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self._feed = feed
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=max_queue)
        self._poll_timeout_s = poll_timeout_s
        self._staleness_budget_s = staleness_budget_s
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._thread: threading.Thread | None = None
        self._closed = False
        self._stop = threading.Event()
        self._applying = False
        self._submitted = 0
        self._applied_batches = 0
        self._applied_updates = 0
        self._coalesced = 0
        self._dropped = 0
        self._crashes = 0
        self._last_error: str | None = None
        self._last_staleness = 0.0
        self._max_staleness = 0.0
        self._staleness_violations = 0
        if start:
            self.start()

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def submit(self, updates: Iterable[TrafficUpdate]) -> bool:
        """Enqueue one batch; returns ``False`` when it was shed (queue full).

        Never blocks: a producer on the request path must not wait for the
        drain.  Empty batches are accepted and ignored.
        """
        batch = list(updates)
        if not batch:
            return True
        with self._lock:
            if self._closed:
                raise RuntimeError("TrafficDrain is closed")
            self._submitted += 1
        try:
            self._queue.put((time.monotonic(), batch), block=False)
        except queue.Full:
            with self._lock:
                self._dropped += 1
            return False
        return True

    # ------------------------------------------------------------------ #
    # Drain side
    # ------------------------------------------------------------------ #
    def start(self) -> "TrafficDrain":
        """Start the daemon thread (idempotent while running)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("TrafficDrain is closed")
            if self._thread is not None and self._thread.is_alive():
                return self
            thread = threading.Thread(
                target=self._run, name="traffic-drain", daemon=True
            )
            self._thread = thread
        thread.start()
        return self

    def _run(self) -> None:
        while True:
            try:
                item = self._queue.get(timeout=self._poll_timeout_s)
            except queue.Empty:
                with self._idle:
                    self._idle.notify_all()
                if self._stop.is_set():
                    return
                continue
            if item is _SHUTDOWN:
                with self._idle:
                    self._idle.notify_all()
                return
            self._drain_item(item)
            if self._stop.is_set():
                with self._idle:
                    self._idle.notify_all()
                return

    def drain_once(self) -> int:
        """Synchronously drain everything queued right now (test hook).

        Returns the number of updates applied.  Runs on the caller's thread;
        do not mix with a running drain thread on the same queue burst.
        """
        try:
            item = self._queue.get(block=False)
        except queue.Empty:
            return 0
        if item is _SHUTDOWN:
            return 0
        return self._drain_item(item)

    def _drain_item(self, first: object) -> int:
        """Coalesce ``first`` plus everything else queued; apply once."""
        with self._lock:
            self._applying = True
        try:
            oldest_enqueued, merged, coalesced = self._coalesce(first)
            staleness = time.monotonic() - oldest_enqueued
            try:
                self._feed.apply(merged)
            except Exception as exc:
                # Crash-restart: an apply failure must never kill ingestion.
                # The exception is counted and remembered; the thread resumes.
                with self._lock:
                    self._crashes += 1
                    self._last_error = f"{type(exc).__name__}: {exc}"
                return 0
            with self._lock:
                self._applied_batches += 1
                self._applied_updates += len(merged)
                self._coalesced += coalesced
                self._last_staleness = staleness
                self._max_staleness = max(self._max_staleness, staleness)
                if (
                    self._staleness_budget_s is not None
                    and staleness > self._staleness_budget_s
                ):
                    self._staleness_violations += 1
            return len(merged)
        finally:
            with self._idle:
                self._applying = False
                self._idle.notify_all()

    def _coalesce(self, first: object) -> tuple[float, list[TrafficUpdate], int]:
        """Merge the first item with everything else currently queued.

        Last-write-wins per directed edge: when several queued updates hit
        the same edge, only the newest survives (the recommended producer
        protocol posts absolute values, for which LWW is exact; relative
        scale/delta updates to the same edge across queued batches are
        coalesced to the newest by design — compose them within one batch
        when the intermediate steps matter).
        """
        oldest_enqueued, batch = first  # type: ignore[misc]
        items = list(batch)
        while True:
            try:
                extra = self._queue.get(block=False)
            except queue.Empty:
                break
            if extra is _SHUTDOWN:
                # Preserve the shutdown request for the run loop (re-queueing
                # the pill could block if a producer refilled the queue).
                self._stop.set()
                break
            enqueued_at, more = extra  # type: ignore[misc]
            oldest_enqueued = min(oldest_enqueued, enqueued_at)
            items.extend(more)
        merged: dict[EdgeKey, TrafficUpdate] = {}
        for update in items:
            merged[update.key] = update
        coalesced = len(items) - len(merged)
        return oldest_enqueued, list(merged.values()), coalesced

    # ------------------------------------------------------------------ #
    # Lifecycle / monitoring
    # ------------------------------------------------------------------ #
    def flush(self, timeout_s: float = 5.0) -> bool:
        """Wait until everything queued so far has been applied.

        Returns ``False`` on timeout.  Intended for tests and orderly
        shutdown, not the hot path.
        """
        deadline = time.monotonic() + timeout_s
        with self._idle:
            while not self._queue.empty() or self._applying:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(timeout=min(remaining, self._poll_timeout_s))
        return True

    def close(self, timeout_s: float = 5.0) -> bool:
        """Stop the drain thread (poison pill + bounded join); idempotent.

        Already-queued batches ahead of the pill are drained first.  Returns
        ``False`` when the thread failed to stop within the timeout.
        """
        with self._lock:
            if self._closed:
                thread = self._thread
                return thread is None or not thread.is_alive()
            self._closed = True
            thread = self._thread
        if thread is None or not thread.is_alive():
            return True
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                self._queue.put(_SHUTDOWN, timeout=min(0.05, timeout_s))
                break
            except queue.Full:
                if time.monotonic() >= deadline:
                    return False
        thread.join(timeout=max(0.0, deadline - time.monotonic()))
        return not thread.is_alive()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def stats(self) -> DrainStats:
        """Immutable snapshot of the drain's counters."""
        with self._lock:
            thread = self._thread
            return DrainStats(
                queue_depth=self._queue.qsize(),
                submitted_batches=self._submitted,
                applied_batches=self._applied_batches,
                applied_updates=self._applied_updates,
                coalesced_updates=self._coalesced,
                dropped_batches=self._dropped,
                crashes=self._crashes,
                last_error=self._last_error,
                last_staleness_s=self._last_staleness,
                max_staleness_s=self._max_staleness,
                staleness_violations=self._staleness_violations,
                running=thread is not None and thread.is_alive() and not self._closed,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"TrafficDrain(depth={stats.queue_depth}, applied={stats.applied_batches}, "
            f"crashes={stats.crashes}, running={stats.running})"
        )
