"""Similarity functions: path similarity (Eq. 1 and Eq. 4) and region-edge
similarity ``reSim``.

Path similarity compares a constructed path against a ground-truth path by
shared edge length.  Region-edge similarity combines the distance between the
connected regions' centroids with the Jaccard similarity of the regions' road
type functionality sets, and drives the preference transfer of Step 2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..network.road_network import RoadNetwork, VertexId
from ..routing.path import Path

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..regions.region_graph import RegionEdge


def _edge_lengths(network: RoadNetwork, path: Path | Sequence[VertexId]) -> dict[tuple[VertexId, VertexId], float]:
    vertices = list(path)
    lengths: dict[tuple[VertexId, VertexId], float] = {}
    for i in range(len(vertices) - 1):
        key = (vertices[i], vertices[i + 1])
        lengths[key] = network.w_di(*key)
    return lengths


def path_similarity(
    network: RoadNetwork,
    ground_truth: Path | Sequence[VertexId],
    constructed: Path | Sequence[VertexId],
) -> float:
    """Eq. 1: shared edge length divided by the ground-truth length.

    ``pSim = sum_{e in Pk ∩ Pv} len(e) / sum_{e in Pk} len(e)``
    """
    gt_lengths = _edge_lengths(network, ground_truth)
    if not gt_lengths:
        # A trivial (single-vertex) ground truth is matched iff the
        # constructed path is also trivial and on the same vertex.
        gt_vertices = list(ground_truth)
        cons_vertices = list(constructed)
        return 1.0 if gt_vertices == cons_vertices else 0.0
    constructed_edges = set(_edge_lengths(network, constructed))
    shared = sum(length for key, length in gt_lengths.items() if key in constructed_edges)
    total = sum(gt_lengths.values())
    return shared / total if total > 0 else 0.0


def path_similarity_union(
    network: RoadNetwork,
    ground_truth: Path | Sequence[VertexId],
    constructed: Path | Sequence[VertexId],
) -> float:
    """Eq. 4: shared edge length divided by the length of the edge union.

    ``pSim = sum_{e in Pk ∩ Pv} len(e) / sum_{e in Pk ∪ Pv} len(e)``
    """
    gt_lengths = _edge_lengths(network, ground_truth)
    cons_lengths = _edge_lengths(network, constructed)
    if not gt_lengths and not cons_lengths:
        gt_vertices = list(ground_truth)
        cons_vertices = list(constructed)
        return 1.0 if gt_vertices == cons_vertices else 0.0
    union = dict(gt_lengths)
    union.update(cons_lengths)
    shared = sum(length for key, length in gt_lengths.items() if key in cons_lengths)
    total = sum(union.values())
    return shared / total if total > 0 else 0.0


def jaccard(a: Iterable[object], b: Iterable[object]) -> float:
    """Plain Jaccard similarity of two finite sets."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def region_edge_similarity(edge_a: "RegionEdge", edge_b: "RegionEdge") -> float:
    """``reSim``: distance-ratio similarity plus functionality Jaccard.

    ``reSim(rei, rej) = min(dis_i, dis_j) / max(dis_i, dis_j) + J(F_i, F_j)``

    The result lies in ``[0, 2]``; the paper's ``amr`` threshold is applied to
    this raw value.  Degenerate zero distances fall back to a ratio of 1 when
    both are zero and 0 otherwise.
    """
    dis_a, dis_b = edge_a.centroid_distance_m, edge_b.centroid_distance_m
    if dis_a <= 0.0 and dis_b <= 0.0:
        distance_similarity = 1.0
    elif dis_a <= 0.0 or dis_b <= 0.0:
        distance_similarity = 0.0
    else:
        distance_similarity = min(dis_a, dis_b) / max(dis_a, dis_b)
    functionality_similarity = jaccard(edge_a.functionality, edge_b.functionality)
    return distance_similarity + functionality_similarity
