"""Step 1: learning routing preferences for T-edges.

For each T-edge's path set ``P_ij`` we search for the preference vector
``V* = <master, slave>`` whose preference-constructed paths best match the
ground-truth paths under Eq. 1.  Instead of enumerating the whole master x
slave product, the paper's coordinate-descent-style procedure is used:

1. for each ground-truth path, compute the lowest-cost path under each travel
   cost feature (DI, TT, FC) and pick the feature whose paths are most similar
   to the ground truth (the *master*);
2. with the master fixed, try each road-condition feature (via the
   preference-aware Dijkstra of Algorithm 2) and keep the one that improves
   similarity the most; if none improves, the slave stays empty.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from ..exceptions import NoPathError
from ..network.road_network import RoadNetwork
from ..routing.costs import CostFeature
from ..routing.dijkstra import lowest_cost_path
from ..routing.path import Path
from ..routing.preference_dijkstra import preference_dijkstra
from .features import FeatureCatalog, RoadConditionFeature
from .model import PreferenceVector
from .similarity import path_similarity


@dataclass
class LearnedPreference:
    """The result of Step-1 learning for one T-edge."""

    preference: PreferenceVector
    similarity: float
    """Mean Eq. 1 similarity of the constructed paths against the path set."""
    per_path_preferences: list[PreferenceVector] = field(default_factory=list)
    """The per-path best preferences (used for the Fig. 6a uniqueness curve)."""

    @property
    def unique_preference_count(self) -> int:
        return len(set(self.per_path_preferences)) if self.per_path_preferences else 1


class PreferenceLearner:
    """Learns a representative routing preference from a set of paths."""

    def __init__(
        self,
        network: RoadNetwork,
        catalog: FeatureCatalog | None = None,
        min_improvement: float = 1e-9,
        max_paths_per_edge: int = 12,
    ) -> None:
        self._network = network
        self._catalog = catalog or FeatureCatalog()
        self._min_improvement = min_improvement
        self._max_paths_per_edge = max_paths_per_edge

    # ------------------------------------------------------------------ #
    def learn(self, paths: Sequence[Path]) -> LearnedPreference:
        """Learn the representative preference for a T-edge path set."""
        usable = [p for p in paths if len(p) >= 2][: self._max_paths_per_edge]
        if not usable:
            # Degenerate path sets carry no information: default to fastest.
            default = PreferenceVector(master=CostFeature.TRAVEL_TIME, slave=None)
            return LearnedPreference(preference=default, similarity=0.0)

        per_path: list[PreferenceVector] = [self._learn_single(path) for path in usable]

        # The representative preference is the most common per-path preference
        # (ties broken by re-scoring against the whole path set).
        counted = Counter(per_path)
        top_count = counted.most_common(1)[0][1]
        candidates = [pref for pref, count in counted.items() if count == top_count]
        best_pref = candidates[0]
        best_score = -1.0
        if len(candidates) > 1:
            for pref in candidates:
                score = self._score(pref, usable)
                if score > best_score:
                    best_score = score
                    best_pref = pref
        else:
            best_score = self._score(best_pref, usable)
        return LearnedPreference(
            preference=best_pref,
            similarity=best_score,
            per_path_preferences=per_path,
        )

    def _learn_single(self, path: Path) -> PreferenceVector:
        """Coordinate-descent learning of one ground-truth path's preference."""
        source, destination = path.source, path.destination

        # Master dimension: the cost feature with the most similar lowest-cost path.
        best_master = self._catalog.cost_features[0]
        best_similarity = -1.0
        for feature in self._catalog.cost_features:
            try:
                candidate = lowest_cost_path(self._network, source, destination, feature)
            except NoPathError:
                continue
            similarity = path_similarity(self._network, path, candidate)
            if similarity > best_similarity:
                best_similarity = similarity
                best_master = feature

        # The master feature alone already reproduces the path: no road
        # condition feature can improve on a perfect match.
        if best_similarity >= 1.0 - 1e-9:
            return PreferenceVector(master=best_master, slave=None)

        # Slave dimension: the road-condition feature with the largest
        # improvement.  Only features whose road types actually occur on the
        # ground-truth path can increase the shared length, so the others are
        # skipped (a substantial saving on large catalogs).
        ground_truth_types = {
            self._network.w_rt(u, v) for u, v in path.edge_keys
        }
        best_slave: RoadConditionFeature | None = None
        best_gain = self._min_improvement
        for road_feature in self._catalog.road_condition_features:
            if not (road_feature.road_types & ground_truth_types):
                continue
            preference = PreferenceVector(master=best_master, slave=road_feature)
            try:
                candidate = preference_dijkstra(self._network, source, destination, preference)
            except NoPathError:
                continue
            similarity = path_similarity(self._network, path, candidate)
            gain = similarity - best_similarity
            if gain > best_gain:
                best_gain = gain
                best_slave = road_feature
        return PreferenceVector(master=best_master, slave=best_slave)

    def _score(
        self, preference: PreferenceVector, paths: Sequence[Path], sample: int = 4
    ) -> float:
        """Mean Eq. 1 similarity of preference-constructed paths to ``paths``.

        Only a small sample of paths is scored; the score is diagnostic (it is
        reported, not optimized over), so the sample keeps Step 1 fast on
        T-edges with many associated paths.
        """
        total = 0.0
        count = 0
        for path in paths[:sample]:
            try:
                constructed = preference_dijkstra(
                    self._network, path.source, path.destination, preference
                )
            except NoPathError:
                continue
            total += path_similarity(self._network, path, constructed)
            count += 1
        return total / count if count else 0.0


def learn_t_edge_preferences(
    network: RoadNetwork,
    region_graph,
    catalog: FeatureCatalog | None = None,
    max_paths_per_edge: int = 12,
) -> dict[tuple[int, int], LearnedPreference]:
    """Learn preferences for every T-edge of a region graph (Step 1).

    The learned preference is stored on each edge (``edge.preference``) and
    also returned keyed by the edge's ``(region_a, region_b)`` pair.
    """
    learner = PreferenceLearner(network, catalog=catalog, max_paths_per_edge=max_paths_per_edge)
    results: dict[tuple[int, int], LearnedPreference] = {}
    for edge in region_graph.t_edges():
        learned = learner.learn(edge.paths())
        edge.preference = learned.preference
        edge.preference_transferred = False
        results[edge.key] = learned
    return results
