"""Step 2: transferring routing preferences from T-edges to B-edges.

Graph-based transduction following Section V-B:

* every region edge (T-edge or B-edge) becomes a vertex of a similarity graph;
  the adjacency matrix ``M`` holds pairwise ``reSim`` values, thresholded by
  ``amr`` (values below the threshold are zeroed);
* the label matrix ``Y`` (one row per region edge, one column per feature of
  the :class:`~repro.preferences.features.FeatureCatalog`) is seeded with the
  T-edges' learned preferences; B-edge rows start at zero;
* the transferred labels ``Yhat`` minimize Eq. 2 and are obtained by solving
  Eq. 3, ``(S + mu1*L + mu2*I) Yhat_col = S Y_col``, once per feature column
  with an iterative solver;
* each B-edge's transferred preference is decoded from its ``Yhat`` row
  (argmax over cost columns, argmax over road columns); rows whose cost
  probabilities are all ~zero yield a *null* preference — those B-edges later
  fall back to fastest paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import TransferError
from .features import FeatureCatalog
from .model import PreferenceVector
from .similarity import region_edge_similarity
from .solvers import solve

_SPARSE_THRESHOLD = 600
"""Above this number of region edges the Eq. 3 systems are solved with
scipy's sparse conjugate gradients instead of the dense in-house solvers."""


@dataclass(frozen=True)
class TransferConfig:
    """Hyper-parameters of the transduction step."""

    amr: float = 0.7
    """Adjacency-matrix reduction threshold (Table III default)."""
    mu1: float = 1.0
    """Weight of the Laplacian smoothing term in Eq. 2."""
    mu2: float = 0.01
    """Weight of the L2 regularization term in Eq. 2."""
    solver: str = "cg"
    """Iterative solver: ``"cg"``, ``"jacobi"``, or ``"direct"``."""
    null_threshold: float = 1e-6
    """Below this maximum cost-column probability a B-edge row is *null*."""


@dataclass
class TransferResult:
    """Output of the transfer step."""

    preferences: list[PreferenceVector | None]
    """Transferred preference per input edge, aligned with the input order
    (T-edges keep their learned preference)."""
    y_hat: np.ndarray
    """The full label matrix after transduction (n_edges x n_features)."""
    null_rate: float
    """Fraction of B-edges that received no preference (the paper's N-rate)."""
    runtime_s: float
    solver_iterations: int = 0
    adjacency_density: float = 0.0
    diagnostics: dict[str, float] = field(default_factory=dict)


class PreferenceTransfer:
    """Graph-based transduction of routing preferences."""

    def __init__(self, catalog: FeatureCatalog | None = None, config: TransferConfig | None = None) -> None:
        self._catalog = catalog or FeatureCatalog()
        self._config = config or TransferConfig()

    @property
    def config(self) -> TransferConfig:
        return self._config

    @property
    def catalog(self) -> FeatureCatalog:
        return self._catalog

    # ------------------------------------------------------------------ #
    def build_adjacency(self, edges: Sequence) -> np.ndarray:
        """The thresholded similarity matrix ``M`` over region edges.

        The pairwise ``reSim`` values are computed with vectorized numpy
        operations: the distance-ratio component from the edges' centroid
        distances and the functionality-Jaccard component from a binary
        edge x road-type-pair incidence matrix.  The result is identical to
        calling :func:`region_edge_similarity` pairwise (tested), but scales
        to thousands of region edges.
        """
        n = len(edges)
        if n == 0:
            return np.zeros((0, 0), dtype=float)
        amr = self._config.amr

        distances = np.array([max(0.0, float(e.centroid_distance_m)) for e in edges], dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            minimum = np.minimum.outer(distances, distances)
            maximum = np.maximum.outer(distances, distances)
            ratio = np.where(maximum > 0.0, minimum / np.where(maximum > 0.0, maximum, 1.0), 1.0)

        # Functionality Jaccard via a binary incidence matrix over the
        # vocabulary of road-type pairs that actually occur.
        vocabulary: dict[tuple, int] = {}
        for edge in edges:
            for pair in edge.functionality:
                vocabulary.setdefault(pair, len(vocabulary))
        if vocabulary:
            incidence = np.zeros((n, len(vocabulary)), dtype=float)
            for i, edge in enumerate(edges):
                for pair in edge.functionality:
                    incidence[i, vocabulary[pair]] = 1.0
            intersection = incidence @ incidence.T
            sizes = incidence.sum(axis=1)
            union = np.add.outer(sizes, sizes) - intersection
            with np.errstate(divide="ignore", invalid="ignore"):
                jaccard = np.where(union > 0.0, intersection / np.where(union > 0.0, union, 1.0), 0.0)
        else:
            jaccard = np.zeros((n, n), dtype=float)

        matrix = ratio + jaccard
        matrix[matrix < amr] = 0.0
        np.fill_diagonal(matrix, 0.0)
        return matrix

    def build_labels(
        self,
        edges: Sequence,
        labelled: Sequence[PreferenceVector | None],
    ) -> tuple[np.ndarray, np.ndarray]:
        """The seed label matrix ``Y`` and the selector diagonal ``S``."""
        n = len(edges)
        p = self._catalog.n_features
        y = np.zeros((n, p), dtype=float)
        s_diag = np.zeros(n, dtype=float)
        for i, preference in enumerate(labelled):
            if preference is None:
                continue
            y[i, :] = preference.to_row(self._catalog)
            s_diag[i] = 1.0
        return y, s_diag

    def transfer(
        self,
        edges: Sequence,
        labelled: Sequence[PreferenceVector | None],
    ) -> TransferResult:
        """Run the transduction.

        ``edges`` are region edges (anything exposing ``centroid_distance_m``
        and ``functionality``); ``labelled`` holds the known preference for
        T-edges and ``None`` for B-edges, aligned with ``edges``.
        """
        if len(edges) != len(labelled):
            raise TransferError(
                f"edges ({len(edges)}) and labels ({len(labelled)}) must align"
            )
        if not edges:
            return TransferResult(
                preferences=[], y_hat=np.zeros((0, self._catalog.n_features)),
                null_rate=0.0, runtime_s=0.0,
            )
        if not any(pref is not None for pref in labelled):
            raise TransferError("preference transfer needs at least one labelled T-edge")

        started = time.perf_counter()
        adjacency = self.build_adjacency(edges)
        y, s_diag = self.build_labels(edges, labelled)
        n = len(edges)

        y_hat = np.zeros_like(y)
        total_iterations = 0
        if n > _SPARSE_THRESHOLD:
            # Large instances: the thresholded adjacency is sparse, so Eq. 3
            # is solved with scipy's sparse conjugate gradients.
            from scipy import sparse
            from scipy.sparse.linalg import cg as sparse_cg

            adjacency_sp = sparse.csr_matrix(adjacency)
            degree = np.asarray(adjacency_sp.sum(axis=1)).ravel()
            laplacian = sparse.diags(degree) - adjacency_sp
            system = (
                sparse.diags(s_diag)
                + self._config.mu1 * laplacian
                + self._config.mu2 * sparse.identity(n, format="csr")
            ).tocsr()
            for column in range(y.shape[1]):
                rhs = s_diag * y[:, column]
                solution, info = sparse_cg(system, rhs, rtol=1e-8, maxiter=4 * n)
                y_hat[:, column] = solution
                total_iterations += 1 if info == 0 else 0
        else:
            degree = adjacency.sum(axis=1)
            laplacian = np.diag(degree) - adjacency
            system = (
                np.diag(s_diag)
                + self._config.mu1 * laplacian
                + self._config.mu2 * np.eye(n)
            )
            for column in range(y.shape[1]):
                rhs = s_diag * y[:, column]
                result = solve(system, rhs, method=self._config.solver)
                y_hat[:, column] = result.x
                total_iterations += result.iterations

        preferences: list[PreferenceVector | None] = []
        null_count = 0
        unlabelled_count = 0
        for i, known in enumerate(labelled):
            if known is not None:
                preferences.append(known)
                continue
            unlabelled_count += 1
            decoded = PreferenceVector.from_row(
                y_hat[i], self._catalog, slave_threshold=self._config.null_threshold
            )
            if decoded is None:
                null_count += 1
            preferences.append(decoded)

        runtime = time.perf_counter() - started
        possible_pairs = n * (n - 1) / 2.0
        density = float(np.count_nonzero(np.triu(adjacency, 1))) / possible_pairs if possible_pairs else 0.0
        return TransferResult(
            preferences=preferences,
            y_hat=y_hat,
            null_rate=null_count / unlabelled_count if unlabelled_count else 0.0,
            runtime_s=runtime,
            solver_iterations=total_iterations,
            adjacency_density=density,
            diagnostics={
                "n_edges": float(n),
                "n_labelled": float(sum(1 for p in labelled if p is not None)),
                "mu1": self._config.mu1,
                "mu2": self._config.mu2,
                "amr": self._config.amr,
            },
        )


def transfer_to_b_edges(
    region_graph,
    catalog: FeatureCatalog | None = None,
    config: TransferConfig | None = None,
) -> TransferResult:
    """Transfer preferences from a region graph's T-edges to its B-edges.

    T-edges must already carry learned preferences (Step 1); each B-edge gets
    its ``preference`` attribute set (possibly ``None`` for null rows).
    """
    transferrer = PreferenceTransfer(catalog=catalog, config=config)
    t_edges = [e for e in region_graph.t_edges() if e.preference is not None]
    b_edges = region_graph.b_edges()
    edges = t_edges + b_edges
    labelled: list[PreferenceVector | None] = [e.preference for e in t_edges] + [None] * len(b_edges)
    result = transferrer.transfer(edges, labelled)
    for edge, preference in zip(edges, result.preferences):
        if edge.is_b_edge:
            edge.preference = preference
            edge.preference_transferred = preference is not None
    return result


def evaluate_transfer_accuracy(
    edges: Sequence,
    true_preferences: Sequence[PreferenceVector],
    transferred: Sequence[PreferenceVector | None],
) -> float:
    """Mean Jaccard similarity between true and transferred preferences.

    Used by the Fig. 9 experiments, where a partition of T-edges is held out
    as ground truth and receives transferred preferences as if it were
    unlabelled.
    """
    if not true_preferences:
        return 0.0
    total = 0.0
    for truth, predicted in zip(true_preferences, transferred):
        total += truth.similarity(predicted)
    return total / len(true_preferences)
