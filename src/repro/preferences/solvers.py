"""Iterative linear-system solvers used by preference transfer.

Equation 3 of the paper, ``(S + mu1*L + mu2*I) yhat = S y``, is a symmetric
positive-definite system (S is a 0/1 diagonal matrix, L a graph Laplacian, and
mu2 > 0 adds ridge regularization).  The paper solves it with iterative
approximation — the Jacobi method or conjugate gradients.  Both are
implemented here on top of plain numpy arrays so the whole pipeline remains
dependency-light; :func:`solve` picks conjugate gradients by default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SolverResult:
    """Solution vector plus convergence diagnostics."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def jacobi(
    matrix: np.ndarray,
    rhs: np.ndarray,
    tol: float = 1e-8,
    max_iterations: int = 2_000,
) -> SolverResult:
    """Jacobi iteration ``x_{k+1} = D^{-1} (b - R x_k)``.

    Requires a non-zero diagonal; with the ridge term of Eq. 3 this always
    holds.  Converges for diagonally dominant systems; for safety the residual
    is tracked and the best iterate returned even without convergence.
    """
    matrix = np.asarray(matrix, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    diagonal = np.diag(matrix)
    if np.any(np.abs(diagonal) < 1e-15):
        raise ValueError("Jacobi requires a non-zero diagonal")
    remainder = matrix - np.diagflat(diagonal)
    x = np.zeros_like(rhs)
    best_x = x
    best_residual = float(np.linalg.norm(matrix @ x - rhs))
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        x = (rhs - remainder @ x) / diagonal
        residual = float(np.linalg.norm(matrix @ x - rhs))
        if residual < best_residual:
            best_residual = residual
            best_x = x
        if residual <= tol:
            return SolverResult(x=x, iterations=iterations, residual_norm=residual, converged=True)
    return SolverResult(
        x=best_x, iterations=iterations, residual_norm=best_residual, converged=False
    )


def conjugate_gradient(
    matrix: np.ndarray,
    rhs: np.ndarray,
    tol: float = 1e-10,
    max_iterations: int | None = None,
) -> SolverResult:
    """Conjugate-gradient solver for symmetric positive-definite systems."""
    matrix = np.asarray(matrix, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    n = rhs.shape[0]
    max_iterations = max_iterations or max(100, 4 * n)
    x = np.zeros_like(rhs)
    residual = rhs - matrix @ x
    direction = residual.copy()
    rs_old = float(residual @ residual)
    if rs_old <= tol * tol:
        return SolverResult(x=x, iterations=0, residual_norm=float(np.sqrt(rs_old)), converged=True)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        matrix_direction = matrix @ direction
        denom = float(direction @ matrix_direction)
        if abs(denom) < 1e-30:
            break
        alpha = rs_old / denom
        x = x + alpha * direction
        residual = residual - alpha * matrix_direction
        rs_new = float(residual @ residual)
        if rs_new <= tol * tol:
            return SolverResult(
                x=x, iterations=iterations, residual_norm=float(np.sqrt(rs_new)), converged=True
            )
        direction = residual + (rs_new / rs_old) * direction
        rs_old = rs_new
    return SolverResult(
        x=x, iterations=iterations, residual_norm=float(np.sqrt(rs_old)), converged=False
    )


def solve(
    matrix: np.ndarray,
    rhs: np.ndarray,
    method: str = "cg",
    tol: float = 1e-10,
    max_iterations: int | None = None,
) -> SolverResult:
    """Solve ``matrix @ x = rhs`` with the chosen iterative method.

    ``method`` is ``"cg"`` (conjugate gradients, default), ``"jacobi"``, or
    ``"direct"`` (numpy's dense solver, used as a reference in tests).
    """
    if method == "cg":
        return conjugate_gradient(matrix, rhs, tol=tol, max_iterations=max_iterations)
    if method == "jacobi":
        return jacobi(matrix, rhs, tol=max(tol, 1e-8), max_iterations=max_iterations or 2_000)
    if method == "direct":
        x = np.linalg.solve(np.asarray(matrix, dtype=float), np.asarray(rhs, dtype=float))
        residual = float(np.linalg.norm(matrix @ x - rhs))
        return SolverResult(x=x, iterations=1, residual_norm=residual, converged=True)
    raise ValueError(f"unknown solver method {method!r}; expected 'cg', 'jacobi', or 'direct'")
