"""Step 3: applying transferred preferences to materialize B-edge paths.

Each B-edge carries a transferred preference vector (or ``None``).  For every
pair of a transfer center of the first region and a transfer center of the
second region, a path is computed with the preference-aware Dijkstra of
Algorithm 2 (or a fastest path when the preference is null) and attached to
the B-edge, so that the routing module can treat T-edges and B-edges
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import NoPathError
from ..network.road_network import RoadNetwork
from ..routing.dijkstra import fastest_path
from ..routing.preference_dijkstra import preference_dijkstra
from ..regions.region_graph import RegionEdge, RegionGraph


@dataclass(frozen=True)
class ApplyConfig:
    """Controls for B-edge path materialization."""

    max_transfer_center_pairs: int = 4
    """Cap on the number of (center_a, center_b) pairs per B-edge; the most
    central pairs (closest to the two regions' centroids) are preferred."""


def materialize_b_edge_paths(
    network: RoadNetwork,
    region_graph: RegionGraph,
    config: ApplyConfig | None = None,
) -> int:
    """Attach preference-based paths to every B-edge of the region graph.

    Returns the number of paths that were attached across all B-edges.
    """
    config = config or ApplyConfig()
    attached = 0
    for edge in region_graph.b_edges():
        attached += _materialize_edge(network, region_graph, edge, config)
    return attached


def _materialize_edge(
    network: RoadNetwork,
    region_graph: RegionGraph,
    edge: RegionEdge,
    config: ApplyConfig,
) -> int:
    from ..network.spatial import equirectangular_m

    centers_a = list(region_graph.transfer_centers(edge.region_a))
    centers_b = list(region_graph.transfer_centers(edge.region_b))
    if not centers_a or not centers_b:
        return 0

    centroid_a = region_graph.region_centroid(edge.region_a)
    centroid_b = region_graph.region_centroid(edge.region_b)

    # Prefer transfer centers close to the opposite region so that the
    # materialized paths are short and representative.
    centers_a.sort(key=lambda v: equirectangular_m(network.coordinates(v), centroid_b))
    centers_b.sort(key=lambda v: equirectangular_m(network.coordinates(v), centroid_a))

    pairs: list[tuple[int, int]] = []
    for a in centers_a:
        for b in centers_b:
            if a != b:
                pairs.append((a, b))
            if len(pairs) >= config.max_transfer_center_pairs:
                break
        if len(pairs) >= config.max_transfer_center_pairs:
            break

    attached = 0
    for source, destination in pairs:
        try:
            if edge.preference is not None:
                path = preference_dijkstra(network, source, destination, edge.preference)
            else:
                path = fastest_path(network, source, destination)
        except NoPathError:
            continue
        if len(path) >= 2:
            edge.add_path(path)
            edge.transfer_pairs.add((source, destination))
            attached += 1
    return attached
