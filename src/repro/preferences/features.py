"""Feature catalog for routing preferences.

A routing preference is a 2-dimensional vector: the *master* dimension is one
of the travel-cost features (DI, TT, FC) and the *slave* dimension is one of
the road-condition features (a preferred set of road types) or absent.  The
transduction step of the paper flattens both dimensions into the ``p`` columns
of the label matrix ``Y``; :class:`FeatureCatalog` owns that flattening.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..network.road_types import RoadType
from ..routing.costs import ALL_COST_FEATURES, CostFeature


@dataclass(frozen=True)
class RoadConditionFeature:
    """A road-condition feature: a named set of preferred road types."""

    name: str
    road_types: frozenset[RoadType]

    def satisfied_by(self, road_type: RoadType) -> bool:
        """True if an edge of ``road_type`` satisfies this preference."""
        return road_type in self.road_types

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def single_type_feature(road_type: RoadType) -> RoadConditionFeature:
    """A road-condition feature preferring exactly one road type."""
    return RoadConditionFeature(name=road_type.osm_tag, road_types=frozenset({road_type}))


def combined_feature(*road_types: RoadType) -> RoadConditionFeature:
    """A road-condition feature preferring any of several road types."""
    name = "+".join(rt.osm_tag for rt in road_types)
    return RoadConditionFeature(name=name, road_types=frozenset(road_types))


MAJOR_ROADS = combined_feature(RoadType.MOTORWAY, RoadType.TRUNK, RoadType.PRIMARY)
"""Highways-and-arterials condition (the paper's "highways" style feature)."""

LOCAL_ROADS = combined_feature(RoadType.TERTIARY, RoadType.RESIDENTIAL)
"""Local / residential roads condition."""


def default_road_condition_features() -> list[RoadConditionFeature]:
    """The paper's default slave-dimension catalog.

    One feature per OSM road class (motorway, trunk, primary, secondary,
    tertiary, residential) plus the two combined features (major, local).
    """
    singles = [single_type_feature(rt) for rt in RoadType]
    return singles + [MAJOR_ROADS, LOCAL_ROADS]


class FeatureCatalog:
    """The flattened feature space used by preference transfer.

    Columns ``0 .. n_cost-1`` are the travel-cost features; the remaining
    columns are road-condition features.  The catalog provides the mapping in
    both directions and is shared between Step 1 (learning), Step 2
    (transfer), and Step 3 (application).
    """

    def __init__(
        self,
        cost_features: Sequence[CostFeature] | None = None,
        road_condition_features: Sequence[RoadConditionFeature] | None = None,
    ) -> None:
        self._cost_features: tuple[CostFeature, ...] = tuple(
            cost_features if cost_features is not None else ALL_COST_FEATURES
        )
        self._road_features: tuple[RoadConditionFeature, ...] = tuple(
            road_condition_features
            if road_condition_features is not None
            else default_road_condition_features()
        )
        if not self._cost_features:
            raise ValueError("a FeatureCatalog needs at least one travel-cost feature")

    # ------------------------------------------------------------------ #
    @property
    def cost_features(self) -> tuple[CostFeature, ...]:
        return self._cost_features

    @property
    def road_condition_features(self) -> tuple[RoadConditionFeature, ...]:
        return self._road_features

    @property
    def n_cost(self) -> int:
        return len(self._cost_features)

    @property
    def n_road(self) -> int:
        return len(self._road_features)

    @property
    def n_features(self) -> int:
        """Total number of columns ``p`` in the label matrix."""
        return self.n_cost + self.n_road

    def column_names(self) -> list[str]:
        """Human-readable names for all columns, in column order."""
        return [f.short_name for f in self._cost_features] + [f.name for f in self._road_features]

    # ------------------------------------------------------------------ #
    def cost_column(self, feature: CostFeature) -> int:
        """Column index of a travel-cost feature."""
        return self._cost_features.index(feature)

    def road_column(self, feature: RoadConditionFeature) -> int:
        """Column index of a road-condition feature."""
        return self.n_cost + self._road_features.index(feature)

    def cost_feature_at(self, column: int) -> CostFeature:
        """Travel-cost feature stored at a master-dimension column."""
        return self._cost_features[column]

    def road_feature_at(self, column: int) -> RoadConditionFeature:
        """Road-condition feature stored at a slave-dimension column."""
        return self._road_features[column - self.n_cost]

    def cost_columns(self) -> range:
        """Range of master-dimension column indices."""
        return range(0, self.n_cost)

    def road_columns(self) -> range:
        """Range of slave-dimension column indices."""
        return range(self.n_cost, self.n_features)

    def __iter__(self) -> Iterator[str]:
        return iter(self.column_names())

    def __len__(self) -> int:
        return self.n_features
