"""Routing-preference vectors.

A :class:`PreferenceVector` is the 2-dimensional preference of the paper:
``<master, slave>`` where the master is a travel-cost feature (DI / TT / FC)
and the slave is a road-condition feature or ``None`` (no road-type
preference).  Vectors are hashable so that they can be counted and compared
when analysing the learned preference distribution (Fig. 6a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..routing.costs import CostFeature
from .features import FeatureCatalog, RoadConditionFeature


@dataclass(frozen=True)
class PreferenceVector:
    """A ``<master, slave>`` routing preference."""

    master: CostFeature
    slave: RoadConditionFeature | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        slave = self.slave.name if self.slave is not None else "-"
        return f"<{self.master.short_name}, {slave}>"

    @property
    def has_slave(self) -> bool:
        return self.slave is not None

    def to_row(self, catalog: FeatureCatalog) -> np.ndarray:
        """Encode this vector as a 0/1 row of the label matrix ``Y``.

        The master column and (if present) the slave column are set to 1, all
        other columns to 0 — this is exactly how the paper seeds T-edge rows
        before transduction.
        """
        row = np.zeros(catalog.n_features, dtype=float)
        row[catalog.cost_column(self.master)] = 1.0
        if self.slave is not None:
            row[catalog.road_column(self.slave)] = 1.0
        return row

    @classmethod
    def from_row(
        cls,
        row: np.ndarray,
        catalog: FeatureCatalog,
        slave_threshold: float = 1e-9,
    ) -> "PreferenceVector | None":
        """Decode a (possibly fractional) label row back into a vector.

        The master feature is the argmax over the cost columns, the slave
        feature the argmax over the road-condition columns; if all cost-column
        probabilities are (numerically) zero the row carries no information
        and ``None`` is returned — this is the *null preference* case of the
        paper, which falls back to fastest paths.
        """
        cost_slice = np.asarray(row[: catalog.n_cost], dtype=float)
        if cost_slice.size == 0 or float(np.max(cost_slice)) <= slave_threshold:
            return None
        master = catalog.cost_feature_at(int(np.argmax(cost_slice)))

        slave: RoadConditionFeature | None = None
        if catalog.n_road:
            road_slice = np.asarray(row[catalog.n_cost :], dtype=float)
            if float(np.max(road_slice)) > slave_threshold:
                slave = catalog.road_feature_at(catalog.n_cost + int(np.argmax(road_slice)))
        return cls(master=master, slave=slave)

    def similarity(self, other: "PreferenceVector | None") -> float:
        """Jaccard similarity of the two vectors' feature sets.

        Used when evaluating transfer accuracy (Fig. 9) and the similarity /
        preference-similarity relationship (Fig. 6b).
        """
        if other is None:
            return 0.0
        mine = {("cost", self.master)}
        theirs = {("cost", other.master)}
        if self.slave is not None:
            mine.add(("road", self.slave.name))
        if other.slave is not None:
            theirs.add(("road", other.slave.name))
        union = mine | theirs
        if not union:
            return 0.0
        return len(mine & theirs) / len(union)
