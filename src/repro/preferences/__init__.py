"""Routing preferences: model, learning (Step 1), transfer (Step 2), application (Step 3)."""

from .features import (
    FeatureCatalog,
    LOCAL_ROADS,
    MAJOR_ROADS,
    RoadConditionFeature,
    combined_feature,
    default_road_condition_features,
    single_type_feature,
)
from .model import PreferenceVector
from .similarity import (
    jaccard,
    path_similarity,
    path_similarity_union,
    region_edge_similarity,
)
from .learning import LearnedPreference, PreferenceLearner, learn_t_edge_preferences
from .solvers import SolverResult, conjugate_gradient, jacobi, solve
from .transfer import (
    PreferenceTransfer,
    TransferConfig,
    TransferResult,
    evaluate_transfer_accuracy,
    transfer_to_b_edges,
)
from .apply import ApplyConfig, materialize_b_edge_paths

__all__ = [
    "ApplyConfig",
    "FeatureCatalog",
    "LOCAL_ROADS",
    "LearnedPreference",
    "MAJOR_ROADS",
    "PreferenceLearner",
    "PreferenceTransfer",
    "PreferenceVector",
    "RoadConditionFeature",
    "SolverResult",
    "TransferConfig",
    "TransferResult",
    "combined_feature",
    "conjugate_gradient",
    "default_road_condition_features",
    "evaluate_transfer_accuracy",
    "jaccard",
    "jacobi",
    "learn_t_edge_preferences",
    "materialize_b_edge_paths",
    "path_similarity",
    "path_similarity_union",
    "region_edge_similarity",
    "single_type_feature",
    "solve",
    "transfer_to_b_edges",
]
