"""Array-compiled contraction-hierarchy queries with live re-weighting.

A :class:`CompiledHierarchy` is the CSR-shaped counterpart of
:class:`~repro.routing.contraction.ContractionHierarchy`: the upward and
downward arc sets flattened into per-vertex arrays over the snapshot's dense
vertex indices, queried through the hierarchy's *elimination tree* and
unpacked by expanding shortcut via-chains iteratively.  Everything is
scipy-free.

The structure is deliberately *metric-independent*, following the
customizable-weight separation of Customizable Route Planning / Customizable
Contraction Hierarchies: the arc set is built by contracting the **topology
only** (every ``(in-neighbour, out-neighbour)`` pair of a contracted vertex
becomes an arc — no witness pruning), under a fill-reducing order computed
from the graph structure alone (geometric nested dissection when vertex
coordinates are available, lazy min-fill otherwise).  Arc weights are then
*customized* from the current per-slot cost array: each arc's weight becomes
``min(base edge cost, min over lower triangles w(u,v) + w(v,w))``, processed
bottom-up so every triangle reads final halves.  Because the arc set is
closed under the order (a chordal supergraph), queries on the customized
weights are exact for **any** cost metric — which is what makes live-traffic
re-weighting sound:

* a witness-pruned hierarchy (the dict-based builder) bakes the build metric
  into its *structure*; change the costs and a pruned shortcut may become
  necessary, so only a full rebuild is exact;
* the compiled arc set never pruned anything, so a cost change only requires
  recomputing weights.  :meth:`CompiledHierarchy.reweight` diffs the new cost
  array against the current base, seeds the touched arcs, and re-relaxes
  bottom-up along the recorded triangle dependencies — O(touched arcs x
  their lower triangles), not O(graph).  Each re-weight bumps
  :attr:`weights_version`; queries snapshot the versioned state atomically,
  so readers never observe a half-applied batch.

Queries run on **elimination-tree hub labels**: every monotone-upward path
from a vertex stays inside its elimination-tree ancestor path, so the exact
upward distance (and first-hop parent) from a vertex to each of its
ancestors is one short numpy DP over its upward arcs — computed lazily per
vertex and memoized per weights version (ancestors are shared, so a warm
cache answers a query with two array reads, one suffix alignment, and one
vectorized argmin).  Path reconstruction walks the stored first-hop parents
and expands via-chains through the arc index.
"""

from __future__ import annotations

import math
import threading
from array import array
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ...routing.contraction import ContractionHierarchy
    from .graph import CompiledGraph, Topology

_INF = math.inf

#: Serializes the lazy ``hierarchy._compiled`` cache fill in
#: :func:`compiled_hierarchy` (first build wins; racing builders discard
#: their duplicate and adopt the cached instance).
_COMPILED_CACHE_LOCK = threading.Lock()


# ---------------------------------------------------------------------- #
# Contraction orders (metric-free)
# ---------------------------------------------------------------------- #
def _nested_dissection_order(
    topology: "Topology", lon: list[float], lat: list[float]
) -> list[int]:
    """A geometric nested-dissection order (rank per dense vertex index).

    Recursively bisects the vertex set along the wider coordinate extent;
    the separator — the low-side vertices with a neighbour on the high side —
    is ranked above both halves, so contraction fills within cells and
    separators only, never across them.  On road-like graphs this keeps the
    chordal supergraph small and the elimination tree shallow, which is what
    both the query and the re-weight costs scale with.
    """
    n = topology.vertex_count
    offsets, targets = topology.offsets, topology.targets
    r_offsets, r_targets = topology.r_offsets, topology.r_targets

    def neighbours(v: int):
        for i in range(offsets[v], offsets[v + 1]):
            yield targets[i]
        for i in range(r_offsets[v], r_offsets[v + 1]):
            yield int(r_targets[i])

    rank = [0] * n
    stack: list[tuple[list[int], int]] = [(list(range(n)), 0)]
    while stack:
        cell, base = stack.pop()
        if len(cell) <= 3:
            # Cells this small cannot generate meaningful fill whatever
            # their internal order; larger cells keep dissecting (an
            # arbitrarily-ordered leaf would fill quadratically).
            for position, v in enumerate(cell):
                rank[v] = base + position
            continue
        xs = [lon[v] for v in cell]
        ys = [lat[v] for v in cell]
        key = lon if (max(xs) - min(xs)) >= (max(ys) - min(ys)) else lat
        cell.sort(key=key.__getitem__)
        half = len(cell) // 2
        high = cell[half:]
        high_set = set(high)
        separator: list[int] = []
        low: list[int] = []
        for v in cell[:half]:
            if any(nb in high_set for nb in neighbours(v)):
                separator.append(v)
            else:
                low.append(v)
        stack.append((low, base))
        stack.append((high, base + len(low)))
        top = base + len(low) + len(high)
        for position, v in enumerate(separator):
            rank[v] = top + position
    return rank


def _min_fill_order(topology: "Topology") -> list[int]:
    """Fallback metric-free order: lazy greedy estimated edge difference.

    Selects by ``in-degree x out-degree - (in-degree + out-degree)`` over
    the working graph (contracted vertices removed, fill arcs added) — O(1)
    per evaluation, re-checked lazily at pop time.  Used when no vertex
    coordinates are available for the nested-dissection order.
    """
    n = topology.vertex_count
    offsets, targets = topology.offsets, topology.targets
    out_nb: list[set[int]] = [set() for _ in range(n)]
    in_nb: list[set[int]] = [set() for _ in range(n)]
    for u in range(n):
        for i in range(offsets[u], offsets[u + 1]):
            w = targets[i]
            out_nb[u].add(w)
            in_nb[w].add(u)

    def priority(v: int) -> int:
        ins, outs = len(in_nb[v]), len(out_nb[v])
        return ins * outs - ins - outs

    heap: list[tuple[int, int]] = [(priority(v), v) for v in range(n)]
    heapify(heap)
    rank = [0] * n
    contracted = [False] * n
    next_rank = 0
    while heap:
        _, v = heappop(heap)
        if contracted[v]:
            continue
        current = priority(v)
        if heap and current > heap[0][0]:
            heappush(heap, (current, v))
            continue
        rank[v] = next_rank
        next_rank += 1
        contracted[v] = True
        ins = in_nb[v]
        outs = out_nb[v]
        for u in ins:
            ou = out_nb[u]
            ou.discard(v)
            for w in outs:
                if w != u:
                    ou.add(w)
        for w in outs:
            iw = in_nb[w]
            iw.discard(v)
            for u in ins:
                if u != w:
                    iw.add(u)
        in_nb[v] = set()
        out_nb[v] = set()
    return rank


class CompiledHierarchy:
    """Compiled CH arc sets with customizable (re-weightable) weights.

    Built once per :class:`~repro.network.compiled.graph.Topology` snapshot
    (the topology object itself is the stamp — any structural mutation of
    the network produces a new one, orphaning this hierarchy).  The mutable
    part is the versioned weight state ``(weights_version, arc_weight,
    arc_via, up_rows, down_rows)`` swapped atomically under the re-weight
    lock, copy-on-write so in-flight queries keep a consistent pre-update
    view; hub labels are derived from it lazily per version.
    """

    def __init__(
        self,
        topology: "Topology",
        base_weights: np.ndarray,
        coordinates: tuple[list[float], list[float]] | None = None,
    ) -> None:
        self.topology = topology
        n = topology.vertex_count
        if coordinates is not None:
            rank = _nested_dissection_order(topology, coordinates[0], coordinates[1])
        else:
            rank = _min_fill_order(topology)
        self.rank = rank

        # ---- metric-independent contraction: keep every shortcut -------- #
        # Arcs come in *symmetric pairs*: the contraction chordalizes the
        # undirected skeleton (every ordered pair of a contracted vertex's
        # undirected neighbourhood becomes an arc), and a direction without
        # a base edge or real triangle simply customizes to ``inf``.  This
        # is what makes the elimination tree sound on one-way streets: the
        # ancestor-containment of the query relies on the *undirected* fill
        # graph being chordal, which in/out-pair fill alone does not give.
        offsets, targets = topology.offsets, topology.targets
        arc_index: dict[tuple[int, int], int] = {}
        arc_source = array("i")
        arc_target = array("i")
        arc_base_slot = array("i")
        tri_arc = array("i")
        tri_h1 = array("i")
        tri_h2 = array("i")
        tri_via = array("i")

        def _ensure_arc(u: int, w: int, slot: int = -1) -> int:
            arc = arc_index.get((u, w))
            if arc is None:
                arc = len(arc_source)
                arc_index[(u, w)] = arc
                arc_source.append(u)
                arc_target.append(w)
                arc_base_slot.append(slot)
            elif slot >= 0 and arc_base_slot[arc] < 0:
                arc_base_slot[arc] = slot
            return arc

        neighbourhood: list[set[int]] = [set() for _ in range(n)]
        for u in range(n):
            for slot in range(offsets[u], offsets[u + 1]):
                w = targets[slot]
                if u == w:
                    continue  # parallel slots: first one wins, customization
                _ensure_arc(u, w, slot)  # keeps the weight minimal anyway
                _ensure_arc(w, u)
                neighbourhood[u].add(w)
                neighbourhood[w].add(u)
        order = sorted(range(n), key=rank.__getitem__)
        for v in order:
            around = list(neighbourhood[v])
            for a in around:
                arc_av = arc_index[(a, v)]
                nb_a = neighbourhood[a]
                for b in around:
                    if a == b:
                        continue
                    arc = _ensure_arc(a, b)
                    nb_a.add(b)
                    tri_arc.append(arc)
                    tri_h1.append(arc_av)
                    tri_h2.append(arc_index[(v, b)])
                    tri_via.append(v)
                nb_a.discard(v)
            neighbourhood[v] = set()

        m = len(arc_source)
        self.arc_index = arc_index
        self.arc_source = arc_source.tolist()
        self.arc_target = arc_target.tolist()
        self.arc_base_slot = arc_base_slot.tolist()
        self.arc_count = m
        self.contraction_order = order

        # ---- lower triangles, grouped per arc (flat, compact) ----------- #
        tri_of = np.frombuffer(tri_arc, dtype=np.int32) if len(tri_arc) else np.zeros(0, np.int32)
        grouping = np.argsort(tri_of, kind="stable")
        self.tri_h1 = (
            np.frombuffer(tri_h1, dtype=np.int32)[grouping] if len(tri_h1) else np.zeros(0, np.int32)
        )
        self.tri_h2 = (
            np.frombuffer(tri_h2, dtype=np.int32)[grouping] if len(tri_h2) else np.zeros(0, np.int32)
        )
        self.tri_via = (
            np.frombuffer(tri_via, dtype=np.int32)[grouping] if len(tri_via) else np.zeros(0, np.int32)
        )
        counts = np.bincount(tri_of, minlength=m) if m else np.zeros(0, np.int64)
        tri_indptr = np.zeros(m + 1, dtype=np.int64)
        if m:
            np.cumsum(counts, out=tri_indptr[1:])
        self.tri_indptr = tri_indptr.tolist()
        # Reverse dependencies: which arcs use arc X as a triangle half.
        if len(tri_of):
            half_keys = np.concatenate([self.tri_h1, self.tri_h2])
            half_deps = np.concatenate([tri_of[grouping], tri_of[grouping]])
            dep_order = np.argsort(half_keys, kind="stable")
            self.dep_arcs = half_deps[dep_order]
            dep_counts = np.bincount(half_keys, minlength=m)
            dep_indptr = np.zeros(m + 1, dtype=np.int64)
            np.cumsum(dep_counts, out=dep_indptr[1:])
            self.dep_indptr = dep_indptr.tolist()
        else:
            self.dep_arcs = np.zeros(0, np.int32)
            self.dep_indptr = [0] * (m + 1)

        # ---- grouped adjacency by lower endpoint ------------------------ #
        # up: arcs v->w climbing out of v; down: arcs u->w descending into w.
        arc_source_list = self.arc_source
        arc_target_list = self.arc_target
        up_indptr = [0] * (n + 1)
        down_indptr = [0] * (n + 1)
        for arc in range(m):
            u, w = arc_source_list[arc], arc_target_list[arc]
            if rank[u] < rank[w]:
                up_indptr[u + 1] += 1
            else:
                down_indptr[w + 1] += 1
        for v in range(n):
            up_indptr[v + 1] += up_indptr[v]
            down_indptr[v + 1] += down_indptr[v]
        up_targets = [0] * up_indptr[n]
        up_arcs = [0] * up_indptr[n]
        down_sources = [0] * down_indptr[n]
        down_arcs = [0] * down_indptr[n]
        up_cursor = list(up_indptr[:n])
        down_cursor = list(down_indptr[:n])
        up_row_of = [-1] * m
        for arc in range(m):
            u, w = arc_source_list[arc], arc_target_list[arc]
            if rank[u] < rank[w]:
                position = up_cursor[u]
                up_cursor[u] = position + 1
                up_targets[position] = w
                up_arcs[position] = arc
                up_row_of[arc] = u
            else:
                position = down_cursor[w]
                down_cursor[w] = position + 1
                down_sources[position] = u
                down_arcs[position] = arc
        self.up_indptr = up_indptr
        self.up_targets = up_targets
        self.up_arcs = up_arcs
        self.down_indptr = down_indptr
        self.down_sources = down_sources
        self.down_arcs = down_arcs
        self._up_row_of = up_row_of
        self._level = [
            min(rank[arc_source_list[a]], rank[arc_target_list[a]]) for a in range(m)
        ]

        # ---- elimination tree ------------------------------------------- #
        # parent(v) = the lowest-ranked upper neighbour of v in the chordal
        # graph; the monotone-upward search space of any vertex is contained
        # in its ancestor (root) path.
        tree_parent = [-1] * n
        for v in range(n):
            best_rank = n
            best_parent = -1
            for i in range(up_indptr[v], up_indptr[v + 1]):
                w = up_targets[i]
                if rank[w] < best_rank:
                    best_rank = rank[w]
                    best_parent = w
            for i in range(down_indptr[v], down_indptr[v + 1]):
                u = down_sources[i]
                if rank[u] < best_rank:
                    best_rank = rank[u]
                    best_parent = u
            tree_parent[v] = best_parent
        self.tree_parent = tree_parent
        paths: list[tuple[int, ...]] = [()] * n
        depth = [0] * n
        for v in reversed(order):  # parents (higher rank) before children
            parent = tree_parent[v]
            paths[v] = (v,) + paths[parent] if parent >= 0 else (v,)
            depth[v] = len(paths[v])
        self.paths = paths
        self.depth = depth

        self._waves = self._build_waves()
        self._lock = threading.Lock()
        self.reweight_count = 0
        self._base = np.asarray(base_weights, dtype=np.float64)
        self._state = self._customize(self._base)
        self._labels: tuple | None = None

    def _build_waves(self) -> list:
        """Static dependency waves for the vectorized customization.

        ``wave(arc) = 1 + max(wave of its triangle halves)`` (0 for arcs
        without triangles), so all arcs of one wave are independent and a
        full customization is one batched gather / segmented-min per wave —
        roughly the elimination-tree height of them — instead of a python
        loop over every arc.
        """
        m = self.arc_count
        tri_indptr = self.tri_indptr
        h1_all, h2_all, via_all = self.tri_h1, self.tri_h2, self.tri_via
        wave = [0] * m
        for arc in sorted(range(m), key=self._level.__getitem__):
            start, end = tri_indptr[arc], tri_indptr[arc + 1]
            if end > start:
                best = 0
                for half in h1_all[start:end].tolist():
                    if wave[half] > best:
                        best = wave[half]
                for half in h2_all[start:end].tolist():
                    if wave[half] > best:
                        best = wave[half]
                wave[arc] = best + 1
        groups: dict[int, list[int]] = {}
        for arc in range(m):
            groups.setdefault(wave[arc], []).append(arc)
        slots = np.asarray(self.arc_base_slot, dtype=np.int64)
        waves = []
        for index in sorted(groups):
            members = groups[index]
            arcs = np.asarray(members, dtype=np.int64)
            arc_slots = slots[arcs]
            if index == 0:  # no triangles: weight is the base edge cost
                waves.append((arcs, arc_slots, None))
                continue
            counts = np.asarray(
                [tri_indptr[a + 1] - tri_indptr[a] for a in members], dtype=np.int64
            )
            tri_idx = np.concatenate(
                [np.arange(tri_indptr[a], tri_indptr[a + 1]) for a in members]
            )
            starts = np.zeros(len(members), dtype=np.int64)
            np.cumsum(counts[:-1], out=starts[1:])
            waves.append(
                (
                    arcs,
                    arc_slots,
                    (h1_all[tri_idx], h2_all[tri_idx], via_all[tri_idx], starts, counts),
                )
            )
        return waves

    @staticmethod
    def _base_values(base: np.ndarray, arc_slots: np.ndarray) -> np.ndarray:
        """Base edge costs per arc (``inf`` for pure-shortcut arcs)."""
        values = base[np.where(arc_slots >= 0, arc_slots, 0)]
        return np.where(arc_slots >= 0, values, np.inf)

    def _customize_full(self, base: np.ndarray) -> tuple[np.ndarray, list[int]]:
        """Vectorized full customization: all arc weights and argmin vias.

        Processes the dependency waves in order; within a wave the triangle
        minima are one gather-add plus ``minimum.reduceat``, and the via of
        each arc is the *first* triangle attaining the minimum (base edge
        wins ties) — bit-identical to the per-arc scan of :meth:`_recompute`.
        """
        arc_weight = np.empty(self.arc_count, dtype=np.float64)
        arc_via = np.full(self.arc_count, -1, dtype=np.int64)
        for arcs, arc_slots, triangles in self._waves:
            base_values = self._base_values(base, arc_slots)
            if triangles is None:
                arc_weight[arcs] = base_values
                continue
            h1, h2, vias, starts, counts = triangles
            candidates = arc_weight[h1] + arc_weight[h2]
            minima = np.minimum.reduceat(candidates, starts)
            arc_weight[arcs] = np.minimum(base_values, minima)
            use_triangle = minima < base_values
            if use_triangle.any():
                hits = np.flatnonzero(candidates == np.repeat(minima, counts))
                first = hits[np.searchsorted(hits, starts)]
                arc_via[arcs] = np.where(use_triangle, vias[first], -1)
        return arc_weight, arc_via.tolist()

    # ------------------------------------------------------------------ #
    # Weight customization
    # ------------------------------------------------------------------ #
    def _recompute(self, arc: int, base: np.ndarray, arc_weight: np.ndarray) -> tuple[float, int]:
        """One arc's weight from its base slot and all lower triangles.

        ``arc_weight`` stays a numpy array so the triangle minimum is two
        fancy-index gathers plus one ``argmin`` whatever the triangle count;
        ties against the base edge keep the base (``via = -1``), and ties
        among triangles keep the first (argmin) — both matching the strict
        scan order of a full bottom-up pass.
        """
        slot = self.arc_base_slot[arc]
        best = float(base[slot]) if slot >= 0 else _INF
        best_via = -1
        start, end = self.tri_indptr[arc], self.tri_indptr[arc + 1]
        if end > start:
            candidates = arc_weight[self.tri_h1[start:end]] + arc_weight[self.tri_h2[start:end]]
            k = int(np.argmin(candidates))
            candidate = float(candidates[k])
            if candidate < best:
                best = candidate
                best_via = int(self.tri_via[start + k])
        return best, best_via

    def _rows(self, weight_list: list[float]) -> tuple[list, list]:
        """The query adjacency: per-vertex ``(neighbour, weight)`` tuple rows."""
        up_indptr, up_targets, up_arcs = self.up_indptr, self.up_targets, self.up_arcs
        down_indptr = self.down_indptr
        down_sources, down_arcs = self.down_sources, self.down_arcs
        n = self.topology.vertex_count
        up_rows = [
            [
                (up_targets[i], weight_list[up_arcs[i]])
                for i in range(up_indptr[v], up_indptr[v + 1])
            ]
            for v in range(n)
        ]
        down_rows = [
            [
                (down_sources[i], weight_list[down_arcs[i]])
                for i in range(down_indptr[v], down_indptr[v + 1])
            ]
            for v in range(n)
        ]
        return up_rows, down_rows

    def _customize(self, base: np.ndarray) -> tuple:
        """Full bottom-up customization into a fresh state tuple."""
        arc_weight, arc_via = self._customize_full(base)
        up_rows, down_rows = self._rows(arc_weight.tolist())
        return (0, arc_weight, arc_via, up_rows, down_rows)

    # ------------------------------------------------------------------ #
    # Versioned weight state
    # ------------------------------------------------------------------ #
    @property
    def weights_version(self) -> int:
        """Monotonic version of the arc weights; bumped per re-weight."""
        return self._state[0]

    @property
    def base_weights(self) -> np.ndarray:
        """The per-slot cost array the current weights were customized from."""
        return self._base

    def reweight(self, new_base: np.ndarray) -> int:
        """Re-customize only the arcs affected by a base cost change.

        ``new_base`` is the current per-slot cost array (same layout as the
        build-time array).  Small diffs seed a dirty set from the touched
        slots and re-relax bottom-up along the recorded triangle
        dependencies — O(touched arcs x their triangle counts), and an arc
        whose recomputed weight comes out unchanged stops the propagation.
        Diffs wide enough that the dirty cone would cover much of the
        hierarchy run the vectorized full customization instead (one
        segmented-min per dependency wave); both produce identical weights
        and vias.  Returns the number of arcs whose weight or via changed
        (0 for a no-op diff — the version is then left untouched).
        """
        new_base = np.asarray(new_base, dtype=np.float64)
        with self._lock:
            old_base = self._base
            if new_base is old_base:
                return 0
            changed_slots = np.nonzero(new_base != old_base)[0]
            if changed_slots.size == 0:
                self._base = new_base
                return 0
            if changed_slots.size > 16:
                return self._reweight_full(new_base)
            version, arc_weight, arc_via, up_rows, down_rows = self._state
            arc_weight = arc_weight.copy()
            arc_via = arc_via.copy()
            level = self._level
            arc_index = self.arc_index
            topo_targets = self.topology.targets
            slot_owner = np.searchsorted(
                np.asarray(self.topology.offsets, dtype=np.int64),
                changed_slots,
                side="right",
            )
            heap: list[tuple[int, int]] = []
            queued: set[int] = set()
            for slot, u in zip(changed_slots.tolist(), (slot_owner - 1).tolist()):
                arc = arc_index.get((u, topo_targets[slot]))
                if arc is not None and arc not in queued:
                    queued.add(arc)
                    heappush(heap, (level[arc], arc))
            touched = 0
            dep_indptr, dep_arcs = self.dep_indptr, self.dep_arcs
            up_row_of = self._up_row_of
            source, target = self.arc_source, self.arc_target
            dirty_up_rows: set[int] = set()
            dirty_down_rows: set[int] = set()
            weight_list: list[float] | None = None
            while heap:
                _, arc = heappop(heap)
                weight, via = self._recompute(arc, new_base, arc_weight)
                old_weight = float(arc_weight[arc])
                if weight == old_weight and via == arc_via[arc]:
                    continue
                if weight != old_weight:
                    for dependent in dep_arcs[dep_indptr[arc] : dep_indptr[arc + 1]].tolist():
                        if dependent not in queued:
                            queued.add(dependent)
                            heappush(heap, (level[dependent], dependent))
                    if up_row_of[arc] >= 0:
                        dirty_up_rows.add(source[arc])
                    else:
                        dirty_down_rows.add(target[arc])
                arc_weight[arc] = weight
                arc_via[arc] = via
                touched += 1
            self._base = new_base
            if touched:
                weight_list = arc_weight.tolist()
                up_indptr, up_targets = self.up_indptr, self.up_targets
                up_arcs = self.up_arcs
                down_indptr = self.down_indptr
                down_sources, down_arcs = self.down_sources, self.down_arcs
                if dirty_up_rows:
                    up_rows = up_rows.copy()
                    for row in dirty_up_rows:
                        up_rows[row] = [
                            (up_targets[i], weight_list[up_arcs[i]])
                            for i in range(up_indptr[row], up_indptr[row + 1])
                        ]
                if dirty_down_rows:
                    down_rows = down_rows.copy()
                    for row in dirty_down_rows:
                        down_rows[row] = [
                            (down_sources[i], weight_list[down_arcs[i]])
                            for i in range(down_indptr[row], down_indptr[row + 1])
                        ]
                self._state = (version + 1, arc_weight, arc_via, up_rows, down_rows)
                self.reweight_count += 1
            return touched

    def _reweight_full(self, new_base: np.ndarray) -> int:
        """Wide-diff re-weight: vectorized full customization (lock held)."""
        version, old_weight, old_via, _, _ = self._state
        arc_weight, arc_via = self._customize_full(new_base)
        # Lock discipline: the only caller is reweight(), which already
        # holds self._lock around this whole call.
        self._base = new_base  # reprolint: disable=RL002
        touched = int(np.count_nonzero(arc_weight != old_weight))
        if touched == 0 and arc_via == old_via:
            return 0
        up_rows, down_rows = self._rows(arc_weight.tolist())
        # reprolint: disable-next-line=RL002 — reweight() holds self._lock here.
        self._state = (version + 1, arc_weight, arc_via, up_rows, down_rows)
        self.reweight_count += 1
        return max(touched, 1)

    # ------------------------------------------------------------------ #
    # Elimination-tree hub labels (lazy, memoized per weights version)
    # ------------------------------------------------------------------ #
    def _label_caches(self, state: tuple) -> tuple[dict, dict]:
        """The per-version label caches (forward, backward) for ``state``."""
        labels = self._labels
        if labels is None or labels[0] != state[0]:
            # GIL-atomic swap of an immutable tuple; a racing query on the
            # same fresh version may duplicate a little work, and either
            # cache is correct — taking the re-weight lock here would stall
            # every warm-cache query behind it.
            labels = (state[0], {}, {})
            self._labels = labels  # reprolint: disable=RL002
        return labels[1], labels[2]

    def _ensure_labels(self, vertex: int, rows: list, cache: dict) -> tuple:
        """Build (memoized) labels for ``vertex`` and its ancestors.

        The label of a vertex is the exact distance (and first-hop parent)
        to every ancestor on its root path: a DP over its upward arcs, whose
        lower endpoints' labels cover aligned suffixes of the same path.
        ``rows`` picks the direction (up rows: distances *to* ancestors;
        down rows: distances *from* ancestors).
        """
        depth = self.depth
        for u in reversed(self.paths[vertex]):
            if u in cache:
                continue
            d = depth[u]
            dist = np.full(d, np.inf, dtype=np.float64)
            dist[0] = 0.0
            parent = np.full(d, -1, dtype=np.int32)
            for w, weight in rows[u]:
                position = d - depth[w]
                candidate = cache[w][0] + weight
                segment = dist[position:]
                mask = candidate < segment
                if mask.any():
                    segment[mask] = candidate[mask]
                    parent_segment = parent[position:]
                    parent_segment[mask] = w
            cache[u] = (dist, parent)
        return cache[vertex]

    def _label_search(
        self, source: int, destination: int, state: tuple
    ) -> tuple[float, int, dict, dict]:
        """Best meeting cost and apex path-position for one query."""
        cache_f, cache_b = self._label_caches(state)
        dist_f, _ = self._ensure_labels(source, state[3], cache_f)
        dist_b, _ = self._ensure_labels(destination, state[4], cache_b)
        path_f = self.paths[source]
        path_b = self.paths[destination]
        a, b = len(path_f), len(path_b)
        limit = a if a < b else b
        overlap = 0
        while overlap < limit and path_f[a - 1 - overlap] == path_b[b - 1 - overlap]:
            overlap += 1
        if overlap == 0:  # different components
            return _INF, -1, cache_f, cache_b
        sums = dist_f[a - overlap :] + dist_b[b - overlap :]
        apex = int(np.argmin(sums))
        return float(sums[apex]), a - overlap + apex, cache_f, cache_b

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query_cost(self, source: int, destination: int) -> float:
        """Shortest-path cost between dense indices (``inf`` if unreachable)."""
        if source == destination:
            return 0.0
        best, _, _, _ = self._label_search(source, destination, self._state)
        return best

    def query_indices(self, source: int, destination: int) -> list[int] | None:
        """Fully unpacked vertex-index path, or ``None`` when unreachable."""
        if source == destination:
            return [source]
        state = self._state
        best, apex_position, cache_f, cache_b = self._label_search(
            source, destination, state
        )
        if best == _INF:
            return None
        path_f = self.paths[source]
        apex = path_f[apex_position]
        depth = self.depth
        # Forward contracted path source -> apex via stored first hops.
        forward = [source]
        v = source
        position = apex_position
        while position > 0:
            w = int(cache_f[v][1][position])
            if w < 0:  # pragma: no cover - guarded by the finite best above
                return None
            position -= depth[v] - depth[w]
            v = w
            forward.append(v)
        # Backward contracted path apex -> destination, reconstructed from
        # the destination's label (last hops), then reversed into place.
        backward = [destination]
        v = destination
        position = len(self.paths[destination]) - (depth[apex])
        # apex sits at position len(path_b) - depth(apex) in path(destination)
        while position > 0:
            u = int(cache_b[v][1][position])
            if u < 0:  # pragma: no cover - guarded by the finite best above
                return None
            position -= depth[v] - depth[u]
            v = u
            backward.append(v)
        backward.reverse()
        return self._unpack(forward + backward[1:], state[2])

    def _unpack(self, contracted: list[int], arc_via: list[int]) -> list[int]:
        """Expand shortcut via-chains back into original vertices."""
        arc_index = self.arc_index
        out = [contracted[0]]
        stack: list[tuple[int, int]] = []
        for i in range(len(contracted) - 1, 0, -1):
            stack.append((contracted[i - 1], contracted[i]))
        while stack:
            u, w = stack.pop()
            via = arc_via[arc_index[(u, w)]]
            if via < 0:
                out.append(w)
            else:
                stack.append((via, w))
                stack.append((u, via))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledHierarchy(vertices={self.topology.vertex_count}, "
            f"arcs={self.arc_count}, weights_version={self.weights_version}, "
            f"reweights={self.reweight_count})"
        )


def compiled_hierarchy(
    hierarchy: "ContractionHierarchy",
    graph: "CompiledGraph",
    network: object | None = None,
) -> CompiledHierarchy | None:
    """The (lazily built) compiled counterpart of a dict hierarchy.

    Cached on the hierarchy object, keyed by the graph's topology (object
    identity — a structural mutation produces a fresh topology and the old
    compiled hierarchy is rebuilt on first use).  The initial weights are
    customized from the hierarchy's *build-time* base costs, so a frozen
    (``on_stale="ignore"``) hierarchy answers with frozen costs exactly like
    the dict walker; :meth:`ContractionHierarchy.refresh` re-customizes to
    the current arrays.  ``network`` supplies vertex coordinates for the
    nested-dissection order when available.  Returns ``None`` when the
    hierarchy carries no base weights (hand-built) or does not match the
    topology — the caller then falls back to the dict walker.
    """
    compiled = getattr(hierarchy, "_compiled", None)
    topology = graph.topology
    if compiled is not None and compiled.topology is topology:
        return compiled
    base = getattr(hierarchy, "base_slot_weights", None)
    if base is None:
        return None
    base = np.asarray(base, dtype=np.float64)
    if base.shape[0] != topology.edge_count:
        return None
    if len(hierarchy.order) != topology.vertex_count:
        return None
    index_of = topology.index_of
    for vertex_id in hierarchy.order:
        if vertex_id not in index_of:
            return None
    coordinates = None
    if network is not None:
        vertex = network.vertex
        lon = [0.0] * topology.vertex_count
        lat = [0.0] * topology.vertex_count
        for vertex_id, index in index_of.items():
            point = vertex(vertex_id)
            lon[index] = point.lon
            lat[index] = point.lat
        coordinates = (lon, lat)
    # Build outside the lock (full customization is O(arcs x triangles) and
    # must not stall queries on other hierarchies), then install first-build-
    # wins: concurrent route_many workers racing the same cold hierarchy all
    # end up querying (and re-weighting) ONE compiled instance, never a
    # sibling whose weights_version drifts independently.
    compiled = CompiledHierarchy(topology, base, coordinates=coordinates)
    with _COMPILED_CACHE_LOCK:
        cached = getattr(hierarchy, "_compiled", None)
        if cached is not None and cached.topology is topology:
            return cached
        hierarchy._compiled = compiled
    return compiled
