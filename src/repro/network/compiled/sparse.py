"""Optional scipy-accelerated SSSP over the compiled CSR arrays.

The :class:`~repro.network.compiled.graph.CompiledGraph` layout (``offsets`` /
``targets`` / flat cost arrays) *is* scipy's native CSR format, so when scipy
is installed point-to-point Dijkstra runs ``scipy.sparse.csgraph.dijkstra``
(a C implementation) for the distance array and reconstructs the path with a
deterministic backward walk.

The walk picks, at every vertex ``v``, the predecessor ``u`` minimizing
``(dist[u], u)`` among those with ``dist[u] + w(u, v) == dist[v]`` exactly —
which is provably the parent the dict-based reference Dijkstra records (the
first equal-cost relaxer to settle wins there, and settle order is
``(dist, index)``-lexicographic), so the reconstructed path is identical to
the reference one, not merely cost-identical.

Everything degrades gracefully: without scipy, with non-positive weights
(where the backward walk could cycle), or on any reconstruction anomaly the
caller falls back to the pure-python array kernels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

import numpy as np

try:  # scipy is optional; the pure-python kernels cover its absence.
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

    HAVE_SCIPY = True
except Exception:  # pragma: no cover - exercised only without scipy
    _csr_matrix = None
    _csgraph_dijkstra = None
    HAVE_SCIPY = False

if TYPE_CHECKING:  # pragma: no cover
    from .graph import CompiledGraph


def _matrix(
    graph: "CompiledGraph",
    key: Hashable | None,
    array: np.ndarray,
    version: int | None,
):
    """A scipy CSR matrix over the graph's cost array (memoized per key)."""
    indptr = graph.memo(
        ("sparse-indptr",),
        lambda: np.asarray(graph.offsets, dtype=np.int32),
        cost_dependent=False,
    )
    indices = graph.memo(
        ("sparse-indices",),
        lambda: np.asarray(graph.targets, dtype=np.int32),
        cost_dependent=False,
    )
    n = graph.vertex_count

    def build():
        return _csr_matrix((array, indices, indptr), shape=(n, n))

    if key is None:
        return build()
    return graph.memo(("sparse-matrix", key), build, version=version)


def _all_positive(
    graph: "CompiledGraph",
    key: Hashable | None,
    array: np.ndarray,
    version: int | None,
) -> bool:
    """Strictly positive weights guarantee the backward walk terminates."""
    if key is None:
        return bool(array.size == 0 or array.min() > 0.0)
    return bool(
        graph.memo(
            ("sparse-positive", key),
            lambda: array.size == 0 or array.min() > 0.0,
            version=version,
        )
    )


def reconstruct_path_indices(
    graph: "CompiledGraph",
    dist: list[float],
    r_weights: list[float],
    source: int,
    destination: int,
) -> list[int] | None:
    """The deterministic backward walk over an exact distance array.

    ``dist`` is the full single-source distance list from ``source`` (any
    exact Dijkstra backend — scipy's C implementation or the python array
    kernel — produces suitable values) and ``r_weights`` the cost array in
    reverse CSR slot order.  Returns the reference-identical vertex-index
    path, or ``None`` on a float anomaly (the caller falls back to the
    exact per-query kernel).  Weights must be strictly positive or the walk
    could cycle — callers guard with :func:`_all_positive`.
    """
    r_offsets = graph.r_offsets
    r_targets = graph.r_targets

    path = [destination]
    current = destination
    for _ in range(graph.vertex_count):
        if current == source:
            path.reverse()
            return path
        best = -1
        best_key: tuple[float, int] | None = None
        dist_v = dist[current]
        for j in range(r_offsets[current], r_offsets[current + 1]):
            u = r_targets[j]
            if dist[u] + r_weights[j] == dist_v:
                candidate = (dist[u], u)
                if best_key is None or candidate < best_key:
                    best_key = candidate
                    best = u
        if best < 0:  # pragma: no cover - float anomaly; use the exact kernel
            return None
        path.append(best)
        current = best
    return None  # pragma: no cover - cycle guard tripped; use the exact kernel


def reconstruct_path_indices_forward(
    graph: "CompiledGraph",
    dist_to: list[float],
    weights: list[float],
    source: int,
    destination: int,
) -> list[int] | None:
    """The deterministic forward walk over exact distances *to* a target.

    Mirror of :func:`reconstruct_path_indices` for callers holding a reverse
    SSSP row: ``dist_to`` is the full distance list into ``destination`` and
    ``weights`` the cost array in forward CSR slot order.  At every vertex
    the successor minimizing ``(dist_to[v], v)`` among exact relaxers is
    chosen, so the walk is deterministic and cost-exact.  Same strict
    positivity requirement — callers guard with :func:`_all_positive`.
    """
    offsets = graph.offsets
    targets = graph.targets

    path = [source]
    current = source
    for _ in range(graph.vertex_count):
        if current == destination:
            return path
        best = -1
        best_key: tuple[float, int] | None = None
        dist_u = dist_to[current]
        for j in range(offsets[current], offsets[current + 1]):
            v = targets[j]
            if weights[j] + dist_to[v] == dist_u:
                candidate = (dist_to[v], v)
                if best_key is None or candidate < best_key:
                    best_key = candidate
                    best = v
        if best < 0:  # pragma: no cover - float anomaly; use the exact kernel
            return None
        path.append(best)
        current = best
    return None  # pragma: no cover - cycle guard tripped; use the exact kernel


def shortest_path_indices(
    graph: "CompiledGraph",
    key: Hashable | None,
    array: np.ndarray,
    source: int,
    destination: int,
    version: int | None = None,
) -> list[int] | None | tuple[()]:
    """Point-to-point shortest path via scipy's C Dijkstra.

    ``version`` is the cost version ``array`` was resolved under; it stamps
    the memoized matrix / positivity artifacts so a patch racing the query
    cannot leave pre-update data cached as current.  Returns the vertex-index
    path, the empty tuple ``()`` when the destination is provably
    unreachable, or ``None`` when this backend cannot answer (scipy missing /
    non-positive weights / reconstruction anomaly) and the pure-python kernel
    should run instead.
    """
    if not HAVE_SCIPY or not _all_positive(graph, key, array, version):
        return None
    matrix = _matrix(graph, key, array, version)
    distances = _csgraph_dijkstra(matrix, indices=source, return_predecessors=False)
    if not np.isfinite(distances[destination]):
        return ()

    dist = distances.tolist()
    r_weights = graph.reverse_weights(key, array, version)
    return reconstruct_path_indices(graph, dist, r_weights, source, destination)
