"""Compiled CSR graph kernels — the array-based routing hot path.

The subsystem has three layers:

* :mod:`~repro.network.compiled.graph` — :class:`CompiledGraph`, the CSR
  snapshot of a :class:`~repro.network.road_network.RoadNetwork`: an immutable
  :class:`Topology` plus a monotonically-versioned :class:`CostStore` holding
  one flat numpy cost array per travel-cost feature (patched in place by
  live-traffic updates, see :mod:`repro.traffic`);
* :mod:`~repro.network.compiled.kernels` — array-based Dijkstra / A* /
  bidirectional / Algorithm-2 kernels over preallocated, generation-stamped
  :class:`SearchWorkspace` state;
* :mod:`~repro.network.compiled.dispatch` — the bridge the public routing
  functions call: eligible queries run on the kernels, opaque ones fall back
  to the dict-based reference implementations;
* :mod:`~repro.network.compiled.landmarks` — ALT landmark lower bounds
  (:class:`LandmarkTable`): topology-stamped, cost-version-aware artifacts
  that make the compiled A* / bidirectional kernels goal-directed;
* :mod:`~repro.network.compiled.batch` — :func:`dijkstra_many`, batched
  multi-source SSSP over the shared CSR arrays (one scipy C call for a whole
  batch) feeding both the landmark builds and ``RoutingService.route_many``;
* :mod:`~repro.network.compiled.ch` — :class:`CompiledHierarchy`, the
  array-compiled (customizable, re-weightable) contraction-hierarchy arc
  sets behind ``ch_shortest_path``: metric-free contraction, elimination-tree
  hub-label queries, and O(touched) live-traffic shortcut re-weighting.

Use :func:`compiled_disabled` to force the reference implementations (the
equivalence tests and the ``bench_compiled_graph`` benchmark do), and
:func:`alt_disabled` to keep the compiled kernels but turn off goal-directed
ALT search (exact path-identity with the references).
"""

from .workspace import SearchWorkspace
from .kernels import (
    astar_kernel,
    bidirectional_kernel,
    dijkstra_costs_kernel,
    dijkstra_kernel,
    preference_kernel,
)
from .dispatch import (
    PreferenceSearchExhausted,
    alt_disabled,
    alt_is_enabled,
    compiled_disabled,
    is_enabled,
)
from .graph import EDGE_COST_ATTRIBUTES, CompiledGraph, CostStore, Topology
from .ch import CompiledHierarchy, compiled_hierarchy
from .batch import dijkstra_many, shortest_paths_many
from .landmarks import DEFAULT_LANDMARK_COUNT, LandmarkTable, build_landmark_table

__all__ = [
    "CompiledGraph",
    "CompiledHierarchy",
    "CostStore",
    "DEFAULT_LANDMARK_COUNT",
    "EDGE_COST_ATTRIBUTES",
    "LandmarkTable",
    "Topology",
    "PreferenceSearchExhausted",
    "SearchWorkspace",
    "alt_disabled",
    "alt_is_enabled",
    "astar_kernel",
    "bidirectional_kernel",
    "build_landmark_table",
    "compiled_disabled",
    "compiled_hierarchy",
    "dijkstra_costs_kernel",
    "dijkstra_kernel",
    "dijkstra_many",
    "is_enabled",
    "preference_kernel",
    "shortest_paths_many",
]
