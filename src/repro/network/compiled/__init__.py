"""Compiled CSR graph kernels — the array-based routing hot path.

The subsystem has three layers:

* :mod:`~repro.network.compiled.graph` — :class:`CompiledGraph`, the CSR
  snapshot of a :class:`~repro.network.road_network.RoadNetwork`: an immutable
  :class:`Topology` plus a monotonically-versioned :class:`CostStore` holding
  one flat numpy cost array per travel-cost feature (patched in place by
  live-traffic updates, see :mod:`repro.traffic`);
* :mod:`~repro.network.compiled.kernels` — array-based Dijkstra / A* /
  bidirectional / Algorithm-2 kernels over preallocated, generation-stamped
  :class:`SearchWorkspace` state;
* :mod:`~repro.network.compiled.dispatch` — the bridge the public routing
  functions call: eligible queries run on the kernels, opaque ones fall back
  to the dict-based reference implementations.

Use :func:`compiled_disabled` to force the reference implementations (the
equivalence tests and the ``bench_compiled_graph`` benchmark do).
"""

from .workspace import SearchWorkspace
from .kernels import (
    astar_kernel,
    bidirectional_kernel,
    dijkstra_costs_kernel,
    dijkstra_kernel,
    preference_kernel,
)
from .dispatch import PreferenceSearchExhausted, compiled_disabled, is_enabled
from .graph import EDGE_COST_ATTRIBUTES, CompiledGraph, CostStore, Topology

__all__ = [
    "CompiledGraph",
    "CostStore",
    "EDGE_COST_ATTRIBUTES",
    "Topology",
    "PreferenceSearchExhausted",
    "SearchWorkspace",
    "astar_kernel",
    "bidirectional_kernel",
    "compiled_disabled",
    "dijkstra_costs_kernel",
    "dijkstra_kernel",
    "is_enabled",
    "preference_kernel",
]
