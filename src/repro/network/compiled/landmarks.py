"""ALT landmark lower bounds (A*, Landmarks, Triangle inequality) on the CSR.

A :class:`LandmarkTable` turns goal-directed search from "one Python
heuristic call per relaxation" into pure array lookups: for a handful of
landmark vertices it precomputes the forward (``d(L, v)``) and backward
(``d(v, L)``) distance rows with the batched compiled Dijkstra
(:func:`~repro.network.compiled.batch.dijkstra_many`), and the triangle
inequality then yields per-query lower bounds

    ``d(v, t) >= max_L max( d(L, t) - d(L, v),  d(v, L) - d(t, L) )``

computed vectorized over all vertices in one numpy pass.  The resulting
bounds are *consistent* (each inequality is tight along shortest paths of
the build metric), so the closed-set A* kernel stays exact.

Tables are **topology-stamped** artifacts: they live on one
:class:`~repro.network.compiled.graph.CompiledGraph` snapshot and die with
it on any structural mutation.  Against live-traffic *cost* updates they
are **cost-version-aware** instead of merely evicting:

* while costs only move **up** from the build-time values (congestion over
  free flow), the build-time bounds remain admissible unchanged;
* when some edge drops **below** its build-time cost by factor ``r``, every
  build-time shortest path still costs at least ``r`` times its build-time
  cost, so the bounds are *rescaled* by ``min(1, r)`` and stay admissible;
* when the rescaling factor falls under :data:`REBUILD_RATIO` the bounds
  have degraded enough that the table self-evicts and is rebuilt against
  the current cost arrays.

Landmark selection runs on the CSR arrays only.  ``farthest`` iteratively
adds the vertex maximizing the minimum distance from the chosen set (cheap,
deterministic, good spread); ``avoid`` (Goldberg & Werneck) grows a
shortest-path tree from a random root, weighs each vertex by the gap
between its true distance and the current landmark bound, and descends the
heaviest unclaimed subtree to a leaf — targeted at regions the existing
landmarks cover poorly.  ``random`` exists as a baseline.
"""

from __future__ import annotations

import random
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Hashable

import numpy as np

from ...exceptions import ConfigurationError
from . import batch

if TYPE_CHECKING:  # pragma: no cover
    from .graph import CompiledGraph

#: Landmarks per table: enough for tight grid/city bounds, cheap to build
#: (two batched SSSPs per landmark) and to scan per query (k*n numpy max).
DEFAULT_LANDMARK_COUNT = 8

#: Default selection strategy (see module docstring).
DEFAULT_STRATEGY = "farthest"

#: Rescaled tables whose admissibility scale falls below this are rebuilt:
#: bounds shrunk past it prune too little to be worth keeping.
REBUILD_RATIO = 0.5

_STRATEGIES = ("farthest", "avoid", "random")


class LandmarkTable:
    """Per-landmark distance rows plus the cost-version admissibility state."""

    __slots__ = (
        "key",
        "strategy",
        "indices",
        "dist_from",
        "dist_to",
        "build_array",
        "build_version",
        "requested_count",
        "scale",
        "validated_version",
    )

    def __init__(
        self,
        key: Hashable,
        strategy: str,
        indices: list[int],
        dist_from: np.ndarray,
        dist_to: np.ndarray,
        build_array: np.ndarray,
        build_version: int,
        requested_count: int | None = None,
    ) -> None:
        self.key = key
        self.strategy = strategy
        self.indices = indices
        self.dist_from = dist_from  # (k, n): d(landmark, v) on the build metric
        self.dist_to = dist_to  # (k, n): d(v, landmark) on the build metric
        self.build_array = build_array
        self.build_version = build_version
        # Selection may legitimately yield fewer landmarks than asked for
        # (tiny or fragmented graphs); remembering the *request* keeps a
        # repeated prepare_landmarks(count=k) from rebuilding forever.
        self.requested_count = requested_count if requested_count is not None else len(indices)
        self.scale = 1.0
        self.validated_version = build_version

    @property
    def count(self) -> int:
        return len(self.indices)

    # ------------------------------------------------------------------ #
    # Cost-version admissibility
    # ------------------------------------------------------------------ #
    def revalidated(self, current_array: np.ndarray, current_version: int):
        """This table re-established against the caller's cost array.

        Returns ``self`` when nothing changed, a *copy-on-write* twin
        (sharing the distance matrices, carrying the new scale) when the
        bounds had to be rescaled, or ``None`` when they degraded past
        :data:`REBUILD_RATIO` and the table must be rebuilt.  Served tables
        are never mutated: a query that resolved its cost arrays under an
        older version keeps the scale that is admissible for *those* arrays,
        exactly like the cost store's copy-on-patch arrays.  Cheap: one
        vectorized ratio pass, and only when the cost version actually moved
        since the last validation.
        """
        if current_version == self.validated_version:
            return self if self.scale >= REBUILD_RATIO else None
        build = self.build_array
        ratio = 1.0
        if current_array is not build and build.size:
            # Only edges with a positive build-time cost constrain the
            # rescaling: a zero-cost edge contributes zero to every bound,
            # which any non-negative current cost still dominates.
            mask = build > 0.0
            if mask.any():
                with np.errstate(divide="ignore", invalid="ignore"):
                    ratio = float(np.min(current_array[mask] / build[mask]))
        scale = min(1.0, ratio)
        if scale < REBUILD_RATIO:
            return None
        if scale == self.scale:
            self.validated_version = current_version
            return self
        twin = LandmarkTable(
            self.key,
            self.strategy,
            self.indices,
            self.dist_from,
            self.dist_to,
            build,
            self.build_version,
            requested_count=self.requested_count,
        )
        twin.scale = scale
        twin.validated_version = current_version
        return twin

    # ------------------------------------------------------------------ #
    # Triangle-inequality bounds (vectorized over all vertices)
    # ------------------------------------------------------------------ #
    def _bounds(self, fwd_ref: np.ndarray, bwd_ref: np.ndarray, sign: int) -> np.ndarray:
        # ``inf - inf`` (both sides unreachable from a landmark) is NaN and
        # carries no information; np.fmax drops NaNs in favour of any real
        # bound, and the final fmax against 0.0 maps all-NaN columns to 0.
        lf = self.dist_from
        lt = self.dist_to
        with np.errstate(invalid="ignore"):
            if sign > 0:
                b = np.fmax(fwd_ref[:, None] - lf, lt - bwd_ref[:, None])
            else:
                b = np.fmax(lf - fwd_ref[:, None], bwd_ref[:, None] - lt)
            h = np.fmax.reduce(b, axis=0)
        h = np.fmax(h, 0.0)
        if self.scale != 1.0:
            h *= self.scale
        return h

    def bounds_to(self, target: int) -> np.ndarray:
        """Lower bounds on ``d(v, target)`` for every vertex ``v`` at once.

        ``inf`` entries are exact: a finite landmark row proving ``target``
        unreachable from ``v`` transfers through the triangle inequality.
        """
        return self._bounds(self.dist_from[:, target], self.dist_to[:, target], +1)

    def bounds_from(self, source: int) -> np.ndarray:
        """Lower bounds on ``d(source, v)`` — the backward-search potential."""
        return self._bounds(self.dist_from[:, source], self.dist_to[:, source], -1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LandmarkTable(landmarks={self.count}, strategy={self.strategy!r}, "
            f"scale={self.scale:.3f}, build_version={self.build_version})"
        )


# ---------------------------------------------------------------------- #
# Landmark selection
# ---------------------------------------------------------------------- #
def _sssp_rows(graph, key, array, version, sources: list[int]) -> np.ndarray:
    return batch.dijkstra_many(graph, key, array, version, sources)


def _seed_index(graph: "CompiledGraph") -> int:
    """A deterministic seed vertex that actually has outgoing edges.

    Index 0 may be a sink (one-way cul-de-sac), whose SSSP row would be
    all-``inf`` and derail the greedy selection before it starts.
    """
    offsets = graph.offsets
    for v in range(graph.vertex_count):
        if offsets[v + 1] > offsets[v]:
            return v
    return 0


def _uncovered_seed(graph: "CompiledGraph", min_dist: np.ndarray, chosen: list[int]) -> int:
    """A vertex no chosen landmark reaches (another weak component), or -1."""
    offsets = graph.offsets
    chosen_set = set(chosen)
    for v in range(len(min_dist)):
        if (
            not np.isfinite(min_dist[v])
            and v not in chosen_set
            and offsets[v + 1] > offsets[v]
        ):
            return v
    return -1


def _greedy_extend(
    graph: "CompiledGraph",
    key: Hashable,
    array: np.ndarray,
    version: int | None,
    chosen: list[int],
    rows: list[np.ndarray],
    min_dist: np.ndarray,
    count: int,
) -> None:
    """Grow ``chosen`` to ``count`` by greedy max-min distance (in place).

    When no reachable candidate remains (the covered component is
    exhausted), the next landmark jumps to an uncovered component so
    disconnected graphs still get bounds everywhere a search can run.
    """
    while len(chosen) < count:
        candidates = np.where(np.isfinite(min_dist), min_dist, -1.0)
        candidates[chosen] = -1.0
        nxt = int(np.argmax(candidates))
        if candidates[nxt] <= 0.0:
            nxt = _uncovered_seed(graph, min_dist, chosen)
            if nxt < 0:
                break  # every reachable vertex is a landmark (or at one)
        chosen.append(nxt)
        row = _sssp_rows(graph, key, array, version, [nxt])[0]
        rows.append(row)
        np.minimum(min_dist, row, out=min_dist)


def _select_farthest(
    graph: "CompiledGraph",
    key: Hashable,
    array: np.ndarray,
    version: int | None,
    count: int,
) -> tuple[list[int], np.ndarray]:
    """Greedy max-min-distance selection; returns indices + forward rows."""
    seed = _seed_index(graph)
    seed_row = _sssp_rows(graph, key, array, version, [seed])[0]
    finite = np.where(np.isfinite(seed_row), seed_row, -1.0)
    first = int(np.argmax(finite))
    chosen = [first]
    rows = [_sssp_rows(graph, key, array, version, [first])[0]]
    min_dist = rows[0].copy()
    _greedy_extend(graph, key, array, version, chosen, rows, min_dist, count)
    return chosen, np.vstack(rows)


def _sssp_with_parents(
    graph: "CompiledGraph", weights: list[float], source: int
) -> tuple[list[float], list[int], list[int]]:
    """Full forward SSSP returning ``(dist, parent, settle order)`` lists."""
    n = graph.vertex_count
    offsets, targets = graph.offsets, graph.targets
    dist_out = [float("inf")] * n
    parent_out = [-1] * n
    order: list[int] = []
    with graph.borrowed_workspace() as ws:
        gen = ws.begin()
        dist = ws.dist
        parent = ws.parent
        stamp = ws.stamp
        dist[source] = 0.0
        parent[source] = -1
        stamp[source] = gen
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            cost_u, u = heappop(heap)
            if cost_u > dist[u] or dist_out[u] != float("inf"):
                continue
            dist_out[u] = cost_u
            parent_out[u] = parent[u]
            order.append(u)
            for i in range(offsets[u], offsets[u + 1]):
                v = targets[i]
                candidate = cost_u + weights[i]
                if stamp[v] != gen:
                    stamp[v] = gen
                    dist[v] = candidate
                    parent[v] = u
                    heappush(heap, (candidate, v))
                elif candidate < dist[v]:
                    dist[v] = candidate
                    parent[v] = u
                    heappush(heap, (candidate, v))
    return dist_out, parent_out, order


def _select_avoid(
    graph: "CompiledGraph",
    key: Hashable,
    array: np.ndarray,
    version: int | None,
    count: int,
) -> tuple[list[int], np.ndarray]:
    """Goldberg–Werneck *avoid* selection; returns indices + forward rows.

    Each round roots a shortest-path tree at a (seeded) random vertex,
    weighs vertices by how far the current landmark bounds fall short of
    the true distance, and plants the next landmark at a leaf of the
    heaviest subtree that contains no landmark yet.
    """
    chosen, rows_matrix = _select_farthest(graph, key, array, version, 1)
    rows = [rows_matrix[0]]
    n = graph.vertex_count
    weights = graph.forward_weights(key, array, version)
    rng = random.Random(0x5EED ^ n)
    attempts = 0
    while len(chosen) < count and attempts < 4 * count:
        attempts += 1
        root = rng.randrange(n)
        if root in chosen:
            continue
        dist_r, parent_r, order = _sssp_with_parents(graph, weights, root)
        if len(order) < 2:
            continue
        # Bound d(root, v) with the landmarks chosen so far (forward rows
        # only — a valid, if looser, subset of the final table's bounds).
        fwd = np.vstack(rows)
        with np.errstate(invalid="ignore"):
            pi = np.fmax.reduce(fwd - fwd[:, root][:, None], axis=0)
        pi = np.fmax(pi, 0.0)
        gap = np.asarray(dist_r, dtype=np.float64) - pi
        gap[~np.isfinite(gap)] = 0.0

        children: list[list[int]] = [[] for _ in range(n)]
        for v in order:
            if parent_r[v] >= 0:
                children[parent_r[v]].append(v)
        size = [0.0] * n
        blocked = [False] * n
        landmark_set = set(chosen)
        for v in reversed(order):
            in_blocked = v in landmark_set
            total = float(gap[v])
            for child in children[v]:
                if blocked[child]:
                    in_blocked = True
                total += size[child]
            blocked[v] = in_blocked
            size[v] = 0.0 if in_blocked else total

        best = max(order, key=lambda v: size[v])
        if size[best] <= 0.0:
            continue
        while children[best]:
            heaviest = max(children[best], key=lambda c: size[c])
            if size[heaviest] <= 0.0:
                break
            best = heaviest
        if best in landmark_set:
            continue
        chosen.append(best)
        rows.append(_sssp_rows(graph, key, array, version, [best])[0])
    # Random roots can run dry on tiny graphs; top up with farthest picks.
    if len(chosen) < count:
        min_dist = np.minimum.reduce(rows)
        _greedy_extend(graph, key, array, version, chosen, rows, min_dist, count)
    return chosen, np.vstack(rows)


def build_landmark_table(
    graph: "CompiledGraph",
    key: Hashable,
    array: np.ndarray,
    version: int | None,
    count: int | None = None,
    strategy: str | None = None,
) -> LandmarkTable | None:
    """Select landmarks and precompute their distance rows for one cost view."""
    n = graph.vertex_count
    if n == 0 or key is None:
        return None
    count = min(count or DEFAULT_LANDMARK_COUNT, n)
    strategy = strategy or DEFAULT_STRATEGY
    if strategy not in _STRATEGIES:
        raise ConfigurationError(
            f"unknown landmark strategy {strategy!r}; choose one of {_STRATEGIES}"
        )
    if strategy == "farthest":
        chosen, dist_from = _select_farthest(graph, key, array, version, count)
    elif strategy == "avoid":
        chosen, dist_from = _select_avoid(graph, key, array, version, count)
    else:
        rng = random.Random(0x5EED ^ n)
        chosen = rng.sample(range(n), count)
        dist_from = _sssp_rows(graph, key, array, version, chosen)
    dist_to = batch.dijkstra_many(graph, key, array, version, chosen, reverse=True)
    build_version = version if version is not None else graph.costs.version
    return LandmarkTable(
        key, strategy, chosen, dist_from, dist_to, array, build_version,
        requested_count=count,
    )
