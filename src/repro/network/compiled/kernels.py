"""Array-based search kernels over a CSR graph.

Each kernel mirrors one of the dict-based reference implementations in
:mod:`repro.routing` *exactly* — same relaxation order, same strict-less
tie-breaking, same termination conditions — so the two produce identical
paths, not merely cost-identical ones.  (Vertex indices are assigned in sorted
vertex-id order and CSR slots preserve adjacency insertion order, which makes
heap tie-breaking order-isomorphic to the dict kernels'.)

The kernels work on plain Python lists (CSR ``offsets`` / ``targets`` plus a
per-query ``weights`` list) and a generation-stamped
:class:`~repro.network.compiled.workspace.SearchWorkspace`; they allocate
nothing per query beyond the heap itself.  Optional edge filters are
evaluated lazily, exactly like the reference implementations: only on edges
adjacent to expanded vertices, never over the whole graph.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Callable

from .workspace import SearchWorkspace

_INF = math.inf


def _walk_parents(parent: list[int], source: int, destination: int) -> list[int]:
    """Vertex-index path from ``source`` to ``destination`` via parent links."""
    out = [destination]
    current = destination
    while current != source:
        current = parent[current]
        out.append(current)
    out.reverse()
    return out


def dijkstra_kernel(
    offsets: list[int],
    targets: list[int],
    weights: list[float],
    source: int,
    destination: int,
    ws: SearchWorkspace,
    edges: list | None = None,
    edge_filter: Callable | None = None,
) -> list[int] | None:
    """Point-to-point Dijkstra; returns the index path or ``None``.

    ``edge_filter`` (with the CSR-ordered ``edges`` list) is consulted lazily
    per relaxed edge, mirroring the reference implementation's call pattern.
    """
    gen = ws.begin()
    dist = ws.dist
    parent = ws.parent
    stamp = ws.stamp
    dist[source] = 0.0
    stamp[source] = gen
    heap: list[tuple[float, int]] = [(0.0, source)]
    filtered = edge_filter is not None
    while heap:
        cost_u, u = heappop(heap)
        if cost_u > dist[u]:
            continue
        if u == destination:
            return _walk_parents(parent, source, destination)
        for i in range(offsets[u], offsets[u + 1]):
            if filtered and not edge_filter(edges[i]):
                continue
            v = targets[i]
            candidate = cost_u + weights[i]
            if stamp[v] != gen:
                if candidate != _INF:
                    stamp[v] = gen
                    dist[v] = candidate
                    parent[v] = u
                    heappush(heap, (candidate, v))
            elif candidate < dist[v]:
                dist[v] = candidate
                parent[v] = u
                heappush(heap, (candidate, v))
    return None


def dijkstra_costs_kernel(
    offsets: list[int],
    targets: list[int],
    weights: list[float],
    source: int,
    remaining: set[int] | None,
    ws: SearchWorkspace,
) -> list[tuple[int, float]]:
    """Single-source settle order: ``(vertex index, cost)`` pairs.

    When ``remaining`` is given the search stops as soon as every index in it
    has been settled (the set is consumed).
    """
    gen = ws.begin()
    dist = ws.dist
    stamp = ws.stamp
    dist[source] = 0.0
    stamp[source] = gen
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled: list[tuple[int, float]] = []
    while heap:
        cost_u, u = heappop(heap)
        if cost_u > dist[u]:
            continue
        # A vertex pops at its final distance exactly once: later duplicates
        # carry a strictly larger key and are skipped above.
        settled.append((u, cost_u))
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for i in range(offsets[u], offsets[u + 1]):
            v = targets[i]
            candidate = cost_u + weights[i]
            if stamp[v] != gen:
                if candidate != _INF:
                    stamp[v] = gen
                    dist[v] = candidate
                    heappush(heap, (candidate, v))
            elif candidate < dist[v]:
                dist[v] = candidate
                heappush(heap, (candidate, v))
    return settled


def astar_kernel(
    offsets: list[int],
    targets: list[int],
    weights: list[float],
    source: int,
    destination: int,
    heuristic: Callable[[int], float],
    ws: SearchWorkspace,
    gen: int,
    edges: list | None = None,
    edge_filter: Callable | None = None,
) -> list[int] | None:
    """A* on the CSR graph; ``heuristic`` maps a vertex *index* to a bound.

    The caller owns the generation (``gen = ws.begin()``) so it can share the
    workspace's heuristic cache with the kernel.  ``edge_filter`` is
    consulted lazily per relaxed edge, like the reference implementation.
    """
    g_score = ws.dist
    parent = ws.parent
    stamp = ws.stamp
    closed = ws.closed
    g_score[source] = 0.0
    stamp[source] = gen
    heap: list[tuple[float, int]] = [(heuristic(source), source)]
    filtered = edge_filter is not None
    while heap:
        _, u = heappop(heap)
        if closed[u] == gen:
            continue
        closed[u] = gen
        if u == destination:
            return _walk_parents(parent, source, destination)
        cost_u = g_score[u]
        for i in range(offsets[u], offsets[u + 1]):
            v = targets[i]
            if closed[v] == gen:
                continue
            if filtered and not edge_filter(edges[i]):
                continue
            tentative = cost_u + weights[i]
            if stamp[v] != gen:
                if tentative != _INF:
                    stamp[v] = gen
                    g_score[v] = tentative
                    parent[v] = u
                    heappush(heap, (tentative + heuristic(v), v))
            elif tentative < g_score[v]:
                g_score[v] = tentative
                parent[v] = u
                heappush(heap, (tentative + heuristic(v), v))
    return None


def bidirectional_kernel(
    offsets: list[int],
    targets: list[int],
    weights: list[float],
    r_offsets: list[int],
    r_targets: list[int],
    r_weights: list[float],
    source: int,
    destination: int,
    ws: SearchWorkspace,
) -> list[int] | None:
    """Bidirectional Dijkstra mirroring the reference stopping rule."""
    gen = ws.begin()
    dist_f = ws.dist
    parent_f = ws.parent
    stamp_f = ws.stamp
    settled_f = ws.closed
    dist_b = ws.dist_b
    parent_b = ws.parent_b
    stamp_b = ws.stamp_b
    settled_b = ws.closed_b
    dist_f[source] = 0.0
    stamp_f[source] = gen
    dist_b[destination] = 0.0
    stamp_b[destination] = gen
    heap_f: list[tuple[float, int]] = [(0.0, source)]
    heap_b: list[tuple[float, int]] = [(0.0, destination)]

    best_cost = _INF
    meeting = -1

    while heap_f and heap_b:
        top_f = heap_f[0][0]
        top_b = heap_b[0][0]
        if top_f + top_b >= best_cost:
            break
        if top_f <= top_b:
            cost_u, u = heappop(heap_f)
            if settled_f[u] == gen:
                continue
            settled_f[u] = gen
            if stamp_b[u] == gen and cost_u + dist_b[u] < best_cost:
                best_cost = cost_u + dist_b[u]
                meeting = u
            for i in range(offsets[u], offsets[u + 1]):
                v = targets[i]
                if settled_f[v] == gen:
                    continue
                candidate = cost_u + weights[i]
                if stamp_f[v] != gen:
                    if candidate != _INF:
                        stamp_f[v] = gen
                        dist_f[v] = candidate
                        parent_f[v] = u
                        heappush(heap_f, (candidate, v))
                elif candidate < dist_f[v]:
                    dist_f[v] = candidate
                    parent_f[v] = u
                    heappush(heap_f, (candidate, v))
                if stamp_b[v] == gen and candidate + dist_b[v] < best_cost:
                    best_cost = candidate + dist_b[v]
                    meeting = v
        else:
            cost_u, u = heappop(heap_b)
            if settled_b[u] == gen:
                continue
            settled_b[u] = gen
            if stamp_f[u] == gen and cost_u + dist_f[u] < best_cost:
                best_cost = cost_u + dist_f[u]
                meeting = u
            for i in range(r_offsets[u], r_offsets[u + 1]):
                v = r_targets[i]
                if settled_b[v] == gen:
                    continue
                candidate = cost_u + r_weights[i]
                if stamp_b[v] != gen:
                    if candidate != _INF:
                        stamp_b[v] = gen
                        dist_b[v] = candidate
                        parent_b[v] = u
                        heappush(heap_b, (candidate, v))
                elif candidate < dist_b[v]:
                    dist_b[v] = candidate
                    parent_b[v] = u
                    heappush(heap_b, (candidate, v))
                if stamp_f[v] == gen and candidate + dist_f[v] < best_cost:
                    best_cost = candidate + dist_f[v]
                    meeting = v

    if meeting < 0:
        return None

    forward = _walk_parents(parent_f, source, meeting)
    current = meeting
    while current != destination:
        current = parent_b[current]
        forward.append(current)
    return forward


def preference_kernel(
    offsets: list[int],
    targets: list[int],
    weights: list[float],
    allowed: list[bool],
    none_allowed: list[bool],
    source: int,
    destination: int,
    ws: SearchWorkspace,
) -> list[int] | None:
    """Algorithm 2 (preference-aware Dijkstra) on the CSR graph.

    ``allowed[slot]`` says whether the edge satisfies the slave road-condition
    feature; ``none_allowed[u]`` is precomputed as "no outgoing edge of ``u``
    satisfies it", in which case all of ``u``'s edges are expanded (the
    paper's Case ii).
    """
    gen = ws.begin()
    dist = ws.dist
    parent = ws.parent
    stamp = ws.stamp
    dist[source] = 0.0
    stamp[source] = gen
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        cost_u, u = heappop(heap)
        if cost_u > dist[u]:
            continue
        if u == destination:
            return _walk_parents(parent, source, destination)
        expand_all = none_allowed[u]
        for i in range(offsets[u], offsets[u + 1]):
            if not (allowed[i] or expand_all):
                continue
            v = targets[i]
            candidate = cost_u + weights[i]
            if stamp[v] != gen:
                if candidate != _INF:
                    stamp[v] = gen
                    dist[v] = candidate
                    parent[v] = u
                    heappush(heap, (candidate, v))
            elif candidate < dist[v]:
                dist[v] = candidate
                parent[v] = u
                heappush(heap, (candidate, v))
    return None
