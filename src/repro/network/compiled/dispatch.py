"""Dispatch from the public routing functions onto the compiled kernels.

The functions here are the bridge between the dict-based routing API
(:mod:`repro.routing`) and the CSR kernels.  Each ``try_*`` function returns

* a vertex-id path (or result mapping) when the compiled kernel ran,
* ``None`` when the query is not eligible — compiled search disabled, or the
  edge-cost callable is opaque — in which case the caller falls back to its
  dict-based reference implementation,

and raises :class:`~repro.exceptions.NoPathError` when the kernel ran and
proved the destination unreachable.

This module deliberately imports nothing from :mod:`repro.routing` (the
routing modules import *it*), keeping the dependency graph acyclic.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ...exceptions import NoPathError
from . import sparse
from .kernels import (
    astar_kernel,
    bidirectional_kernel,
    dijkstra_costs_kernel,
    dijkstra_kernel,
    preference_kernel,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..road_network import Edge, RoadNetwork, VertexId
    from .graph import CompiledGraph

_enabled = True


class PreferenceSearchExhausted(Exception):
    """Internal signal: the compiled Algorithm-2 search found no path.

    Raised instead of :class:`NoPathError` so the caller can apply the
    paper's fall-back-to-unconstrained-master-cost behaviour.
    """


def is_enabled() -> bool:
    """Whether routing functions dispatch to the compiled kernels."""
    return _enabled


@contextmanager
def compiled_disabled() -> Iterator[None]:
    """Force the dict-based reference implementations (tests, benchmarks)."""
    global _enabled
    previous = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = previous


def _recognized(edge_cost) -> bool:
    """Whether the cost callable can map onto a compiled cost array.

    Checked *before* touching ``network.compiled()`` so opaque costs never
    trigger (and then discard) a CSR compilation.
    """
    return (
        getattr(edge_cost, "cost_attr", None) is not None
        or getattr(edge_cost, "cost_terms", None) is not None
        or getattr(edge_cost, "build_cost_array", None) is not None
    )


def _view(network: "RoadNetwork") -> "CompiledGraph | None":
    if not _enabled:
        return None
    accessor = getattr(network, "compiled", None)
    if accessor is None:
        return None
    return accessor()


def _weights(graph: "CompiledGraph", edge_cost) -> list[float] | None:
    resolved = graph.resolve_cost(edge_cost)
    if resolved is None:
        return None
    key, array, version = resolved
    return graph.forward_weights(key, array, version)


def try_dijkstra(
    network: "RoadNetwork",
    source: "VertexId",
    destination: "VertexId",
    edge_cost,
    edge_filter: Callable[["Edge"], bool] | None = None,
) -> list["VertexId"] | None:
    """Compiled point-to-point Dijkstra (see module docstring for protocol)."""
    if not _recognized(edge_cost):
        return None
    graph = _view(network)
    if graph is None:
        return None
    resolved = graph.resolve_cost(edge_cost)
    if resolved is None:
        return None
    key, array, version = resolved
    source_index = graph.index_of[source]
    destination_index = graph.index_of[destination]
    if edge_filter is None and key is not None:
        # Fast path: scipy's C Dijkstra over the same CSR arrays, with an
        # exact (reference-identical) path reconstruction.  Restricted to
        # cacheable cost arrays: it runs a full SSSP with no destination
        # early-stop, which only pays off once the CSR matrix is memoized —
        # per-query arrays (key None, e.g. corridor costs) do better on the
        # early-exiting python kernel below.
        result = sparse.shortest_path_indices(
            graph, key, array, source_index, destination_index, version
        )
        if result == ():
            raise NoPathError(source, destination)
        if result is not None:
            return graph.path_ids(result)
    weights = graph.forward_weights(key, array, version)
    with graph.borrowed_workspace() as ws:
        indices = dijkstra_kernel(
            graph.offsets,
            graph.targets,
            weights,
            source_index,
            destination_index,
            ws,
            graph.edges,
            edge_filter,
        )
    if indices is None:
        raise NoPathError(source, destination)
    return graph.path_ids(indices)


def try_dijkstra_costs(
    network: "RoadNetwork",
    source: "VertexId",
    edge_cost,
    targets: Iterable["VertexId"] | None = None,
) -> dict["VertexId", float] | None:
    """Compiled single-source costs with the reference early-stop semantics."""
    if not _recognized(edge_cost):
        return None
    graph = _view(network)
    if graph is None:
        return None
    weights = _weights(graph, edge_cost)
    if weights is None:
        return None
    target_set = set(targets) if targets is not None else None
    remaining: set[int] | None = None
    if target_set is not None:
        index_of = graph.index_of
        remaining = {index_of[t] for t in target_set if t in index_of}
    with graph.borrowed_workspace() as ws:
        settled = dijkstra_costs_kernel(
            graph.offsets, graph.targets, weights, graph.index_of[source], remaining, ws
        )
    ids = graph.vertex_ids
    if target_set is not None:
        return {ids[i]: cost for i, cost in settled if ids[i] in target_set}
    return {ids[i]: cost for i, cost in settled}


def try_astar(
    network: "RoadNetwork",
    source: "VertexId",
    destination: "VertexId",
    edge_cost,
    heuristic: Callable[["VertexId"], float],
    edge_filter: Callable[["Edge"], bool] | None = None,
) -> list["VertexId"] | None:
    """Compiled A*; caches heuristic values per vertex per query."""
    if not _recognized(edge_cost):
        return None
    graph = _view(network)
    if graph is None:
        return None
    weights = _weights(graph, edge_cost)
    if weights is None:
        return None
    ids = graph.vertex_ids
    with graph.borrowed_workspace() as ws:
        gen = ws.begin()
        hval = ws.hval
        hstamp = ws.hstamp

        def cached_heuristic(index: int) -> float:
            if hstamp[index] != gen:
                hval[index] = heuristic(ids[index])
                hstamp[index] = gen
            return hval[index]

        indices = astar_kernel(
            graph.offsets,
            graph.targets,
            weights,
            graph.index_of[source],
            graph.index_of[destination],
            cached_heuristic,
            ws,
            gen,
            graph.edges,
            edge_filter,
        )
    if indices is None:
        raise NoPathError(source, destination)
    return graph.path_ids(indices)


def try_bidirectional(
    network: "RoadNetwork",
    source: "VertexId",
    destination: "VertexId",
    edge_cost,
) -> list["VertexId"] | None:
    """Compiled bidirectional Dijkstra over the forward and reverse CSR."""
    if not _recognized(edge_cost):
        return None
    graph = _view(network)
    if graph is None:
        return None
    resolved = graph.resolve_cost(edge_cost)
    if resolved is None:
        return None
    key, array, version = resolved
    weights = graph.forward_weights(key, array, version)
    r_weights = graph.reverse_weights(key, array, version)
    with graph.borrowed_workspace() as ws:
        indices = bidirectional_kernel(
            graph.offsets,
            graph.targets,
            weights,
            graph.r_offsets,
            graph.r_targets,
            r_weights,
            graph.index_of[source],
            graph.index_of[destination],
            ws,
        )
    if indices is None:
        raise NoPathError(source, destination)
    return graph.path_ids(indices)


def _slave_masks(graph: "CompiledGraph", slave) -> tuple[list[bool], list[bool]]:
    """Per-slot "edge satisfies the slave" mask + per-vertex Case-ii flags."""
    allowed = [slave.satisfied_by(edge.road_type) for edge in graph.edges]
    offsets = graph.offsets
    none_allowed = [
        not any(allowed[offsets[u] : offsets[u + 1]])
        for u in range(graph.vertex_count)
    ]
    return allowed, none_allowed


def try_preference(
    network: "RoadNetwork",
    source: "VertexId",
    destination: "VertexId",
    master_cost,
    slave,
) -> list["VertexId"] | None:
    """Compiled Algorithm 2; raises :class:`PreferenceSearchExhausted` when
    the (possibly slave-constrained) search runs dry."""
    if not _recognized(master_cost):
        return None
    graph = _view(network)
    if graph is None:
        return None
    weights = _weights(graph, master_cost)
    if weights is None:
        return None
    # The slave masks depend on road types only, which cost updates can
    # never change — they survive live-traffic patches (cost_dependent=False).
    if slave is None:
        allowed = graph.memo(
            ("slave-none",), lambda: [True] * graph.edge_count, cost_dependent=False
        )
        none_allowed = graph.memo(
            ("slave-none-vertices",),
            lambda: [False] * graph.vertex_count,
            cost_dependent=False,
        )
    else:
        allowed, none_allowed = graph.memo(
            ("slave-masks", slave),
            lambda: _slave_masks(graph, slave),
            cost_dependent=False,
        )
    with graph.borrowed_workspace() as ws:
        indices = preference_kernel(
            graph.offsets,
            graph.targets,
            weights,
            allowed,  # type: ignore[arg-type]
            none_allowed,  # type: ignore[arg-type]
            graph.index_of[source],
            graph.index_of[destination],
            ws,
        )
    if indices is None:
        raise PreferenceSearchExhausted()
    return graph.path_ids(indices)
