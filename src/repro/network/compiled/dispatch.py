"""Dispatch from the public routing functions onto the compiled kernels.

The functions here are the bridge between the dict-based routing API
(:mod:`repro.routing`) and the CSR kernels.  Each ``try_*`` function returns

* a vertex-id path (or result mapping) when the compiled kernel ran,
* ``None`` when the query is not eligible — compiled search disabled, or the
  edge-cost callable is opaque — in which case the caller falls back to its
  dict-based reference implementation,

and raises :class:`~repro.exceptions.NoPathError` when the kernel ran and
proved the destination unreachable.

This module deliberately imports nothing from :mod:`repro.routing` (the
routing modules import *it*), keeping the dependency graph acyclic.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

import numpy as np

from ...exceptions import NoPathError
from . import sparse
from .kernels import (
    astar_kernel,
    bidirectional_kernel,
    dijkstra_costs_kernel,
    dijkstra_kernel,
    preference_kernel,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..road_network import Edge, RoadNetwork, VertexId
    from .graph import CompiledGraph

_enabled = True
_alt_enabled = True


class PreferenceSearchExhausted(Exception):
    """Internal signal: the compiled Algorithm-2 search found no path.

    Raised instead of :class:`NoPathError` so the caller can apply the
    paper's fall-back-to-unconstrained-master-cost behaviour.
    """


def is_enabled() -> bool:
    """Whether routing functions dispatch to the compiled kernels."""
    return _enabled


@contextmanager
def compiled_disabled() -> Iterator[None]:
    """Force the dict-based reference implementations (tests, benchmarks)."""
    global _enabled
    previous = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = previous


def alt_is_enabled() -> bool:
    """Whether goal-directed (ALT landmark) search is the compiled default."""
    return _alt_enabled


@contextmanager
def alt_disabled() -> Iterator[None]:
    """Force the plain (non-goal-directed) compiled kernels.

    ALT-A* and ALT-bidirectional answers are cost-optimal but may pick a
    different equal-cost path than the dict-based references; the exact
    path-identity tests and benchmarks run under this context.
    """
    global _alt_enabled
    previous = _alt_enabled
    _alt_enabled = False
    try:
        yield
    finally:
        _alt_enabled = previous


def _recognized(edge_cost) -> bool:
    """Whether the cost callable can map onto a compiled cost array.

    Checked *before* touching ``network.compiled()`` so opaque costs never
    trigger (and then discard) a CSR compilation.
    """
    return (
        getattr(edge_cost, "cost_attr", None) is not None
        or getattr(edge_cost, "cost_terms", None) is not None
        or getattr(edge_cost, "build_cost_array", None) is not None
    )


def _view(network: "RoadNetwork") -> "CompiledGraph | None":
    if not _enabled:
        return None
    accessor = getattr(network, "compiled", None)
    if accessor is None:
        return None
    return accessor()


def _weights(graph: "CompiledGraph", edge_cost) -> list[float] | None:
    resolved = graph.resolve_cost(edge_cost)
    if resolved is None:
        return None
    key, array, version = resolved
    return graph.forward_weights(key, array, version)


def try_dijkstra(
    network: "RoadNetwork",
    source: "VertexId",
    destination: "VertexId",
    edge_cost,
    edge_filter: Callable[["Edge"], bool] | None = None,
) -> list["VertexId"] | None:
    """Compiled point-to-point Dijkstra (see module docstring for protocol)."""
    if not _recognized(edge_cost):
        return None
    graph = _view(network)
    if graph is None:
        return None
    resolved = graph.resolve_cost(edge_cost)
    if resolved is None:
        return None
    key, array, version = resolved
    source_index = graph.index_of[source]
    destination_index = graph.index_of[destination]
    if edge_filter is None and key is not None:
        # Fast path: scipy's C Dijkstra over the same CSR arrays, with an
        # exact (reference-identical) path reconstruction.  Restricted to
        # cacheable cost arrays: it runs a full SSSP with no destination
        # early-stop, which only pays off once the CSR matrix is memoized —
        # per-query arrays (key None, e.g. corridor costs) do better on the
        # early-exiting python kernel below.
        result = sparse.shortest_path_indices(
            graph, key, array, source_index, destination_index, version
        )
        if result == ():
            raise NoPathError(source, destination)
        if result is not None:
            return graph.path_ids(result)
    weights = graph.forward_weights(key, array, version)
    with graph.borrowed_workspace() as ws:
        indices = dijkstra_kernel(
            graph.offsets,
            graph.targets,
            weights,
            source_index,
            destination_index,
            ws,
            graph.edges,
            edge_filter,
        )
    if indices is None:
        raise NoPathError(source, destination)
    return graph.path_ids(indices)


def try_dijkstra_costs(
    network: "RoadNetwork",
    source: "VertexId",
    edge_cost,
    targets: Iterable["VertexId"] | None = None,
) -> dict["VertexId", float] | None:
    """Compiled single-source costs with the reference early-stop semantics."""
    if not _recognized(edge_cost):
        return None
    graph = _view(network)
    if graph is None:
        return None
    weights = _weights(graph, edge_cost)
    if weights is None:
        return None
    target_set = set(targets) if targets is not None else None
    remaining: set[int] | None = None
    if target_set is not None:
        index_of = graph.index_of
        remaining = {index_of[t] for t in target_set if t in index_of}
    with graph.borrowed_workspace() as ws:
        settled = dijkstra_costs_kernel(
            graph.offsets, graph.targets, weights, graph.index_of[source], remaining, ws
        )
    ids = graph.vertex_ids
    if target_set is not None:
        return {ids[i]: cost for i, cost in settled if ids[i] in target_set}
    return {ids[i]: cost for i, cost in settled}


def _alt_table(graph: "CompiledGraph", key, array, version):
    """The landmark table for this cost view, or ``None`` when ALT is off."""
    if not _alt_enabled or key is None:
        return None
    return graph.landmark_table(key, array, version)


def try_astar(
    network: "RoadNetwork",
    source: "VertexId",
    destination: "VertexId",
    edge_cost,
    heuristic: Callable[["VertexId"], float] | None,
    edge_filter: Callable[["Edge"], bool] | None = None,
) -> list["VertexId"] | None:
    """Compiled A*.

    The goal-directed default: when the cost view is cacheable and ALT is
    enabled, the per-vertex heuristic becomes one vectorized landmark-bound
    pass plus pure list lookups inside the kernel — this applies when the
    caller passed no heuristic at all or one of the built-in geometric
    bounds (tagged ``alt_replaceable``), both of which ALT dominates while
    staying admissible.  Custom heuristics are honoured unchanged via the
    per-vertex callback path.  With ALT unavailable and no heuristic given,
    returns ``None`` so the caller picks its own fallback.
    """
    if not _recognized(edge_cost):
        return None
    graph = _view(network)
    if graph is None:
        return None
    resolved = graph.resolve_cost(edge_cost)
    if resolved is None:
        return None
    key, array, version = resolved
    weights = graph.forward_weights(key, array, version)
    source_index = graph.index_of[source]
    destination_index = graph.index_of[destination]

    table = None
    if heuristic is None or getattr(heuristic, "alt_replaceable", False):
        table = _alt_table(graph, key, array, version)
    if table is None and heuristic is None:
        return None

    with graph.borrowed_workspace() as ws:
        gen = ws.begin()
        if table is not None:
            bounds: list[float] = table.bounds_to(destination_index).tolist()
            kernel_heuristic: Callable[[int], float] = bounds.__getitem__
        else:
            ids = graph.vertex_ids
            hval = ws.hval
            hstamp = ws.hstamp

            def kernel_heuristic(index: int) -> float:
                if hstamp[index] != gen:
                    hval[index] = heuristic(ids[index])
                    hstamp[index] = gen
                return hval[index]

        indices = astar_kernel(
            graph.offsets,
            graph.targets,
            weights,
            source_index,
            destination_index,
            kernel_heuristic,
            ws,
            gen,
            graph.edges,
            edge_filter,
        )
    if indices is None:
        raise NoPathError(source, destination)
    return graph.path_ids(indices)


#: Sentinel: the ALT-bidirectional path could not run (fall through to plain).
_ALT_SKIP = object()

#: ALT-bidirectional pays O(edges) per query up front (reduced-cost arrays +
#: list conversions, since the potentials depend on the endpoints).  Past
#: this edge count that setup can outweigh the pruning on queries whose
#: frontiers settle only a small fraction of the graph, so the plain kernel
#: runs instead.  ALT-A* is unaffected: its per-query work is O(k * vertices)
#: numpy plus one O(vertices) list conversion.
ALT_BIDIRECTIONAL_MAX_EDGES = 200_000


def _bidirectional_alt_indices(
    graph: "CompiledGraph", key, array, version, table, source_index, destination_index
):
    """Goal-directed bidirectional search via consistent average potentials.

    With ``p(v) = (pi_t(v) - pi_s(v)) / 2`` the forward and backward reduced
    edge costs coincide (``w'(u,v) = w(u,v) - p(u) + p(v) >= 0`` by
    consistency of the landmark bounds), so the *plain* bidirectional
    kernel — stopping rule included — runs unchanged on the reduced arrays
    and returns a path that is optimal under the true costs.  Returns the
    index path, ``None`` for unreachable, or :data:`_ALT_SKIP` when the
    potentials are unusable (non-finite entries on partially reachable
    graphs) and the caller should run the plain kernel.
    """
    pi_t = table.bounds_to(destination_index)
    pi_s = table.bounds_from(source_index)
    with np.errstate(invalid="ignore"):  # inf - inf on partially reachable graphs
        potentials = 0.5 * (pi_t - pi_s)
    if not np.isfinite(potentials).all():
        return _ALT_SKIP
    slot_sources = graph.memo(
        ("csr-slot-sources",),
        lambda: np.repeat(
            np.arange(graph.vertex_count, dtype=np.int64),
            np.diff(np.asarray(graph.offsets, dtype=np.int64)),
        ),
        cost_dependent=False,
    )
    slot_targets = graph.memo(
        ("csr-slot-targets",),
        lambda: np.asarray(graph.targets, dtype=np.int64),
        cost_dependent=False,
    )
    reduced = array - potentials[slot_sources] + potentials[slot_targets]
    # Mathematically >= 0; clip the float-rounding dust so Dijkstra's
    # invariant holds (the perturbation is ~ulp-sized and cost-neutral).
    np.maximum(reduced, 0.0, out=reduced)
    weights = reduced.tolist()
    r_weights = reduced[graph.topology.r_slots].tolist() if reduced.size else []
    with graph.borrowed_workspace() as ws:
        return bidirectional_kernel(
            graph.offsets,
            graph.targets,
            weights,
            graph.r_offsets,
            graph.r_targets,
            r_weights,
            source_index,
            destination_index,
            ws,
        )


def try_bidirectional(
    network: "RoadNetwork",
    source: "VertexId",
    destination: "VertexId",
    edge_cost,
) -> list["VertexId"] | None:
    """Compiled bidirectional Dijkstra over the forward and reverse CSR.

    With ALT enabled and a cacheable cost view, both frontiers run on
    landmark-reduced costs (goal-directed from each end); otherwise — and
    whenever the potentials cannot cover the whole graph — the plain
    mirror-of-the-reference kernel runs.
    """
    if not _recognized(edge_cost):
        return None
    graph = _view(network)
    if graph is None:
        return None
    resolved = graph.resolve_cost(edge_cost)
    if resolved is None:
        return None
    key, array, version = resolved
    source_index = graph.index_of[source]
    destination_index = graph.index_of[destination]

    table = None
    if graph.edge_count <= ALT_BIDIRECTIONAL_MAX_EDGES:
        table = _alt_table(graph, key, array, version)
    if table is not None:
        indices = _bidirectional_alt_indices(
            graph, key, array, version, table, source_index, destination_index
        )
        if indices is not _ALT_SKIP:
            if indices is None:
                raise NoPathError(source, destination)
            return graph.path_ids(indices)

    weights = graph.forward_weights(key, array, version)
    r_weights = graph.reverse_weights(key, array, version)
    with graph.borrowed_workspace() as ws:
        indices = bidirectional_kernel(
            graph.offsets,
            graph.targets,
            weights,
            graph.r_offsets,
            graph.r_targets,
            r_weights,
            source_index,
            destination_index,
            ws,
        )
    if indices is None:
        raise NoPathError(source, destination)
    return graph.path_ids(indices)


def try_route_many(
    network: "RoadNetwork",
    pairs: list[tuple["VertexId", "VertexId"]],
    edge_cost,
) -> list[list["VertexId"] | tuple[()] | None] | None:
    """Batch point-to-point search over one shared cost view.

    Returns ``None`` when the batch backend cannot run at all (opaque cost,
    compiled search disabled, non-positive weights); otherwise a list
    aligned with ``pairs``: a vertex-id path, the empty tuple ``()`` for a
    provably unreachable pair, or ``None`` for a pair that must fall back
    to the per-request path (unknown vertex / reconstruction anomaly).
    Paths are reference-identical to per-query compiled Dijkstra.
    """
    if not _recognized(edge_cost):
        return None
    graph = _view(network)
    if graph is None:
        return None
    resolved = graph.resolve_cost(edge_cost)
    if resolved is None:
        return None
    key, array, version = resolved

    from . import batch

    index_of = graph.index_of
    index_pairs: list[tuple[int, int]] = []
    positions: list[int] = []
    results: list[list["VertexId"] | tuple[()] | None] = [None] * len(pairs)
    for position, (source, destination) in enumerate(pairs):
        s = index_of.get(source)
        t = index_of.get(destination)
        if s is None or t is None:
            continue  # unknown vertex: the per-request path raises properly
        index_pairs.append((s, t))
        positions.append(position)

    answered = batch.shortest_paths_many(graph, key, array, version, index_pairs)
    if answered is None:
        return None
    for position, answer in zip(positions, answered):
        if isinstance(answer, list):
            results[position] = graph.path_ids(answer)
        elif answer == ():
            results[position] = ()
    return results


def try_cost_rows(
    network: "RoadNetwork",
    sources: list["VertexId"],
    edge_cost,
    reverse: bool = False,
) -> tuple[np.ndarray, dict["VertexId", int]] | None:
    """Batched SSSP cost rows over one shared cost view.

    Returns ``(matrix, index_of)`` where ``matrix[i, j]`` is the cost from
    ``sources[i]`` to the vertex with compiled index ``j`` (with
    ``reverse=True``: the cost *to* ``sources[i]`` from ``j``), ``inf``
    marking unreachable vertices, and ``index_of`` maps vertex ids to the
    column indices.  Returns ``None`` when the batch backend cannot run —
    opaque cost, compiled search disabled, or an unknown source vertex.
    The sharding layer's boundary-overlay stitching is the primary caller.
    """
    if not _recognized(edge_cost):
        return None
    graph = _view(network)
    if graph is None:
        return None
    resolved = graph.resolve_cost(edge_cost)
    if resolved is None:
        return None
    key, array, version = resolved
    index_of = graph.index_of
    source_indices: list[int] = []
    for source in sources:
        index = index_of.get(source)
        if index is None:
            return None
        source_indices.append(index)

    from . import batch

    matrix = batch.dijkstra_many(graph, key, array, version, source_indices, reverse=reverse)
    return matrix, index_of


def try_route_from_rows(
    network: "RoadNetwork",
    rows: np.ndarray,
    legs: list[tuple[int, "VertexId", "VertexId"]],
    edge_cost,
    reverse: bool = False,
) -> list[list["VertexId"] | tuple[()] | None] | None:
    """Reconstruct point-to-point paths from precomputed SSSP cost rows.

    ``rows`` is the matrix a prior :func:`try_cost_rows` call returned for
    the same network, cost, and ``reverse`` flag; ``legs`` holds ``(row,
    source, destination)`` triples where ``row`` indexes ``rows`` —
    forward rows are keyed by the leg's source, reverse rows by its
    destination.  Because the deterministic walk only needs the distance
    row plus the current weights, every leg is answered **without a new
    SSSP**.  Returns ``None`` when unavailable (opaque cost, disabled,
    non-positive weights, stale row shape); otherwise a legs-aligned list:
    vertex-id path, ``()`` for a provably unreachable leg, or ``None`` for
    a leg the caller must re-derive (unknown vertex, or the exact-equality
    walk detecting the row no longer matches the live cost view).
    """
    if not _recognized(edge_cost):
        return None
    graph = _view(network)
    if graph is None:
        return None
    resolved = graph.resolve_cost(edge_cost)
    if resolved is None:
        return None
    key, array, version = resolved
    if not sparse._all_positive(graph, key, array, version):
        return None
    if rows.ndim != 2 or rows.shape[1] != graph.vertex_count:
        return None
    if reverse:
        weights = graph.forward_weights(key, array, version)
    else:
        weights = graph.reverse_weights(key, array, version)

    index_of = graph.index_of
    row_cache: dict[int, list[float]] = {}
    results: list[list["VertexId"] | tuple[()] | None] = [None] * len(legs)
    for position, (row_index, source, destination) in enumerate(legs):
        s = index_of.get(source)
        t = index_of.get(destination)
        if s is None or t is None:
            continue  # unknown vertex: the per-request path raises properly
        if s == t:
            results[position] = [source]
            continue
        row = row_cache.get(row_index)
        if row is None:
            row = row_cache[row_index] = rows[row_index].tolist()
        if not np.isfinite(row[s if reverse else t]):
            results[position] = ()
            continue
        if reverse:
            indices = sparse.reconstruct_path_indices_forward(graph, row, weights, s, t)
        else:
            indices = sparse.reconstruct_path_indices(graph, row, weights, s, t)
        if indices is not None:
            results[position] = graph.path_ids(indices)
    return results


def try_ch(
    network: "RoadNetwork",
    source: "VertexId",
    destination: "VertexId",
    hierarchy,
) -> list["VertexId"] | None:
    """Compiled contraction-hierarchy query (see module docstring).

    Runs the elimination-tree label query on the compiled arc sets of
    :mod:`~repro.network.compiled.ch`, building them lazily on first use.
    Returns ``None`` when the compiled path cannot serve this hierarchy —
    compiled search disabled, a hand-built hierarchy without base weights,
    or a topology that drifted from the build (the dict walker is then the
    caller's fallback) — and raises :class:`NoPathError` when the query ran
    and proved the destination unreachable.
    """
    graph = _view(network)
    if graph is None:
        return None
    built_topology = getattr(hierarchy, "built_topology_version", None)
    if built_topology is None:
        return None
    if getattr(network, "topology_version", None) != built_topology:
        return None
    from . import ch as _ch

    compiled = _ch.compiled_hierarchy(hierarchy, graph, network)
    if compiled is None:
        return None
    index_of = graph.index_of
    source_index = index_of.get(source)
    destination_index = index_of.get(destination)
    if source_index is None or destination_index is None:
        return None
    indices = compiled.query_indices(source_index, destination_index)
    if indices is None:
        raise NoPathError(source, destination)
    return graph.path_ids(indices)


def _slave_masks(graph: "CompiledGraph", slave) -> tuple[list[bool], list[bool]]:
    """Per-slot "edge satisfies the slave" mask + per-vertex Case-ii flags."""
    allowed = [slave.satisfied_by(edge.road_type) for edge in graph.edges]
    offsets = graph.offsets
    none_allowed = [
        not any(allowed[offsets[u] : offsets[u + 1]])
        for u in range(graph.vertex_count)
    ]
    return allowed, none_allowed


def try_preference(
    network: "RoadNetwork",
    source: "VertexId",
    destination: "VertexId",
    master_cost,
    slave,
) -> list["VertexId"] | None:
    """Compiled Algorithm 2; raises :class:`PreferenceSearchExhausted` when
    the (possibly slave-constrained) search runs dry."""
    if not _recognized(master_cost):
        return None
    graph = _view(network)
    if graph is None:
        return None
    weights = _weights(graph, master_cost)
    if weights is None:
        return None
    # The slave masks depend on road types only, which cost updates can
    # never change — they survive live-traffic patches (cost_dependent=False).
    if slave is None:
        allowed = graph.memo(
            ("slave-none",), lambda: [True] * graph.edge_count, cost_dependent=False
        )
        none_allowed = graph.memo(
            ("slave-none-vertices",),
            lambda: [False] * graph.vertex_count,
            cost_dependent=False,
        )
    else:
        allowed, none_allowed = graph.memo(
            ("slave-masks", slave),
            lambda: _slave_masks(graph, slave),
            cost_dependent=False,
        )
    with graph.borrowed_workspace() as ws:
        indices = preference_kernel(
            graph.offsets,
            graph.targets,
            weights,
            allowed,  # type: ignore[arg-type]
            none_allowed,  # type: ignore[arg-type]
            graph.index_of[source],
            graph.index_of[destination],
            ws,
        )
    if indices is None:
        raise PreferenceSearchExhausted()
    return graph.path_ids(indices)
