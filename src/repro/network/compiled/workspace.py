"""Preallocated, generation-stamped search state.

Every dict-based search in the seed implementation allocated fresh ``dist`` /
``parent`` / ``visited`` containers per query.  A :class:`SearchWorkspace`
replaces them with flat arrays sized to the vertex count that are allocated
once per (graph, thread) and *never cleared*: each search bumps a generation
counter, and a per-vertex stamp records which generation last wrote the slot.
A slot whose stamp differs from the current generation is logically
"uninitialized" (``dist = +inf``), so starting a new search is O(1) instead of
O(vertices touched).
"""

from __future__ import annotations


class SearchWorkspace:
    """Flat per-vertex state shared by the array-based search kernels.

    The arrays are plain Python lists (not numpy): the kernels index them one
    element at a time inside tight loops, where list indexing is several times
    faster than numpy scalar indexing.  Forward and backward variants exist so
    the bidirectional kernel can run both frontiers in one generation.
    """

    __slots__ = (
        "size",
        "generation",
        "dist",
        "parent",
        "stamp",
        "closed",
        "dist_b",
        "parent_b",
        "stamp_b",
        "closed_b",
        "hval",
        "hstamp",
    )

    def __init__(self, size: int) -> None:
        self.size = size
        self.generation = 0
        # Forward search state.
        self.dist: list[float] = [0.0] * size
        self.parent: list[int] = [-1] * size
        self.stamp: list[int] = [0] * size
        self.closed: list[int] = [0] * size
        # Backward search state (bidirectional kernel).
        self.dist_b: list[float] = [0.0] * size
        self.parent_b: list[int] = [-1] * size
        self.stamp_b: list[int] = [0] * size
        self.closed_b: list[int] = [0] * size
        # Heuristic cache (A* kernel).
        self.hval: list[float] = [0.0] * size
        self.hstamp: list[int] = [0] * size

    def begin(self) -> int:
        """Start a new search and return its generation stamp."""
        self.generation += 1
        return self.generation
