"""The compiled (CSR) view of a :class:`~repro.network.road_network.RoadNetwork`.

A :class:`CompiledGraph` flattens the dict-of-dicts adjacency into the classic
array layout used by every serious routing engine:

* vertex ids are mapped to dense integer indices (in sorted-id order, so heap
  tie-breaking stays order-isomorphic with the dict-based kernels);
* the forward adjacency becomes CSR ``offsets`` / ``targets`` arrays whose
  slots preserve adjacency insertion order;
* each travel-cost feature becomes one flat numpy array in CSR slot order,
  with a linear-combination view for preference weight vectors;
* a reverse CSR (predecessor) layout indexes back into the forward slots so
  any forward cost array doubles as a backward one.

The object is immutable: :meth:`RoadNetwork.compiled` builds it lazily and
drops it whenever the network mutates.  Search scratch state lives in
per-thread :class:`~repro.network.compiled.workspace.SearchWorkspace` objects
obtained from :meth:`workspace`, so concurrent queries (the service layer fans
``route_many`` out over a thread pool) never share ``dist`` / ``parent``
arrays.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Iterator

import numpy as np

from .workspace import SearchWorkspace

if TYPE_CHECKING:  # pragma: no cover
    from ..road_network import Edge, RoadNetwork, VertexId

#: Edge attributes compiled into flat cost arrays (the paper's wDI/wTT/wFC).
EDGE_COST_ATTRIBUTES: tuple[str, ...] = ("distance_m", "travel_time_s", "fuel_ml")


#: Cap on memoized derived artifacts (cost arrays, masks, sparse matrices).
#: Bounds memory on long-lived services where e.g. per-driver cost profiles
#: would otherwise accrete one flat array each; evicted entries just rebuild.
DEFAULT_MEMO_SIZE = 128


class CompiledGraph:
    """An immutable CSR snapshot of a road network plus cost arrays."""

    def __init__(self, network: "RoadNetwork", memo_size: int = DEFAULT_MEMO_SIZE) -> None:
        ids: list["VertexId"] = sorted(network.vertex_ids())
        index_of: dict["VertexId", int] = {vid: i for i, vid in enumerate(ids)}
        n = len(ids)

        offsets: list[int] = [0] * (n + 1)
        targets: list[int] = []
        edges: list["Edge"] = []
        slot_of: dict[tuple["VertexId", "VertexId"], int] = {}
        for i, vid in enumerate(ids):
            for tid, edge in network.successors(vid).items():
                slot_of[(vid, tid)] = len(targets)
                targets.append(index_of[tid])
                edges.append(edge)
            offsets[i + 1] = len(targets)

        r_offsets: list[int] = [0] * (n + 1)
        r_targets: list[int] = []
        r_slots: list[int] = []
        for i, vid in enumerate(ids):
            for sid, edge in network.predecessors(vid).items():
                r_targets.append(index_of[sid])
                r_slots.append(slot_of[(sid, vid)])
            r_offsets[i + 1] = len(r_targets)

        m = len(edges)
        arrays: dict[str, np.ndarray] = {}
        for attr in EDGE_COST_ATTRIBUTES:
            arr = np.fromiter(
                (getattr(edge, attr) for edge in edges), dtype=np.float64, count=m
            )
            arr.flags.writeable = False
            arrays[attr] = arr
        road_type_values = np.fromiter(
            (int(edge.road_type) for edge in edges), dtype=np.int64, count=m
        )
        road_type_values.flags.writeable = False

        self.vertex_ids: list["VertexId"] = ids
        self.index_of = index_of
        self.offsets = offsets
        self.targets = targets
        self.edges = edges
        self.r_offsets = r_offsets
        self.r_targets = r_targets
        self.road_type_values = road_type_values
        self._slot_of = slot_of
        self._r_slots = np.asarray(r_slots, dtype=np.int64)
        self._arrays = arrays
        self._weight_lists: OrderedDict[Hashable, list[float]] = OrderedDict()
        self._r_weight_lists: OrderedDict[Hashable, list[float]] = OrderedDict()
        self._memo: OrderedDict[Hashable, object] = OrderedDict()
        self._memo_size = max(8, int(memo_size))
        self._memo_lock = threading.Lock()
        self._tls = threading.local()

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #
    @property
    def vertex_count(self) -> int:
        return len(self.vertex_ids)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def slot(self, source: "VertexId", target: "VertexId") -> int | None:
        """CSR slot of the directed edge ``(source, target)`` or ``None``."""
        return self._slot_of.get((source, target))

    # ------------------------------------------------------------------ #
    # Cost arrays
    # ------------------------------------------------------------------ #
    def array(self, attribute: str) -> np.ndarray:
        """The read-only cost array for one compiled edge attribute."""
        return self._arrays[attribute]

    def _cached(self, cache: OrderedDict, key: Hashable, build: Callable[[], object]) -> object:
        """LRU get-or-build shared by every per-snapshot cache."""
        with self._memo_lock:
            if key in cache:
                cache.move_to_end(key)
                return cache[key]
        built = build()
        with self._memo_lock:
            cached = cache.setdefault(key, built)
            cache.move_to_end(key)
            while len(cache) > self._memo_size:
                cache.popitem(last=False)
        return cached

    def linear_array(self, terms: tuple[tuple[str, float], ...]) -> np.ndarray:
        """A (memoized) linear combination of cost arrays.

        ``terms`` is an ordered tuple of ``(attribute, weight)`` pairs;
        accumulation follows that order so the floats match the dict-based
        ``weighted_cost`` closure bit for bit.
        """

        def build():
            acc = np.zeros(self.edge_count, dtype=np.float64)
            for attribute, weight in terms:
                acc += self._arrays[attribute] * weight
            acc.flags.writeable = False
            return acc

        return self._cached(self._memo, ("linear", terms), build)  # type: ignore[return-value]

    def resolve_cost(self, edge_cost: Callable) -> tuple[Hashable | None, np.ndarray] | None:
        """Map an edge-cost callable to a flat cost array, if possible.

        Recognized callables carry one of three attributes (see
        :mod:`repro.routing.costs`): ``cost_attr`` (a single compiled
        attribute), ``cost_terms`` (an ordered linear combination), or
        ``build_cost_array`` (a factory receiving this graph).  Returns
        ``(cache_key, array)`` — the key is ``None`` for uncacheable
        per-query arrays — or ``None`` when the callable is opaque and the
        caller must fall back to the dict-based implementation.
        """
        attr = getattr(edge_cost, "cost_attr", None)
        if attr is not None:
            return ("attr", attr), self._arrays[attr]
        terms = getattr(edge_cost, "cost_terms", None)
        if terms is not None:
            terms = tuple(terms)
            return ("linear", terms), self.linear_array(terms)
        builder = getattr(edge_cost, "build_cost_array", None)
        if builder is not None:
            built = builder(self)
            if built is None:
                return None
            # Builders whose array is constant per graph snapshot may expose
            # a ``cost_cache_key`` so weight lists / sparse matrices derived
            # from the array are memoized too; per-query arrays leave it off.
            key = getattr(edge_cost, "cost_cache_key", None)
            if key is not None:
                key = ("built", key)
            return key, np.asarray(built, dtype=np.float64)
        return None

    def forward_weights(self, key: Hashable | None, array: np.ndarray) -> list[float]:
        """The cost array as a plain list in forward CSR slot order."""
        if key is None:
            return array.tolist()
        return self._cached(self._weight_lists, key, array.tolist)  # type: ignore[return-value]

    def reverse_weights(self, key: Hashable | None, array: np.ndarray) -> list[float]:
        """The cost array permuted into reverse (predecessor) slot order."""

        def build():
            return array[self._r_slots].tolist() if len(array) else []

        if key is None:
            return build()
        return self._cached(self._r_weight_lists, key, build)  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Derived-artifact cache and scratch state
    # ------------------------------------------------------------------ #
    def memo(self, key: Hashable, build: Callable[[], object]) -> object:
        """Cache an arbitrary derived artifact on this graph snapshot.

        Used for slave-preference edge masks, baseline cost arrays, and
        similar per-graph precomputations.  The cache is LRU-bounded
        (``memo_size`` entries — evicted artifacts simply rebuild) and dies
        with the snapshot, so network mutation invalidates everything at
        once.
        """
        return self._cached(self._memo, key, build)

    @contextmanager
    def borrowed_workspace(self) -> Iterator[SearchWorkspace]:
        """Check a preallocated workspace out of the calling thread's pool.

        Nested compiled searches (e.g. a heuristic or cost callback that
        routes on the same network) each borrow their own workspace, so an
        inner search can never corrupt the generation stamps of an outer one.
        The pool grows to the maximum nesting depth ever seen per thread.
        """
        pool = getattr(self._tls, "pool", None)
        if pool is None:
            pool = self._tls.pool = []
        ws = pool.pop() if pool else SearchWorkspace(self.vertex_count)
        try:
            yield ws
        finally:
            pool.append(ws)

    def workspace(self) -> SearchWorkspace:
        """A dedicated workspace sized to this graph.

        For callers that hold search state across their own call boundaries
        (e.g. contraction-hierarchy construction).  Kernel dispatch uses
        :meth:`borrowed_workspace`, whose pooled instances must never be
        retained outside the ``with`` block.
        """
        return SearchWorkspace(self.vertex_count)

    def path_ids(self, indices: Iterable[int]) -> list["VertexId"]:
        """Translate an index path back into original vertex ids."""
        ids = self.vertex_ids
        return [ids[i] for i in indices]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledGraph(vertices={self.vertex_count}, edges={self.edge_count})"
