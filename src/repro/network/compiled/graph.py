"""The compiled (CSR) view of a :class:`~repro.network.road_network.RoadNetwork`.

A :class:`CompiledGraph` flattens the dict-of-dicts adjacency into the classic
array layout used by every serious routing engine.  It is composed of two
parts with very different lifetimes:

* a :class:`Topology` — the immutable CSR structure: vertex ids mapped to
  dense integer indices (in sorted-id order, so heap tie-breaking stays
  order-isomorphic with the dict-based kernels), forward ``offsets`` /
  ``targets`` arrays whose slots preserve adjacency insertion order, a reverse
  (predecessor) CSR whose slots index back into the forward slots, and the
  ``(source, target) -> slot`` lookup.  The topology never changes for the
  lifetime of the snapshot; any structural mutation of the network drops the
  whole :class:`CompiledGraph`.

* a :class:`CostStore` — the monotonically-versioned cost state: one flat
  numpy array per travel-cost feature, the linear-combination views derived
  from them, the forward / reverse weight-list caches, and the generic
  ``memo()`` artifact cache.  Live-traffic updates patch the store through
  :meth:`CompiledGraph.apply_cost_updates` *without* recompiling the
  topology: touched arrays are swapped for patched copies (readers holding
  the old array keep a consistent pre-update view), the cost version is
  bumped, and every memoized artifact that was stamped with the old version
  self-evicts on its next lookup.

Search scratch state lives in per-thread
:class:`~repro.network.compiled.workspace.SearchWorkspace` objects obtained
from :meth:`workspace`, so concurrent queries (the service layer fans
``route_many`` out over a thread pool) never share ``dist`` / ``parent``
arrays.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Iterator, Mapping

import numpy as np

from .workspace import SearchWorkspace

if TYPE_CHECKING:  # pragma: no cover
    from ..road_network import Edge, RoadNetwork, VertexId

#: Edge attributes compiled into flat cost arrays (the paper's wDI/wTT/wFC).
#: These are also exactly the attributes that
#: :meth:`~repro.network.road_network.RoadNetwork.update_edge_costs` may patch
#: on a live network.
EDGE_COST_ATTRIBUTES: tuple[str, ...] = ("distance_m", "travel_time_s", "fuel_ml")


#: Cap on memoized derived artifacts (cost arrays, masks, sparse matrices).
#: Bounds memory on long-lived services where e.g. per-driver cost profiles
#: would otherwise accrete one flat array each; evicted entries just rebuild.
DEFAULT_MEMO_SIZE = 128

#: Version stamp for artifacts that only depend on the immutable topology.
TOPOLOGY_STAMP = -1


class Topology:
    """The immutable CSR structure of one road-network snapshot.

    Holds everything that cost updates can never change: the dense index
    maps, the forward and reverse CSR layout, and the slot lookup.  Shared
    by reference between the :class:`CompiledGraph` facade and the
    :class:`CostStore`.
    """

    __slots__ = (
        "vertex_ids",
        "index_of",
        "offsets",
        "targets",
        "slot_of",
        "r_offsets",
        "r_targets",
        "r_slots",
    )

    def __init__(self, network: "RoadNetwork") -> None:
        ids: list["VertexId"] = sorted(network.vertex_ids())
        index_of: dict["VertexId", int] = {vid: i for i, vid in enumerate(ids)}
        n = len(ids)

        offsets: list[int] = [0] * (n + 1)
        targets: list[int] = []
        slot_of: dict[tuple["VertexId", "VertexId"], int] = {}
        for i, vid in enumerate(ids):
            for tid in network.successors(vid):
                slot_of[(vid, tid)] = len(targets)
                targets.append(index_of[tid])
            offsets[i + 1] = len(targets)

        r_offsets: list[int] = [0] * (n + 1)
        r_targets: list[int] = []
        r_slots: list[int] = []
        for i, vid in enumerate(ids):
            for sid in network.predecessors(vid):
                r_targets.append(index_of[sid])
                r_slots.append(slot_of[(sid, vid)])
            r_offsets[i + 1] = len(r_targets)

        self.vertex_ids = ids
        self.index_of = index_of
        self.offsets = offsets
        self.targets = targets
        self.slot_of = slot_of
        self.r_offsets = r_offsets
        self.r_targets = r_targets
        self.r_slots = np.asarray(r_slots, dtype=np.int64)

    @property
    def vertex_count(self) -> int:
        return len(self.vertex_ids)

    @property
    def edge_count(self) -> int:
        return len(self.targets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology(vertices={self.vertex_count}, edges={self.edge_count})"


class CostStore:
    """Versioned per-feature cost arrays plus every cost-derived cache.

    The store is the single mutable part of a compiled snapshot.  All reads
    go through version-stamped caches: an artifact built under cost version
    ``k`` is served only while the store is still at version ``k`` — a
    live-traffic patch bumps the version, and stale entries are dropped on
    their next lookup (and by LRU pressure otherwise).  Artifacts that only
    depend on the topology (CSR index arrays, road-type masks) are stamped
    with :data:`TOPOLOGY_STAMP` and survive cost updates.
    """

    def __init__(
        self,
        topology: Topology,
        edges: list["Edge"],
        memo_size: int = DEFAULT_MEMO_SIZE,
    ) -> None:
        self.topology = topology
        self.edges = edges
        m = len(edges)
        arrays: dict[str, np.ndarray] = {}
        for attr in EDGE_COST_ATTRIBUTES:
            arr = np.fromiter(
                (getattr(edge, attr) for edge in edges), dtype=np.float64, count=m
            )
            arr.flags.writeable = False
            arrays[attr] = arr
        road_type_values = np.fromiter(
            (int(edge.road_type) for edge in edges), dtype=np.int64, count=m
        )
        road_type_values.flags.writeable = False

        self.road_type_values = road_type_values
        self._arrays = arrays
        self._version = 0
        self._weight_lists: OrderedDict[Hashable, tuple[int, list[float]]] = OrderedDict()
        self._r_weight_lists: OrderedDict[Hashable, tuple[int, list[float]]] = OrderedDict()
        self._memo: OrderedDict[Hashable, tuple[int, object]] = OrderedDict()
        self._memo_size = max(8, int(memo_size))
        self._memo_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Versioned state
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Monotonic cost version; bumped by every :meth:`apply_updates`."""
        return self._version

    def array(self, attribute: str) -> np.ndarray:
        """The read-only cost array for one compiled edge attribute."""
        return self._arrays[attribute]

    def apply_updates(
        self,
        changes: Mapping[int, Mapping[str, float]],
        new_edges: Mapping[int, "Edge"],
    ) -> None:
        """Patch cost values in place of a full recompilation.

        ``changes`` maps CSR slots to ``{attribute: new value}``; ``new_edges``
        carries the replacement :class:`Edge` objects for the same slots (the
        kernels hand edges to ``edge_filter`` callbacks, which must observe
        the updated costs).  Touched arrays *and* the edge list are swapped
        for patched copies, never mutated: a search that already resolved an
        array (or captured the edge list) keeps one consistent pre-update
        view; the version bump evicts every stamped derived artifact lazily.
        """
        if not changes:
            return
        with self._memo_lock:
            patched: dict[str, np.ndarray] = {}
            for slot, values in changes.items():
                for attr, value in values.items():
                    arr = patched.get(attr)
                    if arr is None:
                        arr = patched[attr] = self._arrays[attr].copy()
                    arr[slot] = value
            for attr, arr in patched.items():
                arr.flags.writeable = False
                self._arrays[attr] = arr
            if new_edges:
                edges = self.edges.copy()
                for slot, edge in new_edges.items():
                    edges[slot] = edge
                self.edges = edges
            self._version += 1

    def export_arrays(self) -> dict[str, np.ndarray]:
        """A consistent ``{attribute: array}`` snapshot of every cost array.

        The returned arrays are the store's own immutable (read-only) arrays
        captured under the memo lock, so a concurrent :meth:`apply_updates`
        can never hand back a half-patched batch — the durability layer's
        :class:`~repro.service.durability.snapshot.SnapshotStore` persists
        exactly this view together with :attr:`version`.
        """
        with self._memo_lock:
            return dict(self._arrays)

    def restore(
        self,
        arrays: Mapping[str, np.ndarray],
        new_edges: Mapping[int, "Edge"],
        version: int,
    ) -> None:
        """Adopt a persisted cost state wholesale (crash recovery).

        ``arrays`` carries one full-length array per compiled cost attribute
        (they are copied and frozen); ``new_edges`` the replacement
        :class:`Edge` objects for every slot whose costs differ from the
        current ones; ``version`` the cost version the arrays were captured
        under.  Unlike :meth:`apply_updates` the version is *set*, not
        bumped — recovery must land on exactly the version the snapshot was
        taken at — and every derived cache is cleared outright: entries
        stamped under the pre-restore counter could otherwise alias the
        restored version when recovery rewinds it.
        """
        if int(version) < 0:
            raise ValueError(f"cost version must be >= 0, got {version!r}")
        with self._memo_lock:
            for attr in EDGE_COST_ATTRIBUTES:
                source = np.asarray(arrays[attr], dtype=np.float64)
                if source.shape != (len(self.edges),):
                    raise ValueError(
                        f"restored array for {attr!r} has shape {source.shape}; "
                        f"this topology compiles {len(self.edges)} edges"
                    )
                adopted = source.copy()
                adopted.flags.writeable = False
                self._arrays[attr] = adopted
            if new_edges:
                edges = self.edges.copy()
                for slot, edge in new_edges.items():
                    edges[slot] = edge
                self.edges = edges
            self._version = int(version)
            self._weight_lists.clear()
            self._r_weight_lists.clear()
            self._memo.clear()

    # ------------------------------------------------------------------ #
    # Version-stamped caches
    # ------------------------------------------------------------------ #
    def _stamp(self, cost_dependent: bool, version: int | None) -> int:
        if not cost_dependent:
            return TOPOLOGY_STAMP
        return self._version if version is None else version

    def _cached(
        self,
        cache: OrderedDict,
        key: Hashable,
        build: Callable[[], object],
        stamp: int,
    ) -> object:
        """Stamped LRU get-or-build shared by every per-snapshot cache.

        Entries are stored as ``(stamp, value)``.  ``stamp`` is the cost
        version the *caller's inputs* were resolved under (callers that read
        the store's own arrays at build time pass the current version) —
        never newer, or a patch racing the build could cache pre-update data
        as current.  Topology-only entries carry :data:`TOPOLOGY_STAMP` and
        never expire.  An entry older than the store's current version is
        stale for everyone and self-evicts; a caller whose inputs predate the
        current version is served uncached rather than poisoning the cache.
        """
        with self._memo_lock:
            entry = cache.get(key)
            if entry is not None:
                if entry[0] == stamp:
                    cache.move_to_end(key)
                    return entry[1]
                if entry[0] != TOPOLOGY_STAMP and entry[0] < self._version:
                    del cache[key]  # stale for every future caller
        built = build()
        with self._memo_lock:
            entry = cache.get(key)
            if entry is not None and entry[0] == stamp:
                cache.move_to_end(key)
                return entry[1]
            if stamp == TOPOLOGY_STAMP or stamp == self._version:
                cache[key] = (stamp, built)
                cache.move_to_end(key)
                while len(cache) > self._memo_size:
                    cache.popitem(last=False)
        return built

    def linear_array(self, terms: tuple[tuple[str, float], ...]) -> np.ndarray:
        """A (memoized) linear combination of cost arrays.

        ``terms`` is an ordered tuple of ``(attribute, weight)`` pairs;
        accumulation follows that order so the floats match the dict-based
        ``weighted_cost`` closure bit for bit.
        """

        def build():
            acc = np.zeros(len(self.edges), dtype=np.float64)
            for attribute, weight in terms:
                acc += self._arrays[attribute] * weight
            acc.flags.writeable = False
            return acc

        # Builds from the store's current arrays, so the current version is
        # the right stamp (a racing patch only makes the data newer).
        return self._cached(self._memo, ("linear", terms), build, self._version)  # type: ignore[return-value]

    def forward_weights(
        self, key: Hashable | None, array: np.ndarray, version: int | None = None
    ) -> list[float]:
        """The cost array as a plain list in forward CSR slot order.

        ``version`` is the cost version ``array`` was resolved under (see
        :meth:`CompiledGraph.resolve_cost`); omitting it assumes the array is
        current, which is only safe when no patch can be racing the caller.
        """
        if key is None:
            return array.tolist()
        stamp = self._stamp(True, version)
        return self._cached(self._weight_lists, key, array.tolist, stamp)  # type: ignore[return-value]

    def reverse_weights(
        self, key: Hashable | None, array: np.ndarray, version: int | None = None
    ) -> list[float]:
        """The cost array permuted into reverse (predecessor) slot order."""

        def build():
            return array[self.topology.r_slots].tolist() if len(array) else []

        if key is None:
            return build()
        stamp = self._stamp(True, version)
        return self._cached(self._r_weight_lists, key, build, stamp)  # type: ignore[return-value]

    def memo(
        self,
        key: Hashable,
        build: Callable[[], object],
        cost_dependent: bool = True,
        version: int | None = None,
    ) -> object:
        """Cache an arbitrary derived artifact on this snapshot's cost state.

        ``version`` stamps the entry with the cost version the caller's
        inputs were resolved under; leave it ``None`` when ``build`` reads
        the store's own arrays (the current version is then correct).
        """
        return self._cached(self._memo, key, build, self._stamp(cost_dependent, version))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostStore(edges={len(self.edges)}, version={self._version})"


class CompiledGraph:
    """A CSR snapshot of a road network: immutable topology + versioned costs.

    The facade exposes the flat arrays the kernels consume (``offsets`` /
    ``targets`` / ``edges`` / per-feature cost arrays) and delegates all
    cost-derived caching to its :class:`CostStore`.  The topology of a
    snapshot never changes; its costs may be patched through
    :meth:`apply_cost_updates` (driven by
    :meth:`~repro.network.road_network.RoadNetwork.update_edge_costs`), which
    bumps :attr:`cost_version` instead of forcing a rebuild.
    """

    def __init__(self, network: "RoadNetwork", memo_size: int = DEFAULT_MEMO_SIZE) -> None:
        topology = Topology(network)
        edges: list["Edge"] = [None] * topology.edge_count  # type: ignore[list-item]
        for (source, target), slot in topology.slot_of.items():
            edges[slot] = network.edge(source, target)
        costs = CostStore(topology, edges, memo_size=memo_size)

        self.topology = topology
        self.costs = costs
        # Kernel-facing aliases: plain attributes, not properties, so the
        # per-query lookups in the dispatch layer stay cheap.
        self.vertex_ids = topology.vertex_ids
        self.index_of = topology.index_of
        self.offsets = topology.offsets
        self.targets = topology.targets
        self.r_offsets = topology.r_offsets
        self.r_targets = topology.r_targets
        self._tls = threading.local()
        # ALT landmark tables, keyed by cost cache key.  Deliberately *not*
        # in the version-stamped memo: a cost-version bump must revalidate
        # (rescale) a table rather than evict it — rebuilding costs 2k SSSPs.
        self._landmark_tables: dict[Hashable, object] = {}
        self._landmark_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #
    @property
    def vertex_count(self) -> int:
        return len(self.vertex_ids)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    @property
    def cost_version(self) -> int:
        """The cost store's monotonic version (0 until the first patch)."""
        return self.costs.version

    @property
    def edges(self) -> list["Edge"]:
        """The edge objects in CSR slot order.

        Cost patches swap the whole list, so capturing ``graph.edges`` once
        gives a consistent snapshot — e.g. an ``edge_filter`` kernel run or a
        ``zip(graph.edges, weights)`` never observes a half-applied batch.
        """
        return self.costs.edges

    @property
    def road_type_values(self) -> np.ndarray:
        return self.costs.road_type_values

    def slot(self, source: "VertexId", target: "VertexId") -> int | None:
        """CSR slot of the directed edge ``(source, target)`` or ``None``."""
        return self.topology.slot_of.get((source, target))

    # ------------------------------------------------------------------ #
    # Cost arrays (delegated to the versioned store)
    # ------------------------------------------------------------------ #
    def array(self, attribute: str) -> np.ndarray:
        """The read-only cost array for one compiled edge attribute."""
        return self.costs.array(attribute)

    def linear_array(self, terms: tuple[tuple[str, float], ...]) -> np.ndarray:
        return self.costs.linear_array(terms)

    def resolve_cost(
        self, edge_cost: Callable
    ) -> tuple[Hashable | None, np.ndarray, int] | None:
        """Map an edge-cost callable to a flat cost array, if possible.

        Recognized callables carry one of three attributes (see
        :mod:`repro.routing.costs`): ``cost_attr`` (a single compiled
        attribute), ``cost_terms`` (an ordered linear combination), or
        ``build_cost_array`` (a factory receiving this graph).  Returns
        ``(cache_key, array, version)`` — the key is ``None`` for uncacheable
        per-query arrays, and ``version`` is the cost version the array was
        resolved under (captured *before* reading, so a concurrent patch can
        only make the array newer than the stamp, never older — callers pass
        it back to :meth:`forward_weights` / :meth:`reverse_weights` so
        derived caches are never poisoned with pre-update data stamped as
        current).  Returns ``None`` when the callable is opaque and the
        caller must fall back to the dict-based implementation.
        """
        version = self.costs.version
        attr = getattr(edge_cost, "cost_attr", None)
        if attr is not None:
            return ("attr", attr), self.costs.array(attr), version
        terms = getattr(edge_cost, "cost_terms", None)
        if terms is not None:
            terms = tuple(terms)
            return ("linear", terms), self.costs.linear_array(terms), version
        builder = getattr(edge_cost, "build_cost_array", None)
        if builder is not None:
            built = builder(self)
            if built is None:
                return None
            # Builders whose array is constant per cost version may expose
            # a ``cost_cache_key`` so weight lists / sparse matrices derived
            # from the array are memoized too; per-query arrays leave it off.
            key = getattr(edge_cost, "cost_cache_key", None)
            if key is not None:
                key = ("built", key)
            return key, np.asarray(built, dtype=np.float64), version
        return None

    def forward_weights(
        self, key: Hashable | None, array: np.ndarray, version: int | None = None
    ) -> list[float]:
        """The cost array as a plain list in forward CSR slot order."""
        return self.costs.forward_weights(key, array, version)

    def reverse_weights(
        self, key: Hashable | None, array: np.ndarray, version: int | None = None
    ) -> list[float]:
        """The cost array permuted into reverse (predecessor) slot order."""
        return self.costs.reverse_weights(key, array, version)

    # ------------------------------------------------------------------ #
    # Live-traffic patching
    # ------------------------------------------------------------------ #
    def apply_cost_updates(
        self,
        changes: Mapping[int, Mapping[str, float]],
        new_edges: Mapping[int, "Edge"],
    ) -> int:
        """Patch cost values by CSR slot; returns the new cost version.

        Called by :meth:`RoadNetwork.update_edge_costs` under the network's
        compiled-view lock; see :meth:`CostStore.apply_updates` for the
        cache-eviction semantics.
        """
        self.costs.apply_updates(changes, new_edges)
        return self.costs.version

    # ------------------------------------------------------------------ #
    # Derived-artifact cache and scratch state
    # ------------------------------------------------------------------ #
    def memo(
        self,
        key: Hashable,
        build: Callable[[], object],
        cost_dependent: bool = True,
        version: int | None = None,
    ) -> object:
        """Cache an arbitrary derived artifact on this graph snapshot.

        Used for slave-preference edge masks, baseline cost arrays, and
        similar per-graph precomputations.  The cache is LRU-bounded
        (``memo_size`` entries — evicted artifacts simply rebuild).  Entries
        are stamped with the cost version by default, so live-traffic patches
        invalidate them; pass ``cost_dependent=False`` for artifacts that
        only depend on the immutable topology (index arrays, road-type
        masks), which then survive cost updates, and ``version`` when the
        build's inputs were resolved under an earlier cost version (see
        :meth:`resolve_cost`).
        """
        return self.costs.memo(key, build, cost_dependent=cost_dependent, version=version)

    # ------------------------------------------------------------------ #
    # ALT landmark tables
    # ------------------------------------------------------------------ #
    def landmark_table(
        self,
        key: Hashable | None,
        array: np.ndarray,
        version: int | None,
        count: int | None = None,
        strategy: str | None = None,
    ):
        """The (lazily built) ALT landmark table for one cacheable cost view.

        ``key`` / ``array`` / ``version`` are a :meth:`resolve_cost` result;
        per-query arrays (``key is None``) get no table.  The table is
        revalidated against ``array`` whenever the cost version moved since
        it was last served: bounds are rescaled while that keeps them
        admissible and worth serving, rebuilt otherwise (see
        :mod:`~repro.network.compiled.landmarks`).  ``count`` / ``strategy``
        force a rebuild when they differ from the cached table's
        configuration (used by ``RoadNetwork.prepare_landmarks``); left at
        ``None`` they accept whatever is cached.
        """
        if key is None:
            return None
        from .landmarks import build_landmark_table

        current_version = version if version is not None else self.costs.version
        rebuild_count = count
        rebuild_strategy = strategy
        with self._landmark_lock:
            table = self._landmark_tables.get(key)
            if table is not None:
                # Compare against what was *requested*, not what selection
                # yielded: a fragmented graph may cap the landmark count, and
                # re-requesting the same number must not rebuild forever.
                if (
                    count is not None
                    and table.requested_count != min(count, self.vertex_count)
                ) or (strategy is not None and table.strategy != strategy):
                    table = None
                else:
                    # A degraded table rebuilds with *its own* configuration:
                    # an operator-tuned count/strategy survives self-eviction.
                    rebuild_count = count if count is not None else table.requested_count
                    rebuild_strategy = strategy if strategy is not None else table.strategy
                    revalidated = table.revalidated(array, current_version)
                    if revalidated is not None and revalidated is not table:
                        self._landmark_tables[key] = revalidated
                    table = revalidated
            if table is not None:
                return table
        # Build outside the lock: ~2k SSSPs must not stall concurrent ALT
        # queries on other (already built) cost views.  Racing builders at
        # worst duplicate the work; the insert below is last-writer-wins and
        # either result is admissible for its caller's resolved arrays.
        table = build_landmark_table(
            self, key, array, version, count=rebuild_count, strategy=rebuild_strategy
        )
        if table is None:
            return None
        with self._landmark_lock:
            self._landmark_tables[key] = table
        return table

    @contextmanager
    def borrowed_workspace(self) -> Iterator[SearchWorkspace]:
        """Check a preallocated workspace out of the calling thread's pool.

        Nested compiled searches (e.g. a heuristic or cost callback that
        routes on the same network) each borrow their own workspace, so an
        inner search can never corrupt the generation stamps of an outer one.
        The pool grows to the maximum nesting depth ever seen per thread.
        """
        pool = getattr(self._tls, "pool", None)
        if pool is None:
            pool = self._tls.pool = []
        ws = pool.pop() if pool else SearchWorkspace(self.vertex_count)
        try:
            yield ws
        finally:
            pool.append(ws)

    def workspace(self) -> SearchWorkspace:
        """A dedicated workspace sized to this graph.

        For callers that hold search state across their own call boundaries
        (e.g. contraction-hierarchy construction).  Kernel dispatch uses
        :meth:`borrowed_workspace`, whose pooled instances must never be
        retained outside the ``with`` block.
        """
        return SearchWorkspace(self.vertex_count)

    def path_ids(self, indices: Iterable[int]) -> list["VertexId"]:
        """Translate an index path back into original vertex ids."""
        ids = self.vertex_ids
        return [ids[i] for i in indices]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledGraph(vertices={self.vertex_count}, edges={self.edge_count}, "
            f"cost_version={self.cost_version})"
        )
