"""Shared-memory export of a compiled road-network snapshot.

The :class:`~repro.network.compiled.graph.Topology` / ``CostStore`` split
makes the CSR arrays of a snapshot trivially shareable across processes: the
topology buffers are immutable for the snapshot's lifetime, and the
per-feature cost arrays are patched copy-on-write by live traffic, so a
worker process can serve queries from *views* over one shared segment
instead of its own copies.

One :func:`export_graph` call packs everything into a single
:class:`multiprocessing.shared_memory.SharedMemory` segment::

    [ header int64[8] | array 0 | array 1 | ... ]     (16-byte aligned)

with the topology buffers (``offsets`` / ``targets`` / reverse CSR /
``r_slots`` / ``vertex_ids`` / per-slot ``edge_keys``), the per-feature cost
arrays, and ``road_type_values`` packed back to back.  The header block
carries the magic, the layout version, the shape counters, and — the one
*mutable* slot — the network cost version the cost arrays currently
reflect, so attached workers can detect staleness and resync without any
side channel.

Lifecycle etiquette (enforced by reprolint RL009):

* the **owner** creates the segment and is the only party that ever calls
  :meth:`SharedGraphSegment.unlink`; creation is paired with
  ``close()``/``unlink()`` cleanup on every failure path;
* **workers** attach by name through :func:`attach` and only ever
  :meth:`SegmentView.close` their mapping — a worker that unlinks would
  tear the segment out from under its siblings.

Every array is forced C-contiguous with its expected dtype at export time
and verified again at attach time: a transposed or casted view would
silently corrupt the zero-copy reconstruction otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from ...exceptions import NetworkError
from .graph import EDGE_COST_ATTRIBUTES

if TYPE_CHECKING:  # pragma: no cover
    from ..road_network import RoadNetwork, VertexId
    from .graph import CompiledGraph

#: ``b"RPRO"`` as one little-endian int64: guards against attaching a
#: foreign (or torn) segment as a compiled-graph export.
MAGIC = 0x4F525052

#: Bumped whenever the packed layout changes incompatibly.
LAYOUT_VERSION = 1

_HEADER_SLOTS = 8
HEADER_BYTES = _HEADER_SLOTS * 8
_ALIGN = 16

_SLOT_MAGIC = 0
_SLOT_LAYOUT = 1
_SLOT_VERTICES = 2
_SLOT_EDGES = 3
_SLOT_COST_VERSION = 4
_SLOT_PAYLOAD = 5

#: Expected dtype (as a canonical string) per exported array name.
_TOPOLOGY_DTYPES: dict[str, str] = {
    "offsets": "int64",
    "targets": "int64",
    "r_offsets": "int64",
    "r_targets": "int64",
    "r_slots": "int64",
    "vertex_ids": "int64",
    "edge_keys": "int64",
    "road_type_values": "int64",
}


def _cost_name(attribute: str) -> str:
    return f"cost:{attribute}"


def expected_dtype(name: str) -> np.dtype:
    """The pinned dtype for one exported array name."""
    if name.startswith("cost:"):
        return np.dtype(np.float64)
    try:
        return np.dtype(_TOPOLOGY_DTYPES[name])
    except KeyError as exc:
        raise NetworkError(f"unknown shared-segment array {name!r}") from exc


def _exportable(name: str, raw: object) -> np.ndarray:
    """Force one array into its exportable form, or refuse loudly.

    C-contiguity and the pinned dtype are *forced* (a cast or a transposed
    view is normalized into a packed copy); anything that cannot be
    represented — wrong dimensionality, lossy casts from non-numeric data —
    raises :class:`NetworkError` instead of silently corrupting the
    zero-copy reconstruction on the attach side.
    """
    dtype = expected_dtype(name)
    try:
        arr = np.ascontiguousarray(raw, dtype=dtype)
    except (TypeError, ValueError, OverflowError) as exc:
        raise NetworkError(
            f"array {name!r} cannot be exported as {dtype.name}: {exc}"
        ) from exc
    expected_ndim = 2 if name == "edge_keys" else 1
    if arr.ndim != expected_ndim:
        raise NetworkError(
            f"array {name!r} must be {expected_ndim}-dimensional for export, "
            f"got shape {arr.shape}"
        )
    if not arr.flags.c_contiguous or arr.dtype != dtype:
        raise NetworkError(
            f"array {name!r} failed export normalization "
            f"(contiguous={arr.flags.c_contiguous}, dtype={arr.dtype})"
        )
    return arr


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one packed array inside the segment (picklable)."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SegmentSpec:
    """Everything a worker needs to attach and rebuild the views.

    Shipped to worker processes over the spawn pickle; the segment itself
    is looked up by name in the operating system's shared-memory namespace.
    """

    segment_name: str
    size: int
    arrays: tuple[ArraySpec, ...]
    cost_attributes: tuple[str, ...]

    def spec_for(self, name: str) -> ArraySpec:
        for spec in self.arrays:
            if spec.name == name:
                return spec
        raise NetworkError(f"shared segment carries no array named {name!r}")


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    On Python < 3.13 an attaching process registers the segment with the
    :mod:`multiprocessing.resource_tracker`, which then unlinks the
    segment when *this* process exits — exactly the double-unlink the
    worker-side lifecycle must avoid (only the owner unlinks).  Newer
    interpreters expose ``track=False``; older ones get registration
    suppressed during the attach call.  (Register-then-unregister is not
    an option: the tracker's name cache is shared across all workers, so
    concurrent attachments race their unregister calls into KeyErrors.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    try:
        from multiprocessing import resource_tracker
    except ImportError as exc:  # pragma: no cover - stdlib drift
        # Tracked attachment would unlink the segment when this process
        # exits; refuse rather than sabotage the owner's lifecycle.
        raise NetworkError(f"cannot untrack shared-memory attachment: {exc}") from exc

    original_register = resource_tracker.register

    def _register_except_segments(target: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original_register(target, rtype)

    resource_tracker.register = _register_except_segments
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _view_from(buf: memoryview, spec: ArraySpec, *, writeable: bool) -> np.ndarray:
    arr: np.ndarray = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=buf, offset=spec.offset)
    if not writeable:
        arr.flags.writeable = False
    return arr


def _header_view(buf: memoryview) -> np.ndarray:
    return np.ndarray((_HEADER_SLOTS,), dtype=np.int64, buffer=buf)


class SegmentView:
    """A worker-side attachment: zero-copy read-only views, never unlinks.

    ``close()`` drops this process's mapping; the segment itself lives until
    the owner unlinks it.  Safe to close more than once.
    """

    def __init__(self, spec: SegmentSpec, handle: shared_memory.SharedMemory) -> None:
        self.spec = spec
        self._shm = handle
        self._header = _header_view(handle.buf)
        self._views = {
            array_spec.name: _view_from(handle.buf, array_spec, writeable=False)
            for array_spec in spec.arrays
        }
        _verify_header(self._header, spec)

    @property
    def cost_version(self) -> int:
        """The network cost version the shared cost arrays reflect."""
        return int(self._header[_SLOT_COST_VERSION])

    @property
    def vertex_count(self) -> int:
        return int(self._header[_SLOT_VERTICES])

    @property
    def edge_count(self) -> int:
        return int(self._header[_SLOT_EDGES])

    def array(self, name: str) -> np.ndarray:
        """The zero-copy read-only view of one packed array."""
        return self._views[name]

    def cost_array(self, attribute: str) -> np.ndarray:
        return self._views[_cost_name(attribute)]

    def cost_arrays(self) -> dict[str, np.ndarray]:
        return {attr: self.cost_array(attr) for attr in self.spec.cost_attributes}

    def close(self) -> None:
        """Drop this process's mapping (idempotent); never unlinks."""
        if self._shm is None:
            return
        self._views = {}
        self._header = None  # type: ignore[assignment]
        self._shm.close()
        self._shm = None  # type: ignore[assignment]

    def __enter__(self) -> "SegmentView":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SharedGraphSegment:
    """The owner handle: created by :func:`export_graph`, patched by the
    traffic path, and — on the owner alone — unlinked at shutdown."""

    def __init__(self, spec: SegmentSpec, handle: shared_memory.SharedMemory) -> None:
        self.spec = spec
        self._shm = handle
        self._header = _header_view(handle.buf)
        self._views = {
            array_spec.name: _view_from(handle.buf, array_spec, writeable=True)
            for array_spec in spec.arrays
        }
        self._unlinked = False

    @property
    def name(self) -> str:
        return self.spec.segment_name

    @property
    def cost_version(self) -> int:
        return int(self._header[_SLOT_COST_VERSION])

    def array(self, name: str) -> np.ndarray:
        return self._views[name]

    def patch(
        self, graph: "CompiledGraph", slots: Iterable[int], cost_version: int
    ) -> int:
        """Refresh the shared cost arrays for ``slots`` from ``graph``.

        Called by the owner *after* the master network applied a traffic
        batch; copies the post-update values for the touched CSR slots into
        the segment and advances the header's cost-version counter so late
        attachers (and restarted workers) resync against current state.
        Returns the number of slots written.
        """
        if self._shm is None:
            raise NetworkError("shared segment is closed")
        index = np.asarray(list(slots), dtype=np.int64)
        if index.size:
            for attr in self.spec.cost_attributes:
                source = graph.array(attr)
                self._views[_cost_name(attr)][index] = source[index]
        self._header[_SLOT_COST_VERSION] = int(cost_version)
        return int(index.size)

    def close(self) -> None:
        """Drop the owner's mapping (idempotent)."""
        if self._shm is None:
            return
        self._views = {}
        self._header = None  # type: ignore[assignment]
        self._shm.close()
        self._shm = None  # type: ignore[assignment]

    def unlink(self) -> None:
        """Remove the segment from the system namespace (idempotent).

        Owner-only: attached workers keep their mappings alive until they
        close, but no new attach can succeed afterwards.
        """
        if self._unlinked:
            return
        self._unlinked = True
        if self._shm is not None:
            self._shm.unlink()
            return
        # Already closed: reattach (untracked) just long enough to unlink.
        try:
            handle = _attach_untracked(self.spec.segment_name)
        except FileNotFoundError:
            return
        try:
            handle.unlink()
        finally:
            handle.close()

    def __enter__(self) -> "SharedGraphSegment":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
        self.unlink()


def _verify_header(header: np.ndarray, spec: SegmentSpec) -> None:
    if int(header[_SLOT_MAGIC]) != MAGIC:
        raise NetworkError(
            f"segment {spec.segment_name!r} does not carry a compiled-graph "
            f"export (bad magic {int(header[_SLOT_MAGIC]):#x})"
        )
    if int(header[_SLOT_LAYOUT]) != LAYOUT_VERSION:
        raise NetworkError(
            f"segment {spec.segment_name!r} uses layout "
            f"{int(header[_SLOT_LAYOUT])}, expected {LAYOUT_VERSION}"
        )


def _collect_arrays(graph: "CompiledGraph") -> list[tuple[str, np.ndarray]]:
    topology = graph.topology
    edge_keys = np.empty((topology.edge_count, 2), dtype=np.int64)
    try:
        for (source, target), slot in topology.slot_of.items():
            edge_keys[slot, 0] = source
            edge_keys[slot, 1] = target
        vertex_ids = _exportable("vertex_ids", topology.vertex_ids)
    except (TypeError, ValueError, OverflowError) as exc:
        raise NetworkError(
            f"only integer vertex ids can be exported to shared memory: {exc}"
        ) from exc
    pairs: list[tuple[str, np.ndarray]] = [
        ("offsets", _exportable("offsets", topology.offsets)),
        ("targets", _exportable("targets", topology.targets)),
        ("r_offsets", _exportable("r_offsets", topology.r_offsets)),
        ("r_targets", _exportable("r_targets", topology.r_targets)),
        ("r_slots", _exportable("r_slots", topology.r_slots)),
        ("vertex_ids", vertex_ids),
        ("edge_keys", _exportable("edge_keys", edge_keys)),
        ("road_type_values", _exportable("road_type_values", graph.road_type_values)),
    ]
    for attr in EDGE_COST_ATTRIBUTES:
        pairs.append((_cost_name(attr), _exportable(_cost_name(attr), graph.array(attr))))
    return pairs


def export_graph(
    graph: "CompiledGraph", *, cost_version: int = 0, name: str | None = None
) -> SharedGraphSegment:
    """Export one compiled snapshot into a fresh shared-memory segment.

    ``cost_version`` seeds the header's mutable counter (the owner's network
    cost version at export time).  The returned owner handle must be
    ``close()``-d and ``unlink()``-ed when serving ends; use it as a context
    manager for scoped lifetimes.
    """
    pairs = _collect_arrays(graph)
    offset = HEADER_BYTES
    specs: list[ArraySpec] = []
    for array_name, arr in pairs:
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        specs.append(
            ArraySpec(
                name=array_name,
                dtype=arr.dtype.name,
                shape=tuple(int(dim) for dim in arr.shape),
                offset=offset,
            )
        )
        offset += arr.nbytes
    total = max(offset, HEADER_BYTES + 8)

    shm = (
        shared_memory.SharedMemory(create=True, size=total)
        if name is None
        else shared_memory.SharedMemory(create=True, size=total, name=name)
    )
    try:
        header = _header_view(shm.buf)
        header[:] = 0
        header[_SLOT_MAGIC] = MAGIC
        header[_SLOT_LAYOUT] = LAYOUT_VERSION
        header[_SLOT_VERTICES] = graph.vertex_count
        header[_SLOT_EDGES] = graph.edge_count
        header[_SLOT_COST_VERSION] = int(cost_version)
        header[_SLOT_PAYLOAD] = total
        for spec, (_, arr) in zip(specs, pairs):
            _view_from(shm.buf, spec, writeable=True)[...] = arr
        segment_spec = SegmentSpec(
            segment_name=shm.name,
            size=total,
            arrays=tuple(specs),
            cost_attributes=EDGE_COST_ATTRIBUTES,
        )
        return SharedGraphSegment(segment_spec, shm)
    except BaseException:
        # Failed exports must not leak the segment: close our mapping and
        # unlink the half-written name before propagating.
        shm.close()
        shm.unlink()
        raise


def attach(spec: SegmentSpec) -> SegmentView:
    """Attach to an exported segment as a worker (close-only lifecycle).

    Validates the header magic/layout and every view's dtype and
    C-contiguity before handing the views out; a mismatched segment raises
    :class:`NetworkError` after closing the attachment.
    """
    handle = _attach_untracked(spec.segment_name)
    try:
        view = SegmentView(spec, handle)
        for array_spec in spec.arrays:
            arr = view.array(array_spec.name)
            if arr.dtype != expected_dtype(array_spec.name) or not arr.flags.c_contiguous:
                raise NetworkError(
                    f"attached array {array_spec.name!r} is not a contiguous "
                    f"{expected_dtype(array_spec.name).name} view"
                )
        return view
    except BaseException:
        handle.close()
        raise


def verify_topology(graph: "CompiledGraph", view: SegmentView) -> bool:
    """Whether a view's topology buffers match a locally compiled snapshot.

    Workers run this once at boot as an integrity gate: the pickled network
    they received and the segment they attached must describe the same CSR
    topology, or slot-indexed cost patches would land on the wrong edges.
    """
    topology = graph.topology
    if view.vertex_count != topology.vertex_count:
        return False
    if view.edge_count != topology.edge_count:
        return False
    return (
        np.array_equal(view.array("offsets"), np.asarray(topology.offsets, dtype=np.int64))
        and np.array_equal(view.array("targets"), np.asarray(topology.targets, dtype=np.int64))
        and np.array_equal(view.array("r_slots"), topology.r_slots)
        and np.array_equal(
            view.array("vertex_ids"), np.asarray(topology.vertex_ids, dtype=np.int64)
        )
    )


def sync_network(network: "RoadNetwork", view: SegmentView) -> frozenset[tuple["VertexId", "VertexId"]]:
    """Bring a worker's network copy up to the segment's cost state.

    Diffs the shared per-feature arrays against the locally compiled ones,
    maps changed CSR slots back to edge keys through the exported
    ``edge_keys`` table, and applies the delta through
    :meth:`~repro.network.road_network.RoadNetwork.update_edge_costs` — so
    the worker's ``Edge`` objects, compiled arrays, and version counters all
    advance through the one sanctioned patch path.  Returns the changed
    edge keys (empty when already current).
    """
    graph = network.compiled()
    if view.edge_count != graph.edge_count:
        raise NetworkError(
            f"segment describes {view.edge_count} edges but the network "
            f"compiled to {graph.edge_count}; topology drift cannot be synced"
        )
    edge_keys = view.array("edge_keys")
    changes: dict[tuple["VertexId", "VertexId"], dict[str, float]] = {}
    for attr in view.spec.cost_attributes:
        mine = graph.array(attr)
        theirs = view.cost_array(attr)
        for slot in np.flatnonzero(mine != theirs).tolist():
            key = (int(edge_keys[slot, 0]), int(edge_keys[slot, 1]))
            changes.setdefault(key, {})[attr] = float(theirs[slot])
    if not changes:
        return frozenset()
    return network.update_edge_costs(changes)


def adopt_shared_costs(graph: "CompiledGraph", view: SegmentView) -> bool:
    """Swap a snapshot's private cost arrays for the segment's views.

    Zero-copy boot path for workers: after :func:`sync_network` the local
    arrays and the shared ones are value-identical, so the store can serve
    the shared read-only views directly and drop its private copies (one
    set of cost arrays per *machine*, not per worker).  Later live-traffic
    patches copy-on-write away from the views through the store's normal
    ``apply_updates``, so workers never write the segment.  Returns
    ``False`` — leaving the store untouched — when any array disagrees.
    """
    store = graph.costs
    shared = {attr: view.cost_array(attr) for attr in view.spec.cost_attributes}
    with store._memo_lock:
        for attr, arr in shared.items():
            if not np.array_equal(store._arrays[attr], arr):
                return False
        for attr, arr in shared.items():
            store._arrays[attr] = arr
    return True
