"""Batched multi-source SSSP over the compiled CSR arrays.

``dijkstra_many`` answers *k* independent single-source shortest-path
problems over one shared CSR cost view in a single call: with scipy
installed it runs ``scipy.sparse.csgraph.dijkstra`` (one C call for the
whole batch, no GIL between sources); without it, the pure-python array
kernel fills the same distance matrix one source at a time.  Both backends
produce exact Dijkstra distances, so the deterministic backward walk in
:mod:`~repro.network.compiled.sparse` reconstructs reference-identical
paths from the rows.

``shortest_paths_many`` builds on that: a batch of ``(source, destination)``
pairs shares one distance row per distinct source, which is how
:meth:`~repro.service.RoutingService.route_many` turns a thread-per-request
fan-out into a handful of batched kernel calls.  The landmark tables in
:mod:`~repro.network.compiled.landmarks` use ``dijkstra_many`` for their
per-landmark forward/backward distance rows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

from . import sparse
from .kernels import dijkstra_costs_kernel

if TYPE_CHECKING:  # pragma: no cover
    from .graph import CompiledGraph


def _reverse_matrix(
    graph: "CompiledGraph",
    key: Hashable | None,
    array: np.ndarray,
    version: int | None,
):
    """A scipy CSR matrix of the reverse (predecessor) graph (memoized)."""
    indptr = graph.memo(
        ("sparse-r-indptr",),
        lambda: np.asarray(graph.r_offsets, dtype=np.int32),
        cost_dependent=False,
    )
    indices = graph.memo(
        ("sparse-r-indices",),
        lambda: np.asarray(graph.r_targets, dtype=np.int32),
        cost_dependent=False,
    )
    n = graph.vertex_count

    def build():
        return sparse._csr_matrix(
            (array[graph.topology.r_slots], indices, indptr), shape=(n, n)
        )

    if key is None:
        return build()
    return graph.memo(("sparse-rmatrix", key), build, version=version)


def dijkstra_many(
    graph: "CompiledGraph",
    key: Hashable | None,
    array: np.ndarray,
    version: int | None,
    sources: Sequence[int],
    reverse: bool = False,
) -> np.ndarray:
    """Distances from every source index at once: a ``(len(sources), n)`` matrix.

    ``reverse=True`` searches the predecessor graph (distances *to* each
    source in the forward graph) — what the backward landmark tables need.
    Unreachable vertices hold ``inf``.  The scipy backend handles the whole
    batch in one C call; the fallback runs the python array kernel per
    source into the same matrix.
    """
    n = graph.vertex_count
    matrix_sources = list(sources)
    if sparse.HAVE_SCIPY and (array.size == 0 or array.min() >= 0.0):
        if reverse:
            matrix = _reverse_matrix(graph, key, array, version)
        else:
            matrix = sparse._matrix(graph, key, array, version)
        distances = sparse._csgraph_dijkstra(
            matrix, indices=matrix_sources, return_predecessors=False
        )
        return np.atleast_2d(np.asarray(distances, dtype=np.float64))

    if reverse:
        offsets, targets = graph.r_offsets, graph.r_targets
        weights = graph.reverse_weights(key, array, version)
    else:
        offsets, targets = graph.offsets, graph.targets
        weights = graph.forward_weights(key, array, version)
    out = np.full((len(matrix_sources), n), np.inf, dtype=np.float64)
    with graph.borrowed_workspace() as ws:
        for row, source in enumerate(matrix_sources):
            for vertex, cost in dijkstra_costs_kernel(
                offsets, targets, weights, source, None, ws
            ):
                out[row, vertex] = cost
    return out


def shortest_paths_many(
    graph: "CompiledGraph",
    key: Hashable | None,
    array: np.ndarray,
    version: int | None,
    pairs: Sequence[tuple[int, int]],
) -> list[list[int] | tuple[()] | None] | None:
    """Point-to-point paths for a batch of index pairs sharing cost view.

    Pairs are grouped by source so each distinct source pays one SSSP; the
    deterministic backward walk then reconstructs each destination's
    reference-identical path from its source's distance row.  Returns
    ``None`` when this backend cannot answer at all (non-positive weights,
    where the walk could cycle); otherwise a list aligned with ``pairs``
    whose entries are index paths, the empty tuple ``()`` for a provably
    unreachable destination, or ``None`` for a pair the caller must answer
    with the per-query kernel (reconstruction anomaly).
    """
    if not pairs:
        return []
    if not sparse._all_positive(graph, key, array, version):
        return None

    by_source: dict[int, int] = {}
    for source, _ in pairs:
        if source not in by_source:
            by_source[source] = len(by_source)
    unique_sources = list(by_source)
    distances = dijkstra_many(graph, key, array, version, unique_sources)

    r_weights = graph.reverse_weights(key, array, version)
    rows: dict[int, list[float]] = {}
    results: list[list[int] | tuple[()] | None] = []
    for source, destination in pairs:
        row = rows.get(source)
        if row is None:
            row = rows[source] = distances[by_source[source]].tolist()
        if source == destination:
            results.append([source])
            continue
        if not np.isfinite(row[destination]):
            results.append(())
            continue
        results.append(
            sparse.reconstruct_path_indices(graph, row, r_weights, source, destination)
        )
    return results
