"""Road-network substrate: graphs, road types, spatial tools, and generators."""

from .road_network import Edge, NetworkStatistics, RoadNetwork, Vertex, VertexId
from .road_types import ALL_ROAD_TYPES, DEFAULT_SPEED_KMH, RoadType
from .spatial import (
    BoundingBox,
    LocalProjection,
    LonLat,
    centroid,
    convex_hull,
    equirectangular_m,
    haversine_m,
    match_waypoints_to_polyline,
    max_diameter_km,
    path_length_m,
    point_segment_distance_m,
    polygon_area_km2,
    project_point_to_segment,
)
from .spatial_index import SpatialIndex
from .compiled import CompiledGraph, CostStore, SearchWorkspace, Topology, compiled_disabled
from .generators import (
    CitySpec,
    chengdu_like_network,
    country_network,
    denmark_like_network,
    grid_city_network,
    small_demo_network,
)
from .io import load_json, load_osm_xml, save_json

__all__ = [
    "ALL_ROAD_TYPES",
    "BoundingBox",
    "CitySpec",
    "CompiledGraph",
    "CostStore",
    "DEFAULT_SPEED_KMH",
    "Edge",
    "LocalProjection",
    "LonLat",
    "NetworkStatistics",
    "RoadNetwork",
    "RoadType",
    "SearchWorkspace",
    "SpatialIndex",
    "Topology",
    "Vertex",
    "VertexId",
    "centroid",
    "chengdu_like_network",
    "compiled_disabled",
    "convex_hull",
    "country_network",
    "denmark_like_network",
    "equirectangular_m",
    "grid_city_network",
    "haversine_m",
    "load_json",
    "load_osm_xml",
    "match_waypoints_to_polyline",
    "max_diameter_km",
    "path_length_m",
    "point_segment_distance_m",
    "polygon_area_km2",
    "project_point_to_segment",
    "save_json",
    "small_demo_network",
]
