"""Synthetic road-network generators.

The paper evaluates on OpenStreetMap extracts of Denmark (N1) and Chengdu
(N2).  Those extracts (and the matching GPS fleets) are not available offline,
so this module builds structurally comparable synthetic networks:

* :func:`grid_city_network` — a dense urban grid with an arterial hierarchy
  (ring roads, radial primaries, residential blocks), mimicking N2 (Chengdu);
* :func:`country_network` — several cities connected by motorway / trunk
  corridors with suburban sprawl, mimicking N1 (Denmark) at reduced scale;
* :func:`small_demo_network` — the hand-drawn Figure 1 style network used in
  examples and tests.

All generators are deterministic given a ``seed``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .road_network import RoadNetwork, VertexId
from .road_types import RoadType


@dataclass(frozen=True)
class CitySpec:
    """Placement and size of one synthetic city inside a country network."""

    name: str
    center_lon: float
    center_lat: float
    rows: int
    cols: int
    block_m: float = 250.0


def _offset_lonlat(lon: float, lat: float, dx_m: float, dy_m: float) -> tuple[float, float]:
    """Offset a coordinate by meters east (dx) and north (dy)."""
    dlat = dy_m / 111_320.0
    dlon = dx_m / (111_320.0 * max(0.2, math.cos(math.radians(lat))))
    return (lon + dlon, lat + dlat)


def grid_city_network(
    rows: int = 20,
    cols: int = 20,
    block_m: float = 250.0,
    center_lon: float = 104.06,
    center_lat: float = 30.66,
    seed: int = 7,
    name: str = "grid-city",
    jitter: float = 0.15,
) -> RoadNetwork:
    """A city grid with a road-type hierarchy.

    Every ~5th row/column is an arterial (primary/secondary); the outermost
    ring is a trunk ring road; a pair of crossing motorways passes near the
    center; everything else is residential or tertiary.  Vertex positions are
    jittered so that geometry (distances, hulls) is non-degenerate.
    """
    rng = random.Random(seed)
    network = RoadNetwork(name=name)

    def vid(r: int, c: int) -> VertexId:
        return r * cols + c

    half_w = (cols - 1) * block_m / 2.0
    half_h = (rows - 1) * block_m / 2.0
    for r in range(rows):
        for c in range(cols):
            dx = c * block_m - half_w + rng.uniform(-jitter, jitter) * block_m
            dy = r * block_m - half_h + rng.uniform(-jitter, jitter) * block_m
            lon, lat = _offset_lonlat(center_lon, center_lat, dx, dy)
            network.add_vertex(vid(r, c), lon, lat)

    def edge_type(r1: int, c1: int, r2: int, c2: int) -> RoadType:
        on_ring = (
            r1 in (0, rows - 1) and r2 in (0, rows - 1) and r1 == r2
        ) or (c1 in (0, cols - 1) and c2 in (0, cols - 1) and c1 == c2)
        if on_ring:
            return RoadType.TRUNK
        mid_r, mid_c = rows // 2, cols // 2
        if (r1 == r2 == mid_r) or (c1 == c2 == mid_c):
            return RoadType.MOTORWAY
        if r1 == r2 and r1 % 5 == 0:
            return RoadType.PRIMARY
        if c1 == c2 and c1 % 5 == 0:
            return RoadType.PRIMARY
        if r1 == r2 and r1 % 5 == 2:
            return RoadType.SECONDARY
        if c1 == c2 and c1 % 5 == 2:
            return RoadType.SECONDARY
        if (r1 + c1) % 3 == 0:
            return RoadType.TERTIARY
        return RoadType.RESIDENTIAL

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                network.add_edge(vid(r, c), vid(r, c + 1), edge_type(r, c, r, c + 1), bidirectional=True)
            if r + 1 < rows:
                network.add_edge(vid(r, c), vid(r + 1, c), edge_type(r, c, r + 1, c), bidirectional=True)
    return network


def country_network(
    cities: list[CitySpec] | None = None,
    seed: int = 11,
    name: str = "country",
    corridor_spacing_m: float = 2_000.0,
) -> RoadNetwork:
    """Several grid cities connected by motorway corridors (Denmark-like N1).

    Each corridor between consecutive city centers is a chain of motorway
    vertices; a parallel trunk road with occasional residential connectors
    runs alongside, so long-distance trips have both a fast (motorway) and a
    shorter but slower (trunk) alternative — the structural property that
    makes Fastest and Shortest diverge in the paper's D1 evaluation.
    """
    if cities is None:
        cities = [
            CitySpec("alpha", 9.50, 55.40, rows=12, cols=12, block_m=300.0),
            CitySpec("beta", 10.10, 56.00, rows=10, cols=10, block_m=300.0),
            CitySpec("gamma", 10.60, 55.55, rows=8, cols=8, block_m=300.0),
        ]
    rng = random.Random(seed)
    network = RoadNetwork(name=name)
    next_id = 0
    city_vertices: list[list[VertexId]] = []
    city_entry: list[VertexId] = []

    for spec in cities:
        city = grid_city_network(
            rows=spec.rows,
            cols=spec.cols,
            block_m=spec.block_m,
            center_lon=spec.center_lon,
            center_lat=spec.center_lat,
            seed=rng.randrange(1 << 30),
            name=spec.name,
        )
        mapping: dict[VertexId, VertexId] = {}
        for vertex in city.vertices():
            mapping[vertex.vertex_id] = next_id
            network.add_vertex(next_id, vertex.lon, vertex.lat)
            next_id += 1
        for edge in city.edges():
            network.add_edge(
                mapping[edge.source],
                mapping[edge.target],
                road_type=edge.road_type,
                distance_m=edge.distance_m,
                speed_kmh=edge.speed_kmh,
            )
        ids = sorted(mapping.values())
        city_vertices.append(ids)
        # Entry point: a corner vertex of the city grid.
        city_entry.append(mapping[0])

    # Connect consecutive cities with a motorway corridor plus a trunk detour.
    for i in range(len(cities) - 1):
        a_spec, b_spec = cities[i], cities[i + 1]
        a_entry, b_entry = city_entry[i], city_entry[i + 1]
        a_pos = network.coordinates(a_entry)
        b_pos = network.coordinates(b_entry)
        from .spatial import equirectangular_m

        corridor_len = equirectangular_m(a_pos, b_pos)
        hops = max(2, int(corridor_len // corridor_spacing_m))

        def chain(road_type: RoadType, lateral_m: float) -> list[VertexId]:
            nonlocal next_id
            ids = [a_entry]
            for h in range(1, hops):
                t = h / hops
                lon = a_pos[0] + (b_pos[0] - a_pos[0]) * t
                lat = a_pos[1] + (b_pos[1] - a_pos[1]) * t
                lon, lat = _offset_lonlat(lon, lat, lateral_m, lateral_m * 0.3)
                network.add_vertex(next_id, lon, lat)
                ids.append(next_id)
                next_id += 1
            ids.append(b_entry)
            for j in range(len(ids) - 1):
                network.add_edge(ids[j], ids[j + 1], road_type=road_type, bidirectional=True)
            return ids

        motorway_ids = chain(RoadType.MOTORWAY, lateral_m=0.0)
        trunk_ids = chain(RoadType.TRUNK, lateral_m=-1_500.0)
        # Occasional connectors between the two corridors.
        for j in range(2, min(len(motorway_ids), len(trunk_ids)) - 2, 3):
            network.add_edge(
                motorway_ids[j], trunk_ids[j], road_type=RoadType.SECONDARY, bidirectional=True
            )
    return network


def small_demo_network(seed: int = 3) -> RoadNetwork:
    """A small, Figure-1-flavoured demo network (a 6x6 grid with arterials).

    Small enough to inspect by hand in examples and unit tests while still
    exhibiting multiple road types and region structure.
    """
    return grid_city_network(rows=6, cols=6, block_m=400.0, seed=seed, name="demo")


def chengdu_like_network(seed: int = 7) -> RoadNetwork:
    """The default D2-like (Chengdu) evaluation network (dense city grid)."""
    return grid_city_network(rows=24, cols=24, block_m=250.0, seed=seed, name="chengdu-like")


def denmark_like_network(seed: int = 11) -> RoadNetwork:
    """The default D1-like (Denmark) evaluation network (multi-city country)."""
    return country_network(seed=seed, name="denmark-like")
