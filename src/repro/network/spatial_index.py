"""A uniform-grid spatial index over road-network vertices and edges.

Used by map matching (nearest candidate edges for a GPS record), by routing
Case 2 (nearest vertex to an arbitrary coordinate), and by the trajectory
generator.  The grid is intentionally simple — a dict of cell -> members —
which is fast enough at the network scales this reproduction targets and has
no third-party dependencies.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable

from .road_network import Edge, RoadNetwork, VertexId
from .spatial import LonLat, equirectangular_m, point_segment_distance_m

_DEG_LAT_M = 111_320.0
"""Approximate meters per degree of latitude."""


class SpatialIndex:
    """Grid index over the vertices and edges of a :class:`RoadNetwork`."""

    def __init__(self, network: RoadNetwork, cell_size_m: float = 250.0) -> None:
        if cell_size_m <= 0:
            raise ValueError("cell_size_m must be positive")
        self._network = network
        self._cell_size_m = float(cell_size_m)
        if network.vertex_count:
            box = network.bounding_box()
            mid_lat = (box.min_lat + box.max_lat) / 2.0
        else:
            mid_lat = 0.0
        self._deg_lon_m = _DEG_LAT_M * max(0.2, math.cos(math.radians(mid_lat)))
        self._vertex_cells: dict[tuple[int, int], list[VertexId]] = defaultdict(list)
        self._edge_cells: dict[tuple[int, int], list[Edge]] = defaultdict(list)
        self._build()

    # ------------------------------------------------------------------ #
    def _cell_of(self, point: LonLat) -> tuple[int, int]:
        cx = int(point[0] * self._deg_lon_m // self._cell_size_m)
        cy = int(point[1] * _DEG_LAT_M // self._cell_size_m)
        return (cx, cy)

    def _build(self) -> None:
        for vertex in self._network.vertices():
            self._vertex_cells[self._cell_of(vertex.lonlat)].append(vertex.vertex_id)
        for edge in self._network.edges():
            a = self._network.coordinates(edge.source)
            b = self._network.coordinates(edge.target)
            for cell in self._cells_covering(a, b):
                self._edge_cells[cell].append(edge)

    def _cells_covering(self, a: LonLat, b: LonLat) -> set[tuple[int, int]]:
        """Cells intersected by the segment a-b (sampled densely enough)."""
        length = equirectangular_m(a, b)
        steps = max(1, int(length // self._cell_size_m) + 1)
        cells: set[tuple[int, int]] = set()
        for i in range(steps + 1):
            t = i / steps
            point = (a[0] + (b[0] - a[0]) * t, a[1] + (b[1] - a[1]) * t)
            cells.add(self._cell_of(point))
        return cells

    def _rings(self, center: tuple[int, int], radius: int) -> Iterable[tuple[int, int]]:
        cx, cy = center
        for dx in range(-radius, radius + 1):
            for dy in range(-radius, radius + 1):
                yield (cx + dx, cy + dy)

    # ------------------------------------------------------------------ #
    def nearest_vertex(self, point: LonLat, max_radius_m: float = 5_000.0) -> VertexId | None:
        """Vertex id closest to ``point`` or ``None`` if none within range."""
        center = self._cell_of(point)
        best: VertexId | None = None
        best_dist = math.inf
        max_rings = max(1, int(max_radius_m // self._cell_size_m) + 1)
        for radius in range(max_rings + 1):
            found_any = False
            for cell in self._rings(center, radius):
                for vid in self._vertex_cells.get(cell, ()):  # pragma: no branch
                    found_any = True
                    dist = equirectangular_m(point, self._network.coordinates(vid))
                    if dist < best_dist:
                        best_dist = dist
                        best = vid
            # Stop once a hit exists and one more safety ring has been checked.
            if best is not None and found_any and radius >= 1:
                break
        if best is not None and best_dist <= max_radius_m:
            return best
        return None

    def vertices_within(self, point: LonLat, radius_m: float) -> list[VertexId]:
        """All vertex ids within ``radius_m`` meters of ``point``."""
        center = self._cell_of(point)
        rings = max(1, int(radius_m // self._cell_size_m) + 1)
        result: list[VertexId] = []
        seen: set[VertexId] = set()
        for cell in self._rings(center, rings):
            for vid in self._vertex_cells.get(cell, ()):
                if vid in seen:
                    continue
                seen.add(vid)
                if equirectangular_m(point, self._network.coordinates(vid)) <= radius_m:
                    result.append(vid)
        return result

    def candidate_edges(self, point: LonLat, radius_m: float = 100.0) -> list[tuple[Edge, float]]:
        """Edges within ``radius_m`` of ``point`` with their distances.

        This is the candidate-generation primitive for HMM map matching; the
        result is sorted by distance (closest first).
        """
        center = self._cell_of(point)
        rings = max(1, int(radius_m // self._cell_size_m) + 1)
        seen: set[tuple[VertexId, VertexId]] = set()
        result: list[tuple[Edge, float]] = []
        for cell in self._rings(center, rings):
            for edge in self._edge_cells.get(cell, ()):
                if edge.key in seen:
                    continue
                seen.add(edge.key)
                dist = point_segment_distance_m(
                    point,
                    self._network.coordinates(edge.source),
                    self._network.coordinates(edge.target),
                )
                if dist <= radius_m:
                    result.append((edge, dist))
        result.sort(key=lambda item: item[1])
        return result
