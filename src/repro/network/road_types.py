"""Road-type taxonomy and per-type defaults.

The paper uses the six most common OpenStreetMap highway classes as the road
*condition* features: motorway, trunk, primary, secondary, tertiary, and
residential.  Each class carries a default speed limit that drives the
travel-time and fuel-consumption weight functions when no explicit limit is
present on an edge.
"""

from __future__ import annotations

from enum import IntEnum


class RoadType(IntEnum):
    """OSM-style road categories, ordered from most to least important."""

    MOTORWAY = 1
    TRUNK = 2
    PRIMARY = 3
    SECONDARY = 4
    TERTIARY = 5
    RESIDENTIAL = 6

    @property
    def osm_tag(self) -> str:
        """The OpenStreetMap ``highway=`` tag value for this category."""
        return _OSM_TAGS[self]

    @property
    def default_speed_kmh(self) -> float:
        """Default free-flow speed limit in km/h."""
        return DEFAULT_SPEED_KMH[self]

    @property
    def is_major(self) -> bool:
        """True for the high-capacity classes (motorway, trunk, primary)."""
        return self in (RoadType.MOTORWAY, RoadType.TRUNK, RoadType.PRIMARY)

    @classmethod
    def from_osm_tag(cls, tag: str) -> "RoadType":
        """Map an OSM ``highway`` tag to a :class:`RoadType`.

        Unknown or link tags degrade gracefully: ``*_link`` maps to the parent
        class, anything unrecognised maps to :attr:`RESIDENTIAL`.
        """
        normalized = tag.strip().lower()
        if normalized.endswith("_link"):
            normalized = normalized[: -len("_link")]
        return _FROM_OSM.get(normalized, cls.RESIDENTIAL)


_OSM_TAGS: dict[RoadType, str] = {
    RoadType.MOTORWAY: "motorway",
    RoadType.TRUNK: "trunk",
    RoadType.PRIMARY: "primary",
    RoadType.SECONDARY: "secondary",
    RoadType.TERTIARY: "tertiary",
    RoadType.RESIDENTIAL: "residential",
}

_FROM_OSM: dict[str, RoadType] = {tag: rt for rt, tag in _OSM_TAGS.items()}
_FROM_OSM.update(
    {
        "unclassified": RoadType.RESIDENTIAL,
        "living_street": RoadType.RESIDENTIAL,
        "service": RoadType.RESIDENTIAL,
    }
)

DEFAULT_SPEED_KMH: dict[RoadType, float] = {
    RoadType.MOTORWAY: 110.0,
    RoadType.TRUNK: 90.0,
    RoadType.PRIMARY: 70.0,
    RoadType.SECONDARY: 60.0,
    RoadType.TERTIARY: 50.0,
    RoadType.RESIDENTIAL: 30.0,
}
"""Free-flow speed limits used when an edge carries no explicit limit."""

ALL_ROAD_TYPES: tuple[RoadType, ...] = tuple(RoadType)
"""All road types in importance order (motorway first)."""
