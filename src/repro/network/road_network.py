"""The road-network graph ``G = (V, E, W)``.

A :class:`RoadNetwork` is a directed graph whose vertices are road
intersections with ``(lon, lat)`` coordinates and whose edges are road
segments carrying the four weight functions of the paper:

* ``wDI``  — distance in meters,
* ``wTT``  — free-flow travel time in seconds,
* ``wFC``  — fuel consumption in milliliters,
* ``wRT``  — road type (:class:`~repro.network.road_types.RoadType`).

The class is a thin, explicit wrapper around adjacency dictionaries rather
than a :mod:`networkx` graph so that the hot routing loops touch plain dicts;
conversion helpers to/from networkx are provided for analysis and testing.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

import networkx as nx

from ..exceptions import EdgeNotFoundError, NetworkError, VertexNotFoundError
from .road_types import RoadType
from .spatial import BoundingBox, LonLat, equirectangular_m

if TYPE_CHECKING:  # pragma: no cover
    from .compiled.graph import CompiledGraph

VertexId = int
"""Vertices are identified by integers."""


def _slotted_setstate(self, state) -> None:
    """Unpickle compat: accept both slots-era and pre-slots (dict) states.

    ``Vertex``/``Edge`` gained ``slots=True``; models persisted by earlier
    versions pickled instance ``__dict__`` states, which the generated
    dataclass ``__setstate__`` would silently misinterpret (it zips field
    values positionally).  Restoring by field name keeps old model files
    loading correctly.
    """
    if isinstance(state, dict):  # pre-slots pickle
        values = [state[name] for name in self.__slots__]
    elif isinstance(state, tuple) and len(state) == 2:  # (dict, slots) form
        merged = {**(state[0] or {}), **(state[1] or {})}
        values = [merged[name] for name in self.__slots__]
    else:  # list of field values (generated slots __getstate__)
        values = state
    for name, value in zip(self.__slots__, values):
        object.__setattr__(self, name, value)


@dataclass(frozen=True, slots=True)
class Vertex:
    """A road intersection."""

    vertex_id: VertexId
    lon: float
    lat: float

    __setstate__ = _slotted_setstate

    @property
    def lonlat(self) -> LonLat:
        return (self.lon, self.lat)


@dataclass(frozen=True, slots=True)
class Edge:
    """A directed road segment with the paper's four weight functions."""

    source: VertexId
    target: VertexId
    distance_m: float
    travel_time_s: float
    fuel_ml: float
    road_type: RoadType
    speed_kmh: float

    __setstate__ = _slotted_setstate

    @property
    def key(self) -> tuple[VertexId, VertexId]:
        return (self.source, self.target)


class RoadNetwork:
    """A directed road-network graph with spatial vertices and weighted edges."""

    def __init__(self, name: str = "road-network") -> None:
        self.name = name
        self._vertices: dict[VertexId, Vertex] = {}
        self._edges: dict[tuple[VertexId, VertexId], Edge] = {}
        self._adjacency: dict[VertexId, dict[VertexId, Edge]] = {}
        self._reverse: dict[VertexId, dict[VertexId, Edge]] = {}
        self._compiled: "CompiledGraph | None" = None
        self._compiled_lock = threading.Lock()
        self._bounding_box: BoundingBox | None = None
        self._version = 0
        self._cost_version = 0
        self._topology_version = 0
        self._hierarchies: dict = {}
        self._hierarchy_lock = threading.Lock()

    def __getstate__(self) -> dict:
        # The compiled view holds thread-local workspaces and is cheap to
        # rebuild, so it (and the build lock) is dropped from pickles
        # (model persistence).  Prepared contraction hierarchies likewise
        # carry compiled arrays and locks; they rebuild on first use.
        state = self.__dict__.copy()
        state["_compiled"] = None
        state["_hierarchies"] = {}
        state.pop("_compiled_lock", None)
        state.pop("_hierarchy_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Defaults for pickles written before these fields existed.
        self.__dict__.setdefault("_compiled", None)
        self.__dict__.setdefault("_bounding_box", None)
        self.__dict__.setdefault("_version", 0)
        self.__dict__.setdefault("_cost_version", 0)
        self.__dict__.setdefault("_topology_version", 0)
        self.__dict__.setdefault("_hierarchies", {})
        self._compiled_lock = threading.Lock()
        self._hierarchy_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex_id: VertexId, lon: float, lat: float) -> Vertex:
        """Add (or replace) a vertex and return it."""
        vertex = Vertex(vertex_id=vertex_id, lon=float(lon), lat=float(lat))
        self._vertices[vertex_id] = vertex
        self._adjacency.setdefault(vertex_id, {})
        self._reverse.setdefault(vertex_id, {})
        self._invalidate(bounding_box=True)
        return vertex

    def add_edge(
        self,
        source: VertexId,
        target: VertexId,
        road_type: RoadType = RoadType.RESIDENTIAL,
        distance_m: float | None = None,
        speed_kmh: float | None = None,
        travel_time_s: float | None = None,
        fuel_ml: float | None = None,
        bidirectional: bool = False,
    ) -> Edge:
        """Add a directed road segment.

        Missing weights are derived: distance from vertex coordinates, speed
        from the road-type default, travel time from distance and speed, and
        fuel from the environmental model in :mod:`repro.routing.fuel`.
        """
        if source not in self._vertices:
            raise VertexNotFoundError(source)
        if target not in self._vertices:
            raise VertexNotFoundError(target)
        if source == target:
            raise NetworkError(f"self-loop edges are not allowed (vertex {source})")

        if distance_m is None:
            distance_m = equirectangular_m(
                self._vertices[source].lonlat, self._vertices[target].lonlat
            )
        if distance_m <= 0.0:
            distance_m = 1.0
        if speed_kmh is None:
            speed_kmh = road_type.default_speed_kmh
        if travel_time_s is None:
            travel_time_s = distance_m / (speed_kmh / 3.6)
        if fuel_ml is None:
            from ..routing.fuel import fuel_consumption_ml

            fuel_ml = fuel_consumption_ml(distance_m, speed_kmh)

        edge = Edge(
            source=source,
            target=target,
            distance_m=float(distance_m),
            travel_time_s=float(travel_time_s),
            fuel_ml=float(fuel_ml),
            road_type=road_type,
            speed_kmh=float(speed_kmh),
        )
        self._edges[(source, target)] = edge
        self._adjacency[source][target] = edge
        self._reverse[target][source] = edge
        self._invalidate()

        if bidirectional:
            self.add_edge(
                target,
                source,
                road_type=road_type,
                distance_m=distance_m,
                speed_kmh=speed_kmh,
                travel_time_s=travel_time_s,
                fuel_ml=fuel_ml,
                bidirectional=False,
            )
        return edge

    def _invalidate(self, bounding_box: bool = False) -> None:
        """Drop derived views after a *topology* mutation.

        Cost-only mutations go through :meth:`update_edge_costs`, which
        patches the live compiled view instead of dropping it.

        Deliberately lock-free: a structural mutation must never stall
        behind an in-flight CSR build (which holds ``_compiled_lock`` for
        O(graph) work).  Correctness comes from the version protocol
        instead — the GIL-atomic ``None`` write plus the version bump make
        ``compiled()``'s post-build check discard any snapshot the mutation
        raced (see ``test_mutation_during_compilation_serves_uncached_snapshot``).
        """
        self._compiled = None  # reprolint: disable=RL002
        self._version += 1
        self._topology_version += 1
        if bounding_box:
            self._bounding_box = None

    # ------------------------------------------------------------------ #
    # Live-traffic cost updates
    # ------------------------------------------------------------------ #
    def update_edge_costs(
        self,
        updates: Mapping[tuple[VertexId, VertexId], Mapping[str, float]],
    ) -> frozenset[tuple[VertexId, VertexId]]:
        """Bulk-update travel costs of existing edges without a recompile.

        ``updates`` maps directed edge keys to ``{attribute: new value}``
        dictionaries; the patchable attributes are exactly the compiled cost
        features (``distance_m`` / ``travel_time_s`` / ``fuel_ml``).  Values
        must be finite and strictly positive.  Caution: the A* heuristics
        (:mod:`repro.routing.astar`) are geometric lower bounds assuming
        ``distance_m`` >= straight-line distance and ``travel_time_s`` >=
        straight-line time at motorway speed — pushing an edge *below* those
        bounds (as :meth:`add_edge` also allows) makes A* inadmissible and
        its routes possibly suboptimal; congestion-style updates (costs at or
        above free flow) are always safe, and the Dijkstra family is
        unaffected either way.

        The whole batch is validated before anything is touched, so a bad
        entry leaves the network unchanged (transactional semantics — the
        :class:`~repro.traffic.TrafficFeed` relies on this).  On success the
        edge objects are replaced, :attr:`version` and :attr:`cost_version`
        are bumped, and — unlike a topology mutation — a cached compiled view
        is patched in place through
        :meth:`~repro.network.compiled.graph.CompiledGraph.apply_cost_updates`
        rather than dropped, so live-traffic updates cost O(touched edges)
        instead of a full CSR rebuild.

        Returns the keys of the edges whose costs actually *changed* —
        values equal to the current ones are validated but skipped, so an
        idempotent batch (e.g. a de-congestion tick back to current levels)
        changes nothing, bumps nothing, and triggers no cache invalidation
        downstream.
        """
        from .compiled.graph import EDGE_COST_ATTRIBUTES

        allowed = frozenset(EDGE_COST_ATTRIBUTES)
        isfinite = math.isfinite
        known_edges = self._edges
        resolved: dict[tuple[VertexId, VertexId], dict[str, float]] = {}
        for key, changes in updates.items():
            old = known_edges.get(key)
            if old is None:
                raise EdgeNotFoundError(*key)
            clean: dict[str, float] = {}
            for attribute, value in changes.items():
                if attribute not in allowed:
                    raise NetworkError(
                        f"cannot update edge attribute {attribute!r}; patchable "
                        f"cost attributes are {EDGE_COST_ATTRIBUTES}"
                    )
                value = float(value)
                if not isfinite(value) or value <= 0.0:
                    raise NetworkError(
                        f"edge {key} attribute {attribute!r} must be "
                        f"a finite positive number, got {value!r}"
                    )
                if value != getattr(old, attribute):  # skip no-op writes
                    clean[attribute] = value
            if clean:
                resolved[key] = clean
        if not resolved:
            return frozenset()

        # The compiled-view lock serializes cost patches against snapshot
        # builds: a build in progress finishes (and caches) before the patch
        # lands, so the cached snapshot and the dicts never diverge.
        with self._compiled_lock:
            compiled = self._compiled
            slot_for = compiled.topology.slot_of.get if compiled is not None else None
            slot_changes: dict[int, dict[str, float]] = {}
            slot_edges: dict[int, Edge] = {}
            edges = self._edges
            adjacency = self._adjacency
            reverse = self._reverse
            for key, clean in resolved.items():
                old = edges[key]
                # Direct construction instead of dataclasses.replace(): this
                # loop is the live-traffic hot path, and replace() costs ~3x
                # as much per edge through the dataclass machinery.
                edge = Edge(
                    old.source,
                    old.target,
                    clean.get("distance_m", old.distance_m),
                    clean.get("travel_time_s", old.travel_time_s),
                    clean.get("fuel_ml", old.fuel_ml),
                    old.road_type,
                    old.speed_kmh,
                )
                edges[key] = edge
                adjacency[key[0]][key[1]] = edge
                reverse[key[1]][key[0]] = edge
                if slot_for is not None:
                    slot = slot_for(key)
                    if slot is None:  # pragma: no cover - snapshot out of sync
                        compiled = None
                        slot_for = None
                        self._compiled = None
                    else:
                        slot_changes[slot] = clean
                        slot_edges[slot] = edge
            self._version += 1
            self._cost_version += 1
            if compiled is not None:
                compiled.apply_cost_updates(slot_changes, slot_edges)
        return frozenset(resolved)

    def restore_cost_state(
        self,
        arrays: Mapping[str, "object"],
        cost_version: int,
    ) -> frozenset[tuple[VertexId, VertexId]]:
        """Adopt persisted per-slot cost arrays wholesale (crash recovery).

        ``arrays`` maps each compiled cost attribute to a full-length array
        in CSR slot order — exactly what
        :meth:`~repro.network.compiled.graph.CostStore.export_arrays`
        captured and the durability layer's snapshot store persisted; the
        network's :attr:`cost_version` is *set* to ``cost_version`` (not
        bumped), so replaying the write-ahead log from the restored state
        reproduces the original version sequence bit for bit.  Edge objects,
        adjacency dicts, and the compiled
        :class:`~repro.network.compiled.graph.CostStore` all land on the
        restored values in one transaction; every value must be finite and
        strictly positive (same contract as :meth:`update_edge_costs`).
        Returns the keys of the edges whose costs actually changed.
        """
        import numpy as np

        from .compiled.graph import EDGE_COST_ATTRIBUTES

        if cost_version < 0:
            raise NetworkError(f"cost_version must be >= 0, got {cost_version}")
        with self._compiled_lock:
            compiled = self._compiled
        if compiled is None:
            compiled = self.compiled()
        topology = compiled.topology
        clean: dict[str, "np.ndarray"] = {}
        for attr in EDGE_COST_ATTRIBUTES:
            if attr not in arrays:
                raise NetworkError(f"restored cost state is missing {attr!r}")
            values = np.asarray(arrays[attr], dtype=np.float64)
            if values.shape != (topology.edge_count,):
                raise NetworkError(
                    f"restored array for {attr!r} has shape {values.shape}; "
                    f"this network compiles {topology.edge_count} edges"
                )
            if not bool(np.all(np.isfinite(values)) and np.all(values > 0.0)):
                raise NetworkError(
                    f"restored array for {attr!r} carries non-finite or "
                    "non-positive costs; refusing to adopt it"
                )
            clean[attr] = values

        with self._compiled_lock:
            if self._compiled is not compiled:
                raise NetworkError(
                    "network was mutated while restoring its cost state"
                )
            edges = self._edges
            adjacency = self._adjacency
            reverse = self._reverse
            slot_edges: dict[int, Edge] = {}
            changed: set[tuple[VertexId, VertexId]] = set()
            for key, slot in topology.slot_of.items():
                old = edges[key]
                distance = float(clean["distance_m"][slot])
                travel = float(clean["travel_time_s"][slot])
                fuel = float(clean["fuel_ml"][slot])
                if (
                    distance == old.distance_m
                    and travel == old.travel_time_s
                    and fuel == old.fuel_ml
                ):
                    continue
                edge = Edge(
                    old.source,
                    old.target,
                    distance,
                    travel,
                    fuel,
                    old.road_type,
                    old.speed_kmh,
                )
                edges[key] = edge
                adjacency[key[0]][key[1]] = edge
                reverse[key[1]][key[0]] = edge
                slot_edges[slot] = edge
                changed.add(key)
            self._version += 1
            self._cost_version = int(cost_version)
            compiled.costs.restore(clean, slot_edges, int(cost_version))
        return frozenset(changed)

    # ------------------------------------------------------------------ #
    # Compiled view
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Mutation counter; bumped by every mutation (topology or cost)."""
        return self._version

    @property
    def cost_version(self) -> int:
        """Monotonic cost-update counter; bumped by :meth:`update_edge_costs`.

        Topology mutations do *not* bump it — they drop the compiled view
        entirely, which invalidates every cost-derived artifact anyway.
        Restored by pickling (old pickles default to 0).
        """
        return self._cost_version

    @property
    def topology_version(self) -> int:
        """Structural-mutation counter (``add_vertex`` / ``add_edge`` only).

        Cost updates never bump it, so artifacts keyed on the topology —
        compiled contraction hierarchies in particular — can distinguish
        cheap cost-only drift (re-weight in place) from structural drift
        (full rebuild required).
        """
        return self._topology_version

    def compiled(self) -> "CompiledGraph":
        """The lazily-built CSR view used by the array-based search kernels.

        The snapshot is cached until the next mutation; see
        :mod:`repro.network.compiled`.  Double-checked locking keeps a
        ``route_many`` thread pool from compiling one snapshot per worker.
        """
        view = self._compiled
        if view is None:
            with self._compiled_lock:
                view = self._compiled
                if view is None:
                    from .compiled.graph import CompiledGraph

                    version = self._version
                    view = CompiledGraph(self)
                    if version == self._version:
                        self._compiled = view
                    # else: a concurrent mutation invalidated the snapshot
                    # mid-build — serve it uncached; the next call rebuilds.
        return view

    def prepare_landmarks(
        self,
        edge_cost: object | None = None,
        *,
        count: int | None = None,
        strategy: str | None = None,
    ):
        """Eagerly build (or re-configure) the ALT landmark table for a cost.

        Goal-directed search builds its landmark tables lazily on the first
        A* / bidirectional query per cost view; call this to pay that cost
        up front (e.g. before opening a service to traffic) or to pick a
        non-default landmark ``count`` / selection ``strategy`` (``"farthest"``,
        ``"avoid"``, or ``"random"``).  ``edge_cost`` defaults to the
        travel-time feature; any callable recognized by the compiled
        dispatch (``cost_attr`` / ``cost_terms`` / cacheable
        ``build_cost_array``) works.  Returns the
        :class:`~repro.network.compiled.landmarks.LandmarkTable`, or ``None``
        when the cost cannot be compiled to a cacheable array.  The table
        lives on the current compiled snapshot: it dies with any topology
        mutation and rescales/rebuilds itself across live-traffic cost
        updates.
        """
        if edge_cost is None:
            from ..routing.costs import CostFeature, cost_function

            edge_cost = cost_function(CostFeature.TRAVEL_TIME)
        graph = self.compiled()
        resolved = graph.resolve_cost(edge_cost)
        if resolved is None:
            return None
        key, array, version = resolved
        return graph.landmark_table(key, array, version, count=count, strategy=strategy)

    def prepare_hierarchy(self, feature=None, *, edge_cost=None, hop_limit: int = 16):
        """Build (or refresh) the cached contraction hierarchy for one cost.

        The :func:`~repro.routing.contraction.ch_shortest_path` family and
        the service layer's ``ContractionEngine`` answer from a prebuilt
        :class:`~repro.routing.contraction.ContractionHierarchy`; call this
        to pay the construction up front (mirroring
        :meth:`prepare_landmarks`) and to share one hierarchy per
        ``(feature, edge_cost, hop_limit)`` across callers.  ``feature``
        defaults to travel time.  A cached hierarchy that went stale is
        refreshed in place before being returned — a cheap shortcut
        re-weight when only costs drifted, a full rebuild after structural
        mutations — so the result always answers with current costs.
        """
        from ..routing.contraction import build_contraction_hierarchy
        from ..routing.costs import CostFeature

        if feature is None:
            feature = CostFeature.TRAVEL_TIME
        key = (feature, edge_cost, hop_limit)
        with self._hierarchy_lock:
            hierarchy = self._hierarchies.get(key)
        if hierarchy is not None:
            if hierarchy.is_stale(self):
                hierarchy.refresh(self)
            return hierarchy
        built = build_contraction_hierarchy(
            self, feature=feature, edge_cost=edge_cost, hop_limit=hop_limit
        )
        with self._hierarchy_lock:
            # First build wins so every caller shares (and refreshes) one
            # hierarchy object; a racing builder's duplicate is discarded.
            hierarchy = self._hierarchies.setdefault(key, built)
        if hierarchy is not built and hierarchy.is_stale(self):
            hierarchy.refresh(self)
        return hierarchy

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def vertex_count(self) -> int:
        return len(self._vertices)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def __contains__(self, vertex_id: VertexId) -> bool:
        return vertex_id in self._vertices

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._vertices.values())

    def vertex_ids(self) -> Iterator[VertexId]:
        return iter(self._vertices.keys())

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        return iter(self._edges.values())

    def vertex(self, vertex_id: VertexId) -> Vertex:
        try:
            return self._vertices[vertex_id]
        except KeyError:
            raise VertexNotFoundError(vertex_id) from None

    def has_edge(self, source: VertexId, target: VertexId) -> bool:
        return (source, target) in self._edges

    def edge(self, source: VertexId, target: VertexId) -> Edge:
        try:
            return self._edges[(source, target)]
        except KeyError:
            raise EdgeNotFoundError(source, target) from None

    def successors(self, vertex_id: VertexId) -> Mapping[VertexId, Edge]:
        """Outgoing neighbours with the connecting edge."""
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        return self._adjacency[vertex_id]

    def predecessors(self, vertex_id: VertexId) -> Mapping[VertexId, Edge]:
        """Incoming neighbours with the connecting edge."""
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        return self._reverse[vertex_id]

    def neighbors(self, vertex_id: VertexId) -> set[VertexId]:
        """Union of successors and predecessors (undirected neighbourhood)."""
        return set(self.iter_neighbors(vertex_id))

    def iter_neighbors(self, vertex_id: VertexId) -> Iterator[VertexId]:
        """Lazily iterate the undirected neighbourhood without building a set.

        Search loops (region BFS, clustering) should prefer this over
        :meth:`neighbors`, which materializes a fresh set per call.
        """
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        successors = self._adjacency[vertex_id]
        yield from successors
        for predecessor in self._reverse[vertex_id]:
            if predecessor not in successors:
                yield predecessor

    def incident_edges(self, vertex_id: VertexId) -> list[Edge]:
        """All edges incident (either direction) to the vertex."""
        return list(self.iter_incident_edges(vertex_id))

    def iter_incident_edges(self, vertex_id: VertexId) -> Iterator[Edge]:
        """Lazily iterate incident edges (outgoing first, then incoming)."""
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        yield from self._adjacency[vertex_id].values()
        yield from self._reverse[vertex_id].values()

    def coordinates(self, vertex_id: VertexId) -> LonLat:
        return self.vertex(vertex_id).lonlat

    def bounding_box(self) -> BoundingBox:
        """Bounding box of all vertices (cached until the next add_vertex)."""
        if self._bounding_box is None:
            self._bounding_box = BoundingBox.of(v.lonlat for v in self._vertices.values())
        return self._bounding_box

    # ------------------------------------------------------------------ #
    # Weight functions (paper notation)
    # ------------------------------------------------------------------ #
    def w_di(self, source: VertexId, target: VertexId) -> float:
        """Distance weight ``wDI`` in meters."""
        return self.edge(source, target).distance_m

    def w_tt(self, source: VertexId, target: VertexId) -> float:
        """Travel-time weight ``wTT`` in seconds."""
        return self.edge(source, target).travel_time_s

    def w_fc(self, source: VertexId, target: VertexId) -> float:
        """Fuel-consumption weight ``wFC`` in milliliters."""
        return self.edge(source, target).fuel_ml

    def w_rt(self, source: VertexId, target: VertexId) -> RoadType:
        """Road-type weight ``wRT``."""
        return self.edge(source, target).road_type

    # ------------------------------------------------------------------ #
    # Path helpers
    # ------------------------------------------------------------------ #
    def is_path(self, vertices: Iterable[VertexId]) -> bool:
        """Check that consecutive vertices are connected by edges."""
        seq = list(vertices)
        if len(seq) < 2:
            return all(v in self._vertices for v in seq)
        return all(self.has_edge(seq[i], seq[i + 1]) for i in range(len(seq) - 1))

    def path_edges(self, vertices: Iterable[VertexId]) -> list[Edge]:
        """Edges along a vertex path; raises if any hop is missing."""
        seq = list(vertices)
        return [self.edge(seq[i], seq[i + 1]) for i in range(len(seq) - 1)]

    def path_distance_m(self, vertices: Iterable[VertexId]) -> float:
        return sum(e.distance_m for e in self.path_edges(vertices))

    def path_travel_time_s(self, vertices: Iterable[VertexId]) -> float:
        return sum(e.travel_time_s for e in self.path_edges(vertices))

    def path_fuel_ml(self, vertices: Iterable[VertexId]) -> float:
        return sum(e.fuel_ml for e in self.path_edges(vertices))

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> nx.DiGraph:
        """Export as a :class:`networkx.DiGraph` (for analysis and tests)."""
        graph = nx.DiGraph(name=self.name)
        for v in self._vertices.values():
            graph.add_node(v.vertex_id, lon=v.lon, lat=v.lat)
        for e in self._edges.values():
            graph.add_edge(
                e.source,
                e.target,
                distance_m=e.distance_m,
                travel_time_s=e.travel_time_s,
                fuel_ml=e.fuel_ml,
                road_type=e.road_type,
                speed_kmh=e.speed_kmh,
            )
        return graph

    @classmethod
    def from_networkx(cls, graph: nx.DiGraph, name: str | None = None) -> "RoadNetwork":
        """Build a :class:`RoadNetwork` from a networkx graph.

        Nodes must carry ``lon`` / ``lat`` attributes; edges may carry any of
        the weight attributes used by :meth:`to_networkx`.
        """
        network = cls(name=name or str(graph.name or "road-network"))
        for node, data in graph.nodes(data=True):
            network.add_vertex(int(node), float(data["lon"]), float(data["lat"]))
        for source, target, data in graph.edges(data=True):
            road_type = data.get("road_type", RoadType.RESIDENTIAL)
            if not isinstance(road_type, RoadType):
                road_type = RoadType(int(road_type))
            network.add_edge(
                int(source),
                int(target),
                road_type=road_type,
                distance_m=data.get("distance_m"),
                speed_kmh=data.get("speed_kmh"),
                travel_time_s=data.get("travel_time_s"),
                fuel_ml=data.get("fuel_ml"),
            )
        return network

    def undirected_view(self) -> nx.Graph:
        """Undirected networkx view used by connectivity checks."""
        return self.to_networkx().to_undirected()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoadNetwork(name={self.name!r}, vertices={self.vertex_count}, "
            f"edges={self.edge_count})"
        )


@dataclass
class NetworkStatistics:
    """Descriptive statistics of a road network (used in reports and docs)."""

    vertex_count: int
    edge_count: int
    total_length_km: float
    road_type_counts: dict[RoadType, int] = field(default_factory=dict)
    bounding_box: BoundingBox | None = None

    @classmethod
    def of(cls, network: RoadNetwork) -> "NetworkStatistics":
        counts: dict[RoadType, int] = {}
        total_m = 0.0
        for edge in network.edges():
            counts[edge.road_type] = counts.get(edge.road_type, 0) + 1
            total_m += edge.distance_m
        box = network.bounding_box() if network.vertex_count else None
        return cls(
            vertex_count=network.vertex_count,
            edge_count=network.edge_count,
            total_length_km=total_m / 1000.0,
            road_type_counts=counts,
            bounding_box=box,
        )
