"""Road-network serialization.

Two formats are supported:

* a compact JSON format (vertices + edges with all four weight functions),
  used for caching generated networks between benchmark runs;
* a minimal OSM XML reader (:func:`load_osm_xml`) so that users with a real
  OpenStreetMap extract can run the pipeline on actual data.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from pathlib import Path

from .road_network import RoadNetwork
from .road_types import RoadType

_FORMAT_VERSION = 1


def save_json(network: RoadNetwork, path: str | Path) -> None:
    """Write ``network`` to ``path`` as JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "name": network.name,
        "vertices": [
            {"id": v.vertex_id, "lon": v.lon, "lat": v.lat} for v in network.vertices()
        ],
        "edges": [
            {
                "source": e.source,
                "target": e.target,
                "distance_m": e.distance_m,
                "travel_time_s": e.travel_time_s,
                "fuel_ml": e.fuel_ml,
                "road_type": int(e.road_type),
                "speed_kmh": e.speed_kmh,
            }
            for e in network.edges()
        ],
    }
    Path(path).write_text(json.dumps(payload))


def load_json(path: str | Path) -> RoadNetwork:
    """Read a network previously written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported road-network format version: {payload.get('format_version')}")
    network = RoadNetwork(name=payload.get("name", "road-network"))
    for vertex in payload["vertices"]:
        network.add_vertex(int(vertex["id"]), float(vertex["lon"]), float(vertex["lat"]))
    for edge in payload["edges"]:
        network.add_edge(
            int(edge["source"]),
            int(edge["target"]),
            road_type=RoadType(int(edge["road_type"])),
            distance_m=float(edge["distance_m"]),
            speed_kmh=float(edge["speed_kmh"]),
            travel_time_s=float(edge["travel_time_s"]),
            fuel_ml=float(edge["fuel_ml"]),
        )
    return network


def load_osm_xml(path: str | Path, name: str | None = None) -> RoadNetwork:
    """Load a road network from an OSM XML extract.

    Only ``way`` elements carrying a ``highway`` tag that maps to one of the
    six :class:`RoadType` classes are imported.  Ways are split into edges
    between consecutive member nodes; ``oneway=yes`` is honoured, all other
    ways become bidirectional edges.
    """
    path = Path(path)
    tree = ET.parse(path)
    root = tree.getroot()

    node_coords: dict[int, tuple[float, float]] = {}
    for node in root.iter("node"):
        node_coords[int(node.attrib["id"])] = (
            float(node.attrib["lon"]),
            float(node.attrib["lat"]),
        )

    network = RoadNetwork(name=name or path.stem)
    used_nodes: set[int] = set()
    ways: list[tuple[list[int], RoadType, bool, float | None]] = []

    for way in root.iter("way"):
        tags = {t.attrib["k"]: t.attrib["v"] for t in way.findall("tag")}
        highway = tags.get("highway")
        if highway is None:
            continue
        road_type = RoadType.from_osm_tag(highway)
        oneway = tags.get("oneway", "no").lower() in ("yes", "true", "1")
        maxspeed: float | None = None
        raw_speed = tags.get("maxspeed", "")
        if raw_speed and raw_speed.split()[0].isdigit():
            maxspeed = float(raw_speed.split()[0])
        refs = [int(nd.attrib["ref"]) for nd in way.findall("nd") if int(nd.attrib["ref"]) in node_coords]
        if len(refs) < 2:
            continue
        ways.append((refs, road_type, oneway, maxspeed))
        used_nodes.update(refs)

    for node_id in used_nodes:
        lon, lat = node_coords[node_id]
        network.add_vertex(node_id, lon, lat)

    for refs, road_type, oneway, maxspeed in ways:
        for i in range(len(refs) - 1):
            if refs[i] == refs[i + 1]:
                continue
            network.add_edge(
                refs[i],
                refs[i + 1],
                road_type=road_type,
                speed_kmh=maxspeed,
                bidirectional=not oneway,
            )
    return network
