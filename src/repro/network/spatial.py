"""Spatial primitives used throughout the library.

All functions work on plain ``(longitude, latitude)`` tuples expressed in
degrees (the order matches GeoJSON and OSM conventions).  Distances are
returned in meters.  The module also contains the polyline *band matching*
procedure from Fig. 14 of the paper, which is used to compare way-point paths
returned by an external routing service against ground-truth edge paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

EARTH_RADIUS_M = 6_371_008.8
"""Mean Earth radius in meters (IUGG)."""

LonLat = tuple[float, float]
"""A ``(longitude, latitude)`` pair in degrees."""


def haversine_m(a: LonLat, b: LonLat) -> float:
    """Great-circle distance in meters between two ``(lon, lat)`` points."""
    lon1, lat1 = math.radians(a[0]), math.radians(a[1])
    lon2, lat2 = math.radians(b[0]), math.radians(b[1])
    dlon = lon2 - lon1
    dlat = lat2 - lat1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


def equirectangular_m(a: LonLat, b: LonLat) -> float:
    """Fast equirectangular approximation of the distance in meters.

    Accurate to well under 0.5 % for the city / country scale distances this
    library works with, and several times faster than :func:`haversine_m`.
    """
    lat_mid = math.radians((a[1] + b[1]) / 2.0)
    dx = math.radians(b[0] - a[0]) * math.cos(lat_mid)
    dy = math.radians(b[1] - a[1])
    return EARTH_RADIUS_M * math.hypot(dx, dy)


def path_length_m(points: Sequence[LonLat]) -> float:
    """Total length in meters of the polyline through ``points``."""
    if len(points) < 2:
        return 0.0
    return sum(equirectangular_m(points[i], points[i + 1]) for i in range(len(points) - 1))


def midpoint(a: LonLat, b: LonLat) -> LonLat:
    """Planar midpoint of two points (sufficient at city scale)."""
    return ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)


def centroid(points: Iterable[LonLat]) -> LonLat:
    """Arithmetic centroid of a non-empty collection of points."""
    pts = list(points)
    if not pts:
        raise ValueError("centroid() requires at least one point")
    sx = sum(p[0] for p in pts)
    sy = sum(p[1] for p in pts)
    return (sx / len(pts), sy / len(pts))


@dataclass(frozen=True)
class LocalProjection:
    """Equirectangular projection around a reference latitude.

    Converts ``(lon, lat)`` degrees into local ``(x, y)`` meters so that
    planar geometry (point-to-segment distance, convex hulls, bands) can be
    computed with ordinary Euclidean formulas.
    """

    ref_lon: float
    ref_lat: float

    @classmethod
    def for_points(cls, points: Iterable[LonLat]) -> "LocalProjection":
        """Build a projection centred on the centroid of ``points``."""
        c = centroid(points)
        return cls(ref_lon=c[0], ref_lat=c[1])

    def to_xy(self, point: LonLat) -> tuple[float, float]:
        """Project ``(lon, lat)`` to local meters."""
        cos_lat = math.cos(math.radians(self.ref_lat))
        x = math.radians(point[0] - self.ref_lon) * cos_lat * EARTH_RADIUS_M
        y = math.radians(point[1] - self.ref_lat) * EARTH_RADIUS_M
        return (x, y)

    def to_lonlat(self, xy: tuple[float, float]) -> LonLat:
        """Inverse of :meth:`to_xy`."""
        cos_lat = math.cos(math.radians(self.ref_lat))
        lon = self.ref_lon + math.degrees(xy[0] / (EARTH_RADIUS_M * cos_lat))
        lat = self.ref_lat + math.degrees(xy[1] / EARTH_RADIUS_M)
        return (lon, lat)


def point_segment_distance_m(point: LonLat, seg_a: LonLat, seg_b: LonLat) -> float:
    """Distance in meters from ``point`` to the segment ``seg_a``–``seg_b``.

    Also usable as the emission distance in HMM map matching.
    """
    distance, _ = project_point_to_segment(point, seg_a, seg_b)
    return distance


def project_point_to_segment(
    point: LonLat, seg_a: LonLat, seg_b: LonLat
) -> tuple[float, float]:
    """Project ``point`` onto segment ``seg_a``–``seg_b``.

    Returns ``(distance_m, fraction)`` where ``fraction`` in ``[0, 1]`` is the
    relative position of the projection along the segment.
    """
    proj = LocalProjection(ref_lon=seg_a[0], ref_lat=seg_a[1])
    px, py = proj.to_xy(point)
    ax, ay = proj.to_xy(seg_a)
    bx, by = proj.to_xy(seg_b)
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq <= 0.0:
        return (math.hypot(px - ax, py - ay), 0.0)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len_sq
    t = max(0.0, min(1.0, t))
    cx, cy = ax + t * dx, ay + t * dy
    return (math.hypot(px - cx, py - cy), t)


def convex_hull(points: Sequence[LonLat]) -> list[LonLat]:
    """Convex hull (Andrew's monotone chain) of a point set.

    The hull is returned in counter-clockwise order without repeating the
    first point.  Degenerate inputs (fewer than three distinct points) return
    the distinct points themselves.
    """
    pts = sorted(set(points))
    if len(pts) <= 2:
        return pts

    def cross(o: LonLat, a: LonLat, b: LonLat) -> float:
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list[LonLat] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[LonLat] = []
    for p in reversed(pts):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return lower[:-1] + upper[:-1]


def polygon_area_km2(hull: Sequence[LonLat]) -> float:
    """Area in square kilometers of a (convex) polygon given in lon/lat."""
    if len(hull) < 3:
        return 0.0
    proj = LocalProjection.for_points(hull)
    xy = [proj.to_xy(p) for p in hull]
    area2 = 0.0
    for i in range(len(xy)):
        x1, y1 = xy[i]
        x2, y2 = xy[(i + 1) % len(xy)]
        area2 += x1 * y2 - x2 * y1
    return abs(area2) / 2.0 / 1e6


def max_diameter_km(points: Sequence[LonLat]) -> float:
    """Maximum pairwise distance in kilometers between points of a hull."""
    if len(points) < 2:
        return 0.0
    hull = convex_hull(points)
    if len(hull) < 2:
        return 0.0
    best = 0.0
    for i in range(len(hull)):
        for j in range(i + 1, len(hull)):
            best = max(best, equirectangular_m(hull[i], hull[j]))
    return best / 1000.0


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box in lon/lat degrees."""

    min_lon: float
    min_lat: float
    max_lon: float
    max_lat: float

    @classmethod
    def of(cls, points: Iterable[LonLat]) -> "BoundingBox":
        pts = list(points)
        if not pts:
            raise ValueError("BoundingBox.of() requires at least one point")
        lons = [p[0] for p in pts]
        lats = [p[1] for p in pts]
        return cls(min(lons), min(lats), max(lons), max(lats))

    def contains(self, point: LonLat) -> bool:
        return (
            self.min_lon <= point[0] <= self.max_lon
            and self.min_lat <= point[1] <= self.max_lat
        )

    def expanded(self, margin_m: float) -> "BoundingBox":
        """Return a box expanded by ``margin_m`` meters on every side."""
        lat_margin = math.degrees(margin_m / EARTH_RADIUS_M)
        lat_mid = math.radians((self.min_lat + self.max_lat) / 2.0)
        lon_margin = math.degrees(margin_m / (EARTH_RADIUS_M * max(1e-9, math.cos(lat_mid))))
        return BoundingBox(
            self.min_lon - lon_margin,
            self.min_lat - lat_margin,
            self.max_lon + lon_margin,
            self.max_lat + lat_margin,
        )

    @property
    def width_km(self) -> float:
        return equirectangular_m((self.min_lon, self.min_lat), (self.max_lon, self.min_lat)) / 1000.0

    @property
    def height_km(self) -> float:
        return equirectangular_m((self.min_lon, self.min_lat), (self.min_lon, self.max_lat)) / 1000.0


def match_waypoints_to_polyline(
    waypoints: Sequence[LonLat],
    polyline: Sequence[LonLat],
    band_m: float = 10.0,
) -> tuple[float, float]:
    """Band matching of an external service path against a ground-truth path.

    Implements the methodology of Fig. 14: the ground-truth path is widened
    into a band of ``band_m`` meters on each side; a way-point is *matched* if
    it falls inside the band; the ground-truth length between the projections
    of two consecutive matched way-points counts as matched length.

    Returns ``(matched_length_m, total_length_m)`` of the ground-truth
    polyline so that the caller can form the Eq. 1 style ratio.
    """
    total = path_length_m(polyline)
    if total <= 0.0 or len(waypoints) == 0 or len(polyline) < 2:
        return (0.0, total)

    # Cumulative ground-truth length up to the start of each segment.
    cumulative = [0.0]
    for i in range(len(polyline) - 1):
        cumulative.append(cumulative[-1] + equirectangular_m(polyline[i], polyline[i + 1]))

    def project_onto_path(point: LonLat) -> tuple[float, float]:
        """Return (distance to path, arc-length position of projection)."""
        best_dist = math.inf
        best_pos = 0.0
        for i in range(len(polyline) - 1):
            dist, frac = project_point_to_segment(point, polyline[i], polyline[i + 1])
            if dist < best_dist:
                seg_len = cumulative[i + 1] - cumulative[i]
                best_dist = dist
                best_pos = cumulative[i] + frac * seg_len
        return (best_dist, best_pos)

    projections: list[tuple[bool, float]] = []
    for wp in waypoints:
        dist, pos = project_onto_path(wp)
        projections.append((dist <= band_m, pos))

    matched = 0.0
    for i in range(len(projections) - 1):
        ok_a, pos_a = projections[i]
        ok_b, pos_b = projections[i + 1]
        if ok_a and ok_b:
            matched += abs(pos_b - pos_a)
    return (min(matched, total), total)
