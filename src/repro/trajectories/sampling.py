"""GPS sampling simulation.

Turns a ground-truth road-network path into a raw GPS trajectory by driving
along the path at edge speeds and emitting observations at a configurable
sampling interval with Gaussian position noise.  Two presets mirror the
paper's data sets: :func:`high_frequency_sampler` (1 Hz, D1-style) and
:func:`low_frequency_sampler` (0.03–0.1 Hz, D2-style).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..network.road_network import RoadNetwork
from ..network.spatial import LonLat
from ..routing.path import Path
from .models import GPSRecord, Trajectory


@dataclass(frozen=True)
class SamplingSpec:
    """How to turn a driven path into GPS observations."""

    interval_s: float
    noise_std_m: float
    speed_factor: float = 1.0
    """Multiplier on free-flow speeds (values < 1 model congestion)."""

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        if self.noise_std_m < 0:
            raise ValueError("noise standard deviation cannot be negative")
        if self.speed_factor <= 0:
            raise ValueError("speed factor must be positive")


def high_frequency_sampler(noise_std_m: float = 4.0) -> SamplingSpec:
    """1 Hz sampling with modest noise — mirrors the paper's D1 fleet."""
    return SamplingSpec(interval_s=1.0, noise_std_m=noise_std_m)


def low_frequency_sampler(interval_s: float = 20.0, noise_std_m: float = 8.0) -> SamplingSpec:
    """10–30 s sampling with larger noise — mirrors the paper's D2 taxis."""
    return SamplingSpec(interval_s=interval_s, noise_std_m=noise_std_m)


def _jitter(point: LonLat, noise_std_m: float, rng: random.Random) -> LonLat:
    if noise_std_m <= 0:
        return point
    # 1 degree latitude ~= 111.32 km; longitude scaled by cos(lat).
    import math

    dlat = rng.gauss(0.0, noise_std_m) / 111_320.0
    dlon = rng.gauss(0.0, noise_std_m) / (111_320.0 * max(0.2, math.cos(math.radians(point[1]))))
    return (point[0] + dlon, point[1] + dlat)


def sample_path(
    network: RoadNetwork,
    path: Path,
    spec: SamplingSpec,
    trajectory_id: int,
    driver_id: int,
    departure_time: float = 0.0,
    rng: random.Random | None = None,
    occupied: bool = True,
) -> Trajectory:
    """Simulate driving along ``path`` and emit a raw :class:`Trajectory`.

    The vehicle moves edge by edge at ``speed_factor`` times the edge's
    free-flow speed; a GPS record is emitted every ``spec.interval_s`` seconds
    of simulated time (plus one record at the very start and end).
    """
    rng = rng or random.Random(trajectory_id * 7919 + driver_id)
    records: list[GPSRecord] = []

    start = network.coordinates(path.source)
    records.append(
        GPSRecord(*_jitter(start, spec.noise_std_m, rng), timestamp=departure_time)
    )

    clock = departure_time
    next_emit = departure_time + spec.interval_s

    for source, target in path.edge_keys:
        edge = network.edge(source, target)
        a = network.coordinates(source)
        b = network.coordinates(target)
        speed = max(1.0, edge.speed_kmh * spec.speed_factor)
        edge_duration = edge.distance_m / (speed / 3.6)
        edge_end = clock + edge_duration
        while next_emit <= edge_end:
            t = (next_emit - clock) / edge_duration if edge_duration > 0 else 1.0
            point = (a[0] + (b[0] - a[0]) * t, a[1] + (b[1] - a[1]) * t)
            records.append(
                GPSRecord(
                    *_jitter(point, spec.noise_std_m, rng),
                    timestamp=next_emit,
                    speed_kmh=speed,
                )
            )
            next_emit += spec.interval_s
        clock = edge_end

    end = network.coordinates(path.destination)
    final_time = max(clock, records[-1].timestamp + 1e-3)
    records.append(GPSRecord(*_jitter(end, spec.noise_std_m, rng), timestamp=final_time))

    return Trajectory(
        trajectory_id=trajectory_id,
        driver_id=driver_id,
        records=tuple(records),
        occupied=occupied,
    )
