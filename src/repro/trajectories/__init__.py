"""Trajectory substrate: GPS models, simulation, map matching, statistics."""

from .models import GPSRecord, MatchedTrajectory, Trajectory, TrajectorySet, validate_against_network
from .sampling import SamplingSpec, high_frequency_sampler, low_frequency_sampler, sample_path
from .map_matching import HMMMapMatcher, MatchingConfig
from .generator import (
    DriverProfile,
    GeneratedData,
    GeneratorConfig,
    TrajectoryGenerator,
    emit_and_match,
)
from .statistics import (
    D1_DISTANCE_BANDS_KM,
    D2_DISTANCE_BANDS_KM,
    DistanceBandStatistics,
    band_index,
    distance_band_statistics,
    format_distance_table,
)
from .io import (
    load_matched_jsonl,
    load_raw_csv,
    save_matched_jsonl,
    save_raw_csv,
    split_by_driver,
)

__all__ = [
    "D1_DISTANCE_BANDS_KM",
    "D2_DISTANCE_BANDS_KM",
    "DistanceBandStatistics",
    "DriverProfile",
    "GPSRecord",
    "GeneratedData",
    "GeneratorConfig",
    "HMMMapMatcher",
    "MatchedTrajectory",
    "MatchingConfig",
    "SamplingSpec",
    "Trajectory",
    "TrajectoryGenerator",
    "TrajectorySet",
    "band_index",
    "distance_band_statistics",
    "emit_and_match",
    "format_distance_table",
    "high_frequency_sampler",
    "load_matched_jsonl",
    "load_raw_csv",
    "low_frequency_sampler",
    "sample_path",
    "save_matched_jsonl",
    "save_raw_csv",
    "split_by_driver",
    "validate_against_network",
]
