"""Trajectory-set statistics (Table II of the paper).

Table II reports, per data set, how many trajectories fall into each travel
distance band and the corresponding percentages.  This module computes the
same breakdown for any trajectory set and any band specification, and renders
it as a text table for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..network.road_network import RoadNetwork
from .models import MatchedTrajectory

D1_DISTANCE_BANDS_KM: tuple[tuple[float, float], ...] = (
    (0.0, 10.0),
    (10.0, 50.0),
    (50.0, 100.0),
    (100.0, 500.0),
)
"""The distance bands used for D1 (Denmark) in Table II and Figs. 10-13."""

D2_DISTANCE_BANDS_KM: tuple[tuple[float, float], ...] = (
    (0.0, 2.0),
    (2.0, 5.0),
    (5.0, 10.0),
    (10.0, 35.0),
)
"""The distance bands used for D2 (Chengdu) in Table II and Figs. 10-13."""


@dataclass(frozen=True)
class DistanceBandStatistics:
    """Counts and percentages of trajectories per distance band."""

    bands_km: tuple[tuple[float, float], ...]
    counts: tuple[int, ...]
    total: int

    @property
    def percentages(self) -> tuple[float, ...]:
        if self.total == 0:
            return tuple(0.0 for _ in self.counts)
        return tuple(100.0 * c / self.total for c in self.counts)

    def band_label(self, index: int) -> str:
        lo, hi = self.bands_km[index]
        return f"({lo:g},{hi:g}]"

    def as_rows(self) -> list[tuple[str, int, float]]:
        """Rows of ``(band label, count, percentage)``."""
        return [
            (self.band_label(i), self.counts[i], self.percentages[i])
            for i in range(len(self.bands_km))
        ]


def band_index(distance_km: float, bands_km: Sequence[tuple[float, float]]) -> int | None:
    """The index of the band containing ``distance_km`` (half-open ``(lo, hi]``)."""
    for i, (lo, hi) in enumerate(bands_km):
        if lo < distance_km <= hi:
            return i
    # Distances of exactly zero belong to the first band by convention.
    if distance_km == 0.0 and bands_km:
        return 0
    return None


def distance_band_statistics(
    trajectories: Sequence[MatchedTrajectory],
    network: RoadNetwork,
    bands_km: Sequence[tuple[float, float]] = D1_DISTANCE_BANDS_KM,
) -> DistanceBandStatistics:
    """Compute Table II style distance-band statistics."""
    counts = [0] * len(bands_km)
    total = 0
    for trajectory in trajectories:
        distance_km = trajectory.distance_km(network)
        index = band_index(distance_km, bands_km)
        if index is None:
            continue
        counts[index] += 1
        total += 1
    return DistanceBandStatistics(
        bands_km=tuple(bands_km), counts=tuple(counts), total=total
    )


def format_distance_table(stats: DistanceBandStatistics, title: str = "Trajectories") -> str:
    """Render the statistics as a Table-II-like text table."""
    lines = [title]
    header = "Distance (km)  " + "  ".join(f"{stats.band_label(i):>12}" for i in range(len(stats.bands_km)))
    lines.append(header)
    lines.append(
        "# Trajectories " + "  ".join(f"{c:>12d}" for c in stats.counts)
    )
    lines.append(
        "Percentage (%) " + "  ".join(f"{p:>12.1f}" for p in stats.percentages)
    )
    return "\n".join(lines)
