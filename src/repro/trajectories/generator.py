"""Synthetic trajectory generation (driver-population simulator).

The paper's evaluation uses two real GPS fleets that are not available
offline, so this module simulates the data-generating process those fleets
embody:

* a population of drivers, each with a mild personal bias (used by the
  personalised baselines Dom and TRIP);
* trip demand that is *skewed*: most trips start and end near a small number
  of hotspot areas, so some parts of the network are densely covered by
  trajectories while others are never visited — exactly the sparsity L2R
  addresses;
* route choice that is *preference-driven* rather than cost-minimal: the
  preference depends on the character of the trip (distance and the road-type
  functionality of the endpoints), plus per-driver idiosyncrasy.  This gives
  region pairs coherent routing preferences, the property L2R learns and
  transfers.

Generated ground-truth paths are returned as :class:`MatchedTrajectory`
objects directly (as if perfectly map matched).  Raw GPS emission +
HMM matching can be layered on with :func:`emit_and_match` to exercise the
full paper pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..exceptions import NoPathError
from ..network.road_network import RoadNetwork, VertexId
from ..network.road_types import RoadType
from ..network.spatial import equirectangular_m
from ..preferences.features import (
    LOCAL_ROADS,
    MAJOR_ROADS,
    RoadConditionFeature,
    single_type_feature,
)
from ..preferences.model import PreferenceVector
from ..routing.costs import CostFeature
from ..routing.dijkstra import fastest_path
from ..routing.preference_dijkstra import preference_dijkstra
from ..routing.path import Path
from .map_matching import HMMMapMatcher, MatchingConfig
from .models import MatchedTrajectory, Trajectory
from .sampling import SamplingSpec, high_frequency_sampler, sample_path


@dataclass(frozen=True)
class DriverProfile:
    """A simulated driver with a latent personal routing bias."""

    driver_id: int
    preferred_cost: CostFeature
    preferred_roads: RoadConditionFeature | None
    adherence: float
    """Probability that a trip follows the trip-level preference rather than
    simply the fastest path (models occasional 'lazy' route choices)."""


@dataclass(frozen=True)
class GeneratorConfig:
    """Controls of the trajectory generator."""

    n_drivers: int = 40
    n_trajectories: int = 800
    hotspot_count: int = 6
    hotspot_probability: float = 0.75
    """Probability that a trip endpoint is drawn near a hotspot (skew)."""
    hotspot_radius_m: float = 1_500.0
    min_trip_distance_m: float = 600.0
    adherence: float = 0.9
    long_trip_km: float = 10.0
    """Trips longer than this prefer travel time on major roads."""
    short_trip_km: float = 3.0
    """Trips shorter than this prefer distance on local roads."""
    peak_fraction: float = 0.5
    """Fraction of trips departing in the peak period."""
    seed: int = 42
    zone_preferences: bool = True
    """Derive trip preferences from the (source zone, destination zone) pair
    rather than from the trip distance alone; this makes region-pair
    preferences coherent (the property L2R learns and transfers) and makes
    ground-truth paths distinct from plain shortest / fastest paths."""
    congestion: bool = True
    """Simulate hidden traffic: a fraction of edges carry a congestion factor
    that local drivers know (and route around) but that is invisible in the
    public road network's free-flow weights.  This is the real-world mechanism
    that makes local drivers' paths deviate consistently from cost-centric
    routes — the phenomenon the paper's L2R exploits."""
    congested_major_fraction: float = 0.35
    congested_minor_fraction: float = 0.12
    congestion_factor_range: tuple[float, float] = (1.8, 3.2)


@dataclass
class GeneratedData:
    """Output of the generator: trajectories plus the ground-truth metadata."""

    trajectories: list[MatchedTrajectory]
    drivers: list[DriverProfile]
    hotspots: list[VertexId]
    trip_preferences: dict[int, PreferenceVector] = field(default_factory=dict)
    """The preference actually used for each trajectory id (ground truth for
    diagnostics; L2R never sees this)."""
    congested_network: "RoadNetwork | None" = None
    """The private network (with congestion) drivers routed on, for
    diagnostics only; evaluated algorithms must use the public network."""
    congestion_factors: dict[tuple[VertexId, VertexId], float] = field(default_factory=dict)


class TrajectoryGenerator:
    """Simulates a driver population producing trips on a road network."""

    def __init__(self, network: RoadNetwork, config: GeneratorConfig | None = None) -> None:
        self._network = network
        self._config = config or GeneratorConfig()
        self._rng = random.Random(self._config.seed)
        self._vertex_ids = list(network.vertex_ids())
        if len(self._vertex_ids) < 10:
            raise ValueError("the trajectory generator needs a network with at least 10 vertices")
        self._zone_of: dict[VertexId, int] = {}
        self._zone_table: dict[tuple[int, int], PreferenceVector] = {}

    # ------------------------------------------------------------------ #
    def generate(self) -> GeneratedData:
        """Generate the configured number of trajectories."""
        config = self._config
        drivers = self._make_drivers()
        hotspots = self._pick_hotspots()
        hotspot_members = self._hotspot_members(hotspots)
        self._zone_of = self._assign_zones(hotspots, hotspot_members)
        self._zone_table = self._zone_preference_table(len(hotspots))
        congestion_factors = self._draw_congestion() if config.congestion else {}
        routing_network = (
            self._apply_congestion(congestion_factors) if congestion_factors else self._network
        )

        trajectories: list[MatchedTrajectory] = []
        trip_preferences: dict[int, PreferenceVector] = {}
        trajectory_id = 0
        attempts = 0
        max_attempts = config.n_trajectories * 8

        while len(trajectories) < config.n_trajectories and attempts < max_attempts:
            attempts += 1
            driver = drivers[self._rng.randrange(len(drivers))]
            source = self._pick_endpoint(hotspot_members)
            destination = self._pick_endpoint(hotspot_members)
            if source == destination:
                continue
            straight = equirectangular_m(
                self._network.coordinates(source), self._network.coordinates(destination)
            )
            if straight < config.min_trip_distance_m:
                continue

            preference = self._trip_preference(driver, source, destination)
            try:
                if self._rng.random() < driver.adherence:
                    path = preference_dijkstra(routing_network, source, destination, preference)
                else:
                    path = fastest_path(routing_network, source, destination)
            except NoPathError:
                continue
            if len(path) < 3:
                continue

            departure = self._departure_time()
            duration = path.travel_time_s(routing_network)
            trajectories.append(
                MatchedTrajectory(
                    trajectory_id=trajectory_id,
                    driver_id=driver.driver_id,
                    path=path,
                    departure_time=departure,
                    duration_s=duration,
                )
            )
            trip_preferences[trajectory_id] = preference
            trajectory_id += 1

        return GeneratedData(
            trajectories=trajectories,
            drivers=drivers,
            hotspots=hotspots,
            trip_preferences=trip_preferences,
            congested_network=routing_network if congestion_factors else None,
            congestion_factors=congestion_factors,
        )

    # ------------------------------------------------------------------ #
    def _draw_congestion(self) -> dict[tuple[VertexId, VertexId], float]:
        """Per-edge congestion factors known to drivers but not to baselines."""
        config = self._config
        rng = random.Random(config.seed ^ 0x5F5E1)
        low, high = config.congestion_factor_range
        factors: dict[tuple[VertexId, VertexId], float] = {}
        seen_undirected: dict[tuple[VertexId, VertexId], float] = {}
        for edge in self._network.edges():
            undirected = (min(edge.source, edge.target), max(edge.source, edge.target))
            if undirected in seen_undirected:
                factor = seen_undirected[undirected]
            else:
                fraction = (
                    config.congested_major_fraction
                    if edge.road_type.is_major
                    else config.congested_minor_fraction
                )
                factor = rng.uniform(low, high) if rng.random() < fraction else 1.0
                seen_undirected[undirected] = factor
            if factor > 1.0:
                factors[edge.key] = factor
        return factors

    def _apply_congestion(
        self, factors: dict[tuple[VertexId, VertexId], float]
    ) -> RoadNetwork:
        """A private copy of the network with congested travel times."""
        congested = RoadNetwork(name=f"{self._network.name}-congested")
        for vertex in self._network.vertices():
            congested.add_vertex(vertex.vertex_id, vertex.lon, vertex.lat)
        for edge in self._network.edges():
            factor = factors.get(edge.key, 1.0)
            congested.add_edge(
                edge.source,
                edge.target,
                road_type=edge.road_type,
                distance_m=edge.distance_m,
                speed_kmh=edge.speed_kmh / factor,
                travel_time_s=edge.travel_time_s * factor,
                fuel_ml=edge.fuel_ml * (1.0 + 0.3 * (factor - 1.0)),
            )
        return congested

    # ------------------------------------------------------------------ #
    def _make_drivers(self) -> list[DriverProfile]:
        config = self._config
        drivers: list[DriverProfile] = []
        cost_cycle = [CostFeature.TRAVEL_TIME, CostFeature.DISTANCE, CostFeature.FUEL]
        road_cycle: list[RoadConditionFeature | None] = [
            MAJOR_ROADS,
            LOCAL_ROADS,
            None,
            single_type_feature(RoadType.PRIMARY),
        ]
        for driver_id in range(config.n_drivers):
            drivers.append(
                DriverProfile(
                    driver_id=driver_id,
                    preferred_cost=cost_cycle[driver_id % len(cost_cycle)],
                    preferred_roads=road_cycle[driver_id % len(road_cycle)],
                    adherence=min(1.0, max(0.5, self._rng.gauss(config.adherence, 0.05))),
                )
            )
        return drivers

    def _pick_hotspots(self) -> list[VertexId]:
        """Hotspot anchor vertices, spread across the network deterministically."""
        count = min(self._config.hotspot_count, len(self._vertex_ids))
        shuffled = list(self._vertex_ids)
        self._rng.shuffle(shuffled)
        return shuffled[:count]

    def _hotspot_members(self, hotspots: Sequence[VertexId]) -> list[list[VertexId]]:
        radius = self._config.hotspot_radius_m
        members: list[list[VertexId]] = []
        for anchor in hotspots:
            anchor_pos = self._network.coordinates(anchor)
            near = [
                vid
                for vid in self._vertex_ids
                if equirectangular_m(anchor_pos, self._network.coordinates(vid)) <= radius
            ]
            members.append(near or [anchor])
        return members

    def _pick_endpoint(self, hotspot_members: list[list[VertexId]]) -> VertexId:
        if hotspot_members and self._rng.random() < self._config.hotspot_probability:
            members = hotspot_members[self._rng.randrange(len(hotspot_members))]
            return members[self._rng.randrange(len(members))]
        return self._vertex_ids[self._rng.randrange(len(self._vertex_ids))]

    def _assign_zones(
        self, hotspots: Sequence[VertexId], hotspot_members: list[list[VertexId]]
    ) -> dict[VertexId, int]:
        """Map every vertex to its zone (the nearest hotspot).

        Hotspot members keep their own hotspot's zone; every other vertex is
        assigned to the geographically nearest hotspot, so that *every* trip
        has a well-defined (source zone, destination zone) pair and route
        choices are coherent per area pair — mirroring how the paper's local
        drivers behave consistently when traveling between two districts.
        """
        zone_of: dict[VertexId, int] = {}
        for zone, members in enumerate(hotspot_members):
            for vertex in members:
                zone_of.setdefault(vertex, zone)
        if not hotspots:
            return zone_of
        anchor_positions = [self._network.coordinates(anchor) for anchor in hotspots]
        for vertex in self._vertex_ids:
            if vertex in zone_of:
                continue
            position = self._network.coordinates(vertex)
            zone_of[vertex] = min(
                range(len(anchor_positions)),
                key=lambda z: equirectangular_m(position, anchor_positions[z]),
            )
        return zone_of

    def _zone_preference_table(self, n_zones: int) -> dict[tuple[int, int], PreferenceVector]:
        """A fixed preference per ordered zone pair.

        Local drivers mostly follow the arterial hierarchy (time-minimal
        routing with a preference for primary / major roads — which is *not*
        what plain Fastest over free-flow speeds produces, because Fastest
        gravitates to motorways), while trips between residential zones stick
        to local streets.  Keeping the palette dominated by arterial-following
        preferences makes route choices locally coherent across trips of
        different lengths — the property the paper's region-pair preferences
        rely on — while still being distinct from any single static cost.
        """
        arterial_time = PreferenceVector(
            master=CostFeature.TRAVEL_TIME, slave=single_type_feature(RoadType.PRIMARY)
        )
        major_time = PreferenceVector(master=CostFeature.TRAVEL_TIME, slave=MAJOR_ROADS)
        major_fuel = PreferenceVector(master=CostFeature.FUEL, slave=MAJOR_ROADS)
        local_distance = PreferenceVector(master=CostFeature.DISTANCE, slave=LOCAL_ROADS)
        palette = [
            arterial_time,
            major_time,
            arterial_time,
            major_fuel,
            arterial_time,
            local_distance,
            major_time,
            arterial_time,
        ]
        table: dict[tuple[int, int], PreferenceVector] = {}
        for a in range(n_zones):
            for b in range(n_zones):
                table[(a, b)] = palette[(a * 3 + b * 5) % len(palette)]
        return table

    def _trip_preference(
        self, driver: DriverProfile, source: VertexId, destination: VertexId
    ) -> PreferenceVector:
        """The preference governing this trip.

        With ``zone_preferences`` on, trips between hotspot zones follow the
        zone-pair preference table (coherent per region pair, the property L2R
        exploits); other trips fall back to a distance-based rule, and the
        driver's personal bias covers the remaining mid-range trips.
        """
        config = self._config
        if config.zone_preferences and self._zone_table:
            zone_s = self._zone_of.get(source)
            zone_d = self._zone_of.get(destination)
            if zone_s is not None and zone_d is not None:
                return self._zone_table[(zone_s, zone_d)]
        straight_km = (
            equirectangular_m(
                self._network.coordinates(source), self._network.coordinates(destination)
            )
            / 1000.0
        )
        if straight_km >= config.long_trip_km:
            return PreferenceVector(master=CostFeature.TRAVEL_TIME, slave=MAJOR_ROADS)
        if straight_km <= config.short_trip_km:
            return PreferenceVector(master=CostFeature.DISTANCE, slave=LOCAL_ROADS)
        return PreferenceVector(master=driver.preferred_cost, slave=driver.preferred_roads)

    def _departure_time(self) -> float:
        """Departure timestamp in seconds-of-day; bimodal peak / off-peak."""
        if self._rng.random() < self._config.peak_fraction:
            # Morning or evening peak.
            base = 8 * 3600 if self._rng.random() < 0.5 else 17 * 3600
            return base + self._rng.uniform(0, 3600)
        return self._rng.uniform(10 * 3600, 15 * 3600)


def emit_and_match(
    network: RoadNetwork,
    trajectories: Sequence[MatchedTrajectory],
    sampling: SamplingSpec | None = None,
    matcher: HMMMapMatcher | None = None,
    matching_config: MatchingConfig | None = None,
) -> list[MatchedTrajectory]:
    """Run the full GPS pipeline: emit raw GPS, then HMM-match it back.

    This exercises the same noisy observation process the paper's real data
    went through.  It is slower than using the ground-truth paths directly,
    so the large evaluation benchmarks use it on a sample only.
    """
    sampling = sampling or high_frequency_sampler()
    matcher = matcher or HMMMapMatcher(network, config=matching_config)
    raw: list[Trajectory] = []
    for matched in trajectories:
        raw.append(
            sample_path(
                network,
                matched.path,
                sampling,
                trajectory_id=matched.trajectory_id,
                driver_id=matched.driver_id,
                departure_time=matched.departure_time,
            )
        )
    return matcher.match_many(raw, skip_failures=True)


def ground_truth_path(network: RoadNetwork, trajectory: MatchedTrajectory) -> Path:
    """The ground-truth (driver-chosen) path of a generated trajectory."""
    return trajectory.path
