"""Trajectory data model.

A :class:`Trajectory` is a time-ordered sequence of :class:`GPSRecord`
observations produced by one vehicle on one trip.  A
:class:`MatchedTrajectory` additionally carries the road-network path produced
by map matching; it is the unit that the region-graph construction, preference
learning, and the evaluation harness consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..exceptions import TrajectoryError
from ..network.road_network import RoadNetwork, VertexId
from ..network.spatial import LonLat
from ..routing.path import Path


@dataclass(frozen=True)
class GPSRecord:
    """One GPS observation: position, timestamp (seconds), and optional speed."""

    lon: float
    lat: float
    timestamp: float
    speed_kmh: float | None = None

    @property
    def lonlat(self) -> LonLat:
        return (self.lon, self.lat)


@dataclass(frozen=True)
class Trajectory:
    """A raw (not yet map-matched) GPS trajectory."""

    trajectory_id: int
    driver_id: int
    records: tuple[GPSRecord, ...]
    occupied: bool = True
    """For taxi data: True while a passenger is on board (the paper only uses
    occupied parts of D2 trips)."""

    def __post_init__(self) -> None:
        if len(self.records) < 2:
            raise TrajectoryError(
                f"trajectory {self.trajectory_id} needs at least two GPS records"
            )
        times = [r.timestamp for r in self.records]
        if any(times[i] > times[i + 1] for i in range(len(times) - 1)):
            raise TrajectoryError(
                f"trajectory {self.trajectory_id} has non-monotone timestamps"
            )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[GPSRecord]:
        return iter(self.records)

    @property
    def departure_time(self) -> float:
        return self.records[0].timestamp

    @property
    def arrival_time(self) -> float:
        return self.records[-1].timestamp

    @property
    def duration_s(self) -> float:
        return self.arrival_time - self.departure_time

    @property
    def sampling_interval_s(self) -> float:
        """Mean time gap between consecutive records."""
        if len(self.records) < 2:
            return 0.0
        return self.duration_s / (len(self.records) - 1)

    @property
    def sampling_rate_hz(self) -> float:
        interval = self.sampling_interval_s
        return 1.0 / interval if interval > 0 else 0.0

    def coordinates(self) -> list[LonLat]:
        return [r.lonlat for r in self.records]


@dataclass(frozen=True)
class MatchedTrajectory:
    """A trajectory aligned with the road network by map matching."""

    trajectory_id: int
    driver_id: int
    path: Path
    departure_time: float
    duration_s: float
    raw: Trajectory | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise TrajectoryError(
                f"matched trajectory {self.trajectory_id} must visit at least two vertices"
            )

    @property
    def source(self) -> VertexId:
        return self.path.source

    @property
    def destination(self) -> VertexId:
        return self.path.destination

    @property
    def vertices(self) -> tuple[VertexId, ...]:
        return self.path.vertices

    def distance_m(self, network: RoadNetwork) -> float:
        return self.path.distance_m(network)

    def distance_km(self, network: RoadNetwork) -> float:
        return self.distance_m(network) / 1000.0

    def edges(self) -> Sequence[tuple[VertexId, VertexId]]:
        return self.path.edge_keys


TrajectorySet = list[MatchedTrajectory]
"""A collection of matched trajectories (the library's working unit)."""


def validate_against_network(
    trajectories: Sequence[MatchedTrajectory], network: RoadNetwork
) -> list[MatchedTrajectory]:
    """Return only the trajectories whose path is valid on ``network``."""
    return [t for t in trajectories if t.path.is_valid(network)]
