"""Trajectory (de)serialization.

Raw GPS trajectories use a CSV format with one record per line (the layout
commonly used for published taxi data sets); matched trajectories use a JSON
Lines format carrying the vertex path, which is compact and stream-friendly.
"""

from __future__ import annotations

import csv
import json
from collections import defaultdict
from pathlib import Path as FilePath
from typing import Iterable, Sequence

from ..routing.path import Path
from .models import GPSRecord, MatchedTrajectory, Trajectory

_CSV_HEADER = ["trajectory_id", "driver_id", "timestamp", "lon", "lat", "speed_kmh", "occupied"]


def save_raw_csv(trajectories: Iterable[Trajectory], path: str | FilePath) -> None:
    """Write raw GPS trajectories to a CSV file (one record per row)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_HEADER)
        for trajectory in trajectories:
            for record in trajectory.records:
                writer.writerow(
                    [
                        trajectory.trajectory_id,
                        trajectory.driver_id,
                        f"{record.timestamp:.3f}",
                        f"{record.lon:.7f}",
                        f"{record.lat:.7f}",
                        "" if record.speed_kmh is None else f"{record.speed_kmh:.2f}",
                        int(trajectory.occupied),
                    ]
                )


def load_raw_csv(path: str | FilePath) -> list[Trajectory]:
    """Read raw GPS trajectories previously written by :func:`save_raw_csv`."""
    grouped: dict[int, list[tuple[float, GPSRecord]]] = defaultdict(list)
    meta: dict[int, tuple[int, bool]] = {}
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            trajectory_id = int(row["trajectory_id"])
            speed = row.get("speed_kmh") or ""
            record = GPSRecord(
                lon=float(row["lon"]),
                lat=float(row["lat"]),
                timestamp=float(row["timestamp"]),
                speed_kmh=float(speed) if speed else None,
            )
            grouped[trajectory_id].append((record.timestamp, record))
            meta[trajectory_id] = (int(row["driver_id"]), bool(int(row.get("occupied", 1))))

    trajectories: list[Trajectory] = []
    for trajectory_id, items in sorted(grouped.items()):
        items.sort(key=lambda pair: pair[0])
        driver_id, occupied = meta[trajectory_id]
        trajectories.append(
            Trajectory(
                trajectory_id=trajectory_id,
                driver_id=driver_id,
                records=tuple(record for _, record in items),
                occupied=occupied,
            )
        )
    return trajectories


def save_matched_jsonl(trajectories: Iterable[MatchedTrajectory], path: str | FilePath) -> None:
    """Write matched trajectories as JSON Lines (one trajectory per line)."""
    with open(path, "w") as handle:
        for trajectory in trajectories:
            handle.write(
                json.dumps(
                    {
                        "trajectory_id": trajectory.trajectory_id,
                        "driver_id": trajectory.driver_id,
                        "vertices": list(trajectory.path.vertices),
                        "departure_time": trajectory.departure_time,
                        "duration_s": trajectory.duration_s,
                    }
                )
            )
            handle.write("\n")


def load_matched_jsonl(path: str | FilePath) -> list[MatchedTrajectory]:
    """Read matched trajectories previously written by :func:`save_matched_jsonl`."""
    trajectories: list[MatchedTrajectory] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            trajectories.append(
                MatchedTrajectory(
                    trajectory_id=int(payload["trajectory_id"]),
                    driver_id=int(payload["driver_id"]),
                    path=Path.of([int(v) for v in payload["vertices"]]),
                    departure_time=float(payload["departure_time"]),
                    duration_s=float(payload["duration_s"]),
                )
            )
    return trajectories


def split_by_driver(
    trajectories: Sequence[MatchedTrajectory],
) -> dict[int, list[MatchedTrajectory]]:
    """Group matched trajectories by driver id (used by Dom / TRIP baselines)."""
    grouped: dict[int, list[MatchedTrajectory]] = defaultdict(list)
    for trajectory in trajectories:
        grouped[trajectory.driver_id].append(trajectory)
    return dict(grouped)
