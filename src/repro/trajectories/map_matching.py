"""HMM map matching (Newson & Krumm style).

Aligns a raw GPS trajectory with the road-network path it traversed.  Each
GPS record gets candidate edges from the spatial index; emission probabilities
decrease with the perpendicular distance from the record to the candidate
edge; transition probabilities decrease with the difference between the
great-circle distance of consecutive records and the network distance between
the candidate positions.  Viterbi decoding picks the most likely candidate
sequence, which is then expanded into a connected vertex path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import MapMatchingError, NoPathError
from ..network.road_network import Edge, RoadNetwork, VertexId
from ..network.spatial import equirectangular_m
from ..network.spatial_index import SpatialIndex
from ..routing.costs import CostFeature, cost_function
from ..routing.dijkstra import dijkstra
from ..routing.path import Path
from .models import MatchedTrajectory, Trajectory


@dataclass(frozen=True)
class MatchingConfig:
    """Tuning knobs of the HMM map matcher."""

    candidate_radius_m: float = 120.0
    max_candidates: int = 6
    emission_sigma_m: float = 15.0
    transition_beta: float = 40.0
    max_route_detour_factor: float = 4.0
    """Candidate transitions whose network distance exceeds this factor times
    the great-circle distance are pruned (they imply an implausible detour)."""


@dataclass(frozen=True)
class _Candidate:
    edge: Edge
    distance_m: float

    @property
    def anchor(self) -> VertexId:
        """The vertex used to stitch the matched path (edge target)."""
        return self.edge.target


class HMMMapMatcher:
    """Hidden-Markov-model map matcher over a fixed road network."""

    def __init__(
        self,
        network: RoadNetwork,
        config: MatchingConfig | None = None,
        spatial_index: SpatialIndex | None = None,
    ) -> None:
        self._network = network
        self._config = config or MatchingConfig()
        self._index = spatial_index or SpatialIndex(network)
        self._distance_cost = cost_function(CostFeature.DISTANCE)

    # ------------------------------------------------------------------ #
    def match(self, trajectory: Trajectory) -> MatchedTrajectory:
        """Match one trajectory; raises :class:`MapMatchingError` on failure."""
        candidates = self._candidates_per_record(trajectory)
        states = self._viterbi(trajectory, candidates)
        path = self._stitch(states)
        return MatchedTrajectory(
            trajectory_id=trajectory.trajectory_id,
            driver_id=trajectory.driver_id,
            path=path,
            departure_time=trajectory.departure_time,
            duration_s=trajectory.duration_s,
            raw=trajectory,
        )

    def match_many(
        self, trajectories: list[Trajectory], skip_failures: bool = True
    ) -> list[MatchedTrajectory]:
        """Match a batch, optionally skipping trajectories that fail."""
        matched: list[MatchedTrajectory] = []
        for trajectory in trajectories:
            try:
                matched.append(self.match(trajectory))
            except MapMatchingError:
                if not skip_failures:
                    raise
        return matched

    # ------------------------------------------------------------------ #
    def _candidates_per_record(self, trajectory: Trajectory) -> list[list[_Candidate]]:
        config = self._config
        result: list[list[_Candidate]] = []
        for record in trajectory.records:
            found = self._index.candidate_edges(record.lonlat, config.candidate_radius_m)
            if not found:
                # Leave the record out rather than failing the whole match; a
                # single noisy outlier should not discard the trajectory.
                continue
            result.append(
                [_Candidate(edge=e, distance_m=d) for e, d in found[: config.max_candidates]]
            )
        if len(result) < 2:
            raise MapMatchingError(
                f"trajectory {trajectory.trajectory_id}: fewer than two records have "
                "candidate edges within the matching radius"
            )
        return result

    def _emission_log_prob(self, candidate: _Candidate) -> float:
        sigma = self._config.emission_sigma_m
        return -0.5 * (candidate.distance_m / sigma) ** 2

    def _transition_log_prob(
        self,
        prev: _Candidate,
        curr: _Candidate,
        great_circle_m: float,
    ) -> float:
        # Same candidate edge: the vehicle stayed on the edge, the network
        # movement is (approximately) the straight-line movement itself.
        if prev.edge.key == curr.edge.key:
            return 0.0
        network_m = self._network_distance(prev.anchor, curr.anchor)
        if network_m is None:
            return -math.inf
        # Prune only blatant detours; the margin absorbs the whole-edge
        # granularity of candidate anchors at dense sampling rates.
        detour_limit = max(
            self._config.max_route_detour_factor * great_circle_m, 3.0 * curr.edge.distance_m + 200.0
        )
        if network_m > detour_limit:
            return -math.inf
        delta = abs(great_circle_m - network_m)
        return -delta / self._config.transition_beta

    def _network_distance(self, source: VertexId, target: VertexId) -> float | None:
        if source == target:
            return 0.0
        try:
            path = dijkstra(self._network, source, target, self._distance_cost)
        except NoPathError:
            return None
        return path.distance_m(self._network)

    def _viterbi(
        self, trajectory: Trajectory, candidates: list[list[_Candidate]]
    ) -> list[_Candidate]:
        records = [r for r in trajectory.records]
        # candidates was built by skipping records with no candidates; rebuild
        # the record list consistently by re-filtering.
        usable_records = []
        usable_candidates = []
        idx = 0
        for record in records:
            found = self._index.candidate_edges(record.lonlat, self._config.candidate_radius_m)
            if not found:
                continue
            usable_records.append(record)
            usable_candidates.append(candidates[idx])
            idx += 1

        n = len(usable_candidates)
        scores: list[list[float]] = [[self._emission_log_prob(c) for c in usable_candidates[0]]]
        back: list[list[int]] = [[-1] * len(usable_candidates[0])]

        for t in range(1, n):
            great_circle_m = equirectangular_m(
                usable_records[t - 1].lonlat, usable_records[t].lonlat
            )
            row_scores: list[float] = []
            row_back: list[int] = []
            for j, curr in enumerate(usable_candidates[t]):
                best_score = -math.inf
                best_prev = -1
                emission = self._emission_log_prob(curr)
                for i, prev in enumerate(usable_candidates[t - 1]):
                    if scores[t - 1][i] == -math.inf:
                        continue
                    transition = self._transition_log_prob(prev, curr, great_circle_m)
                    candidate_score = scores[t - 1][i] + transition + emission
                    if candidate_score > best_score:
                        best_score = candidate_score
                        best_prev = i
                row_scores.append(best_score)
                row_back.append(best_prev)
            scores.append(row_scores)
            back.append(row_back)

        # Find the best terminal state; if the chain broke (all -inf), fall
        # back to the best prefix that is still connected.
        end_t = n - 1
        while end_t > 0 and all(s == -math.inf for s in scores[end_t]):
            end_t -= 1
        if end_t == 0 and all(s == -math.inf for s in scores[0]):
            raise MapMatchingError("Viterbi decoding failed: no feasible candidate sequence")

        best_j = max(range(len(scores[end_t])), key=lambda j: scores[end_t][j])
        sequence: list[_Candidate] = []
        t, j = end_t, best_j
        while t >= 0 and j >= 0:
            sequence.append(usable_candidates[t][j])
            j = back[t][j]
            t -= 1
        sequence.reverse()
        if len(sequence) < 2:
            raise MapMatchingError("Viterbi decoding produced fewer than two states")
        return sequence

    def _stitch(self, states: list[_Candidate]) -> Path:
        """Connect consecutive candidate anchors with network shortest paths."""
        vertices: list[VertexId] = [states[0].edge.source, states[0].edge.target]
        for prev, curr in zip(states, states[1:]):
            start = prev.anchor
            if curr.edge.source == start:
                segment = [start, curr.edge.target]
            elif curr.anchor == start:
                segment = [start]
            else:
                try:
                    connector = dijkstra(
                        self._network, start, curr.edge.source, self._distance_cost
                    )
                except NoPathError as exc:
                    raise MapMatchingError(
                        f"cannot connect matched states {start} -> {curr.edge.source}"
                    ) from exc
                segment = list(connector.vertices) + [curr.edge.target]
            for vertex in segment:
                if vertex != vertices[-1]:
                    vertices.append(vertex)
        # Remove immediate backtracks (u, v, u) introduced by noisy candidates.
        cleaned: list[VertexId] = []
        for vertex in vertices:
            if len(cleaned) >= 2 and cleaned[-2] == vertex:
                cleaned.pop()
            else:
                cleaned.append(vertex)
        if len(cleaned) < 2:
            raise MapMatchingError("matched path collapsed to a single vertex")
        return Path.of(cleaned)
