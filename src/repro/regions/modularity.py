"""Modularity gain for trajectory-graph clustering.

The clustering of Section IV-A merges two (simple or aggregate) vertices when
the modularity gain

``dQ_ij = s_ij / S - (S_i * S_j) / S^2``

is positive, where ``s_ij`` is the popularity of the edge between them,
``S_i`` / ``S_j`` are the vertices' popularities, and ``S`` is the total edge
popularity of the trajectory graph.  Non-adjacent vertices have zero gain and
are never merged.
"""

from __future__ import annotations


def modularity_gain(
    edge_popularity: float,
    popularity_i: float,
    popularity_j: float,
    total_popularity: float,
) -> float:
    """``dQ`` of merging two vertices connected by an edge.

    Returns 0.0 when the vertices are not connected (``edge_popularity == 0``)
    or when the graph carries no popularity at all.
    """
    if total_popularity <= 0 or edge_popularity <= 0:
        return 0.0
    return (edge_popularity / total_popularity) - (
        popularity_i * popularity_j / (total_popularity * total_popularity)
    )


def modularity(
    cluster_assignment: dict[int, int],
    edge_popularities: dict[tuple[int, int], float],
    total_popularity: float,
) -> float:
    """Global modularity ``Q`` of a clustering (used in tests and ablations).

    ``Q = sum_c [ s_in(c)/S - (S_c / S)^2 ]`` with ``s_in(c)`` the popularity
    of edges inside cluster ``c`` and ``S_c`` the popularity incident to it.
    """
    if total_popularity <= 0:
        return 0.0
    internal: dict[int, float] = {}
    incident: dict[int, float] = {}
    for (u, v), weight in edge_popularities.items():
        cu = cluster_assignment.get(u)
        cv = cluster_assignment.get(v)
        if cu is None or cv is None:
            continue
        incident[cu] = incident.get(cu, 0.0) + weight
        incident[cv] = incident.get(cv, 0.0) + weight
        if cu == cv:
            internal[cu] = internal.get(cu, 0.0) + weight
    quality = 0.0
    for cluster in incident:
        s_in = internal.get(cluster, 0.0)
        s_tot = incident[cluster]
        quality += s_in / total_popularity - (s_tot / (2.0 * total_popularity)) ** 2
    return quality
