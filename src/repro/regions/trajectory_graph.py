"""The trajectory graph (Section IV-A setting).

The trajectory graph is the sub-graph of the road network induced by the
vertices and edges that are traversed by at least one trajectory.  Each edge
carries a *popularity* ``s_ij`` — the number of trajectories that traversed it
— and a road type; each vertex carries popularity ``S_i = sum_j s_ij``.  The
graph is undirected (travel in either direction counts toward the same edge),
matching the modularity formulation of the clustering step.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..network.road_network import RoadNetwork, VertexId
from ..network.road_types import RoadType
from ..trajectories.models import MatchedTrajectory


@dataclass(frozen=True)
class TrajectoryGraphEdge:
    """An undirected trajectory-graph edge with its popularity and road type."""

    u: VertexId
    v: VertexId
    popularity: int
    road_type: RoadType

    @property
    def key(self) -> tuple[VertexId, VertexId]:
        return _ordered(self.u, self.v)


def _ordered(u: VertexId, v: VertexId) -> tuple[VertexId, VertexId]:
    return (u, v) if u <= v else (v, u)


class TrajectoryGraph:
    """Undirected popularity-weighted graph of trajectory-covered roads."""

    def __init__(self) -> None:
        self._popularity: dict[tuple[VertexId, VertexId], int] = {}
        self._road_type: dict[tuple[VertexId, VertexId], RoadType] = {}
        self._adjacency: dict[VertexId, set[VertexId]] = defaultdict(set)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_trajectories(
        cls,
        network: RoadNetwork,
        trajectories: Sequence[MatchedTrajectory],
    ) -> "TrajectoryGraph":
        """Build the trajectory graph of a matched trajectory set."""
        graph = cls()
        for trajectory in trajectories:
            for source, target in trajectory.path.edge_keys:
                road_type = network.w_rt(source, target)
                graph.add_traversal(source, target, road_type)
        return graph

    def add_traversal(self, u: VertexId, v: VertexId, road_type: RoadType, count: int = 1) -> None:
        """Record ``count`` trajectory traversals of the edge ``(u, v)``."""
        key = _ordered(u, v)
        self._popularity[key] = self._popularity.get(key, 0) + count
        self._road_type.setdefault(key, road_type)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    # ------------------------------------------------------------------ #
    @property
    def vertex_count(self) -> int:
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        return len(self._popularity)

    def vertices(self) -> Iterator[VertexId]:
        return iter(self._adjacency.keys())

    def edges(self) -> Iterator[TrajectoryGraphEdge]:
        for (u, v), popularity in self._popularity.items():
            yield TrajectoryGraphEdge(
                u=u, v=v, popularity=popularity, road_type=self._road_type[(u, v)]
            )

    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self._adjacency

    def neighbors(self, vertex: VertexId) -> set[VertexId]:
        return set(self._adjacency.get(vertex, set()))

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        return _ordered(u, v) in self._popularity

    def edge_popularity(self, u: VertexId, v: VertexId) -> int:
        """``s_ij`` — the number of trajectories that traversed the edge."""
        return self._popularity.get(_ordered(u, v), 0)

    def edge_road_type(self, u: VertexId, v: VertexId) -> RoadType:
        return self._road_type[_ordered(u, v)]

    def vertex_popularity(self, vertex: VertexId) -> int:
        """``S_i = sum_j s_ij`` over edges incident to ``vertex``."""
        return sum(self.edge_popularity(vertex, other) for other in self._adjacency.get(vertex, ()))

    def total_popularity(self) -> int:
        """``S`` — the sum of popularities of all edges in the graph."""
        return sum(self._popularity.values())

    def covered_vertices(self) -> set[VertexId]:
        return set(self._adjacency.keys())

    def covered_edges(self) -> set[tuple[VertexId, VertexId]]:
        """Undirected keys of all edges covered by trajectories."""
        return set(self._popularity.keys())

    def connected_components(self) -> list[set[VertexId]]:
        """Connected components (the trajectory graph need not be connected)."""
        seen: set[VertexId] = set()
        components: list[set[VertexId]] = []
        for start in self._adjacency:
            if start in seen:
                continue
            component: set[VertexId] = set()
            stack = [start]
            while stack:
                vertex = stack.pop()
                if vertex in component:
                    continue
                component.add(vertex)
                stack.extend(self._adjacency[vertex] - component)
            seen |= component
            components.append(component)
        return components

    def coverage_ratio(self, network: RoadNetwork) -> float:
        """Fraction of road-network vertices that are covered by trajectories."""
        if network.vertex_count == 0:
            return 0.0
        return self.vertex_count / network.vertex_count
