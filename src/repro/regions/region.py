"""Regions: clusters of road-network vertices with spatial descriptors.

A region is the unit of the region graph.  Besides its member vertices it
exposes the spatial descriptors the paper uses: the centroid (for the
``re.dis`` element of region-edge similarity and for greedy routing), the
convex-hull area and maximum diameter (Table IV), and the *functionality* —
the top-k road types of edges incident to the region's vertices (the ``re.F``
element of region-edge similarity).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from ..network.road_network import RoadNetwork, VertexId
from ..network.road_types import RoadType
from ..network.spatial import LonLat, centroid, max_diameter_km, polygon_area_km2, convex_hull

RegionId = int


@dataclass
class Region:
    """A cluster of road-network vertices."""

    region_id: RegionId
    vertices: frozenset[VertexId]
    road_type: RoadType | None = None
    """The dominant road type assigned by the clustering (None for singleton
    regions that were never merged)."""

    _centroid: LonLat | None = field(default=None, repr=False, compare=False)
    _functionality: tuple[RoadType, ...] | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.vertices:
            raise ValueError(f"region {self.region_id} has no member vertices")

    def __len__(self) -> int:
        return len(self.vertices)

    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self.vertices

    # ------------------------------------------------------------------ #
    def coordinates(self, network: RoadNetwork) -> list[LonLat]:
        return [network.coordinates(v) for v in self.vertices]

    def centroid(self, network: RoadNetwork) -> LonLat:
        """Centroid of the member vertices (cached after the first call)."""
        if self._centroid is None:
            object.__setattr__(self, "_centroid", centroid(self.coordinates(network)))
        return self._centroid  # type: ignore[return-value]

    def convex_hull(self, network: RoadNetwork) -> list[LonLat]:
        return convex_hull(self.coordinates(network))

    def area_km2(self, network: RoadNetwork) -> float:
        """Convex-hull area in km^2 (Table IV)."""
        return polygon_area_km2(self.convex_hull(network))

    def diameter_km(self, network: RoadNetwork) -> float:
        """Maximum pairwise distance between member vertices in km (Table IV)."""
        return max_diameter_km(self.coordinates(network))

    def functionality(self, network: RoadNetwork, top_k: int = 2) -> tuple[RoadType, ...]:
        """Top-k road types of the edges incident to the region's vertices."""
        if self._functionality is None or len(self._functionality) != top_k:
            counter: Counter[RoadType] = Counter()
            for vertex in self.vertices:
                for edge in network.iter_incident_edges(vertex):
                    counter[edge.road_type] += 1
            ranked = [rt for rt, _ in counter.most_common(top_k)]
            object.__setattr__(self, "_functionality", tuple(ranked))
        return self._functionality  # type: ignore[return-value]


@dataclass(frozen=True)
class RegionSizeBand:
    """One row of the Table IV region-size breakdown."""

    lower_km2: float
    upper_km2: float | None
    count: int
    percentage: float
    max_diameter_km: float

    @property
    def label(self) -> str:
        if self.upper_km2 is None:
            return f">{self.lower_km2:g}"
        return f"({self.lower_km2:g},{self.upper_km2:g}]"


def region_size_table(
    regions: Sequence[Region],
    network: RoadNetwork,
    bands_km2: Sequence[tuple[float, float | None]] = ((0.0, 2.0), (2.0, 10.0), (10.0, 100.0), (100.0, None)),
) -> list[RegionSizeBand]:
    """Compute the Table IV breakdown: region counts and max diameters per area band."""
    areas = [(region, region.area_km2(network)) for region in regions]
    total = len(areas)
    rows: list[RegionSizeBand] = []
    for lower, upper in bands_km2:
        members = [
            region
            for region, area in areas
            if area > lower and (upper is None or area <= upper)
        ] if lower > 0.0 else [
            region
            for region, area in areas
            if area >= lower and (upper is None or area <= upper)
        ]
        max_diameter = max((r.diameter_km(network) for r in members), default=0.0)
        rows.append(
            RegionSizeBand(
                lower_km2=lower,
                upper_km2=upper,
                count=len(members),
                percentage=100.0 * len(members) / total if total else 0.0,
                max_diameter_km=max_diameter,
            )
        )
    return rows


def format_region_size_table(rows: Sequence[RegionSizeBand], title: str = "Region sizes") -> str:
    """Render the Table IV breakdown as text."""
    lines = [title]
    lines.append("Size (km^2)      " + "  ".join(f"{row.label:>12}" for row in rows))
    lines.append(
        "Count (pct)      "
        + "  ".join(f"{row.count:>6d} ({row.percentage:4.1f}%)" for row in rows)
    )
    lines.append("Max diameter km  " + "  ".join(f"{row.max_diameter_km:>12.2f}" for row in rows))
    return "\n".join(lines)
