"""Algorithm 1: bottom-up, modularity-based, road-type-constrained clustering.

The algorithm works on a *working graph* whose nodes start as the simple
vertices of the trajectory graph and become aggregate vertices as merges
happen.  A priority queue ordered by popularity repeatedly pops the most
popular node ``vk``; adjacent nodes pass the qualification check
(:func:`check_qualification`, Table I) when the modularity gain is positive
and the road types are consistent; the merge selection
(:func:`select_for_merge`) keeps the largest same-road-type subset when ``vk``
is simple; edges to rejected neighbours are cut; the selected neighbours are
merged into a new aggregate vertex that goes back into the queue.  Nodes that
end up with no neighbours become regions.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from ..exceptions import ClusteringError
from ..network.road_types import RoadType
from ..network.road_network import VertexId
from .modularity import modularity_gain
from .trajectory_graph import TrajectoryGraph


@dataclass
class ClusterNode:
    """A node of the working graph: a simple vertex or an aggregate vertex."""

    node_id: int
    members: set[VertexId]
    popularity: float
    road_type: RoadType | None = None
    """``None`` for simple vertices; the aggregate's road type otherwise."""

    @property
    def is_aggregate(self) -> bool:
        return self.road_type is not None or len(self.members) > 1


@dataclass
class ClusteringResult:
    """The output of Algorithm 1."""

    clusters: list[set[VertexId]]
    cluster_road_types: list[RoadType | None]
    merges: int = 0
    iterations: int = 0

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    def assignment(self) -> dict[VertexId, int]:
        """Mapping vertex id -> cluster index."""
        mapping: dict[VertexId, int] = {}
        for index, members in enumerate(self.clusters):
            for vertex in members:
                mapping[vertex] = index
        return mapping


@dataclass
class _WorkingGraph:
    """Mutable popularity/road-type adjacency used during clustering."""

    nodes: dict[int, ClusterNode] = field(default_factory=dict)
    popularity: dict[tuple[int, int], float] = field(default_factory=dict)
    road_type: dict[tuple[int, int], RoadType] = field(default_factory=dict)
    adjacency: dict[int, set[int]] = field(default_factory=dict)
    total_popularity: float = 0.0

    @staticmethod
    def _key(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def edge_popularity(self, a: int, b: int) -> float:
        return self.popularity.get(self._key(a, b), 0.0)

    def edge_road_type(self, a: int, b: int) -> RoadType:
        return self.road_type[self._key(a, b)]

    def remove_edge(self, a: int, b: int) -> None:
        key = self._key(a, b)
        self.popularity.pop(key, None)
        self.road_type.pop(key, None)
        self.adjacency.get(a, set()).discard(b)
        self.adjacency.get(b, set()).discard(a)

    def add_edge(self, a: int, b: int, popularity: float, road_type: RoadType) -> None:
        key = self._key(a, b)
        if key in self.popularity:
            # Parallel edges after a merge: popularities accumulate, the road
            # type of the more popular constituent wins.
            if popularity > self.popularity[key]:
                self.road_type[key] = road_type
            self.popularity[key] += popularity
        else:
            self.popularity[key] = popularity
            self.road_type[key] = road_type
        self.adjacency.setdefault(a, set()).add(b)
        self.adjacency.setdefault(b, set()).add(a)

    def remove_node(self, node_id: int) -> None:
        for neighbor in list(self.adjacency.get(node_id, ())):
            self.remove_edge(node_id, neighbor)
        self.adjacency.pop(node_id, None)
        self.nodes.pop(node_id, None)


def check_qualification(
    graph: _WorkingGraph, vk: ClusterNode, vj: ClusterNode
) -> bool:
    """``CheckQ(vk, vj)``: positive modularity gain plus Table I road-type rules."""
    edge_pop = graph.edge_popularity(vk.node_id, vj.node_id)
    gain = modularity_gain(edge_pop, vk.popularity, vj.popularity, graph.total_popularity)
    if gain <= 0.0:
        return False
    edge_rt = graph.edge_road_type(vk.node_id, vj.node_id)
    k_simple = not vk.is_aggregate
    j_simple = not vj.is_aggregate
    if k_simple and j_simple:
        return True
    if not k_simple and j_simple:
        return vk.road_type == edge_rt
    if k_simple and not j_simple:
        return vj.road_type == edge_rt
    return vk.road_type == vj.road_type


def select_for_merge(
    graph: _WorkingGraph, vk: ClusterNode, qualified: list[ClusterNode]
) -> list[ClusterNode]:
    """``SelectM(vk, VB)``: the subset of qualified neighbours to merge.

    If ``vk`` is an aggregate vertex all qualified neighbours are selected
    (Table I already forced their road types to match).  If ``vk`` is simple,
    the largest subset whose connecting edges share a single road type wins.
    """
    if not qualified:
        return []
    if vk.is_aggregate:
        return list(qualified)
    by_road_type: dict[RoadType, list[ClusterNode]] = {}
    for node in qualified:
        road_type = graph.edge_road_type(vk.node_id, node.node_id)
        by_road_type.setdefault(road_type, []).append(node)
    best_type = max(by_road_type, key=lambda rt: (len(by_road_type[rt]), -int(rt)))
    return by_road_type[best_type]


class BottomUpClustering:
    """Runs Algorithm 1 over a :class:`TrajectoryGraph`."""

    def __init__(self, enforce_road_types: bool = True) -> None:
        self._enforce_road_types = enforce_road_types
        self._id_counter = itertools.count()

    # ------------------------------------------------------------------ #
    def cluster(self, trajectory_graph: TrajectoryGraph) -> ClusteringResult:
        """Cluster the trajectory graph into regions."""
        if trajectory_graph.vertex_count == 0:
            raise ClusteringError("cannot cluster an empty trajectory graph")

        graph = self._build_working_graph(trajectory_graph)
        # Priority queue of (-popularity, tiebreak, node_id); stale entries are
        # skipped when popped (lazy deletion).
        heap: list[tuple[float, int, int]] = []
        alive: set[int] = set(graph.nodes)
        for node in graph.nodes.values():
            heapq.heappush(heap, (-node.popularity, node.node_id, node.node_id))

        clusters: list[set[VertexId]] = []
        cluster_types: list[RoadType | None] = []
        merges = 0
        iterations = 0

        while heap:
            _, _, node_id = heapq.heappop(heap)
            if node_id not in alive:
                continue
            vk = graph.nodes[node_id]
            iterations += 1

            adjacent_ids = list(graph.adjacency.get(node_id, set()))
            if not adjacent_ids:
                clusters.append(set(vk.members))
                cluster_types.append(vk.road_type)
                alive.discard(node_id)
                graph.remove_node(node_id)
                continue

            adjacent = [graph.nodes[a] for a in adjacent_ids]
            qualified = [vj for vj in adjacent if self._check(graph, vk, vj)]
            selected = select_for_merge(graph, vk, qualified)
            selected_ids = {vj.node_id for vj in selected}

            # Cut the graph between vk and the rejected neighbours.
            for vj in adjacent:
                if vj.node_id not in selected_ids:
                    graph.remove_edge(node_id, vj.node_id)

            if not selected:
                # Nothing to merge; vk will be popped again and either merge
                # later (if new edges appear - they cannot) or become a
                # cluster because all its edges were just removed.
                heapq.heappush(heap, (-vk.popularity, vk.node_id, vk.node_id))
                continue

            merged = self._merge(graph, vk, selected)
            merges += len(selected)
            alive.discard(node_id)
            for vj in selected:
                alive.discard(vj.node_id)
            alive.add(merged.node_id)
            heapq.heappush(heap, (-merged.popularity, merged.node_id, merged.node_id))

        return ClusteringResult(
            clusters=clusters,
            cluster_road_types=cluster_types,
            merges=merges,
            iterations=iterations,
        )

    # ------------------------------------------------------------------ #
    def _check(self, graph: _WorkingGraph, vk: ClusterNode, vj: ClusterNode) -> bool:
        if self._enforce_road_types:
            return check_qualification(graph, vk, vj)
        edge_pop = graph.edge_popularity(vk.node_id, vj.node_id)
        gain = modularity_gain(edge_pop, vk.popularity, vj.popularity, graph.total_popularity)
        return gain > 0.0

    def _build_working_graph(self, trajectory_graph: TrajectoryGraph) -> _WorkingGraph:
        graph = _WorkingGraph()
        vertex_to_node: dict[VertexId, int] = {}
        for vertex in trajectory_graph.vertices():
            node_id = next(self._id_counter)
            vertex_to_node[vertex] = node_id
            graph.nodes[node_id] = ClusterNode(
                node_id=node_id,
                members={vertex},
                popularity=float(trajectory_graph.vertex_popularity(vertex)),
                road_type=None,
            )
            graph.adjacency[node_id] = set()
        for edge in trajectory_graph.edges():
            graph.add_edge(
                vertex_to_node[edge.u],
                vertex_to_node[edge.v],
                popularity=float(edge.popularity),
                road_type=edge.road_type,
            )
        graph.total_popularity = float(trajectory_graph.total_popularity())
        return graph

    def _merge(
        self, graph: _WorkingGraph, vk: ClusterNode, selected: list[ClusterNode]
    ) -> ClusterNode:
        """Merge ``vk`` with all selected neighbours into one aggregate node."""
        new_id = next(self._id_counter)
        members = set(vk.members)
        popularity = vk.popularity
        # The aggregate road type: for a simple vk it is the road type of the
        # merging edges (all selected edges share it by SelectM); an aggregate
        # vk keeps its own road type (Table I forced consistency).
        if vk.is_aggregate:
            road_type = vk.road_type
        else:
            road_type = graph.edge_road_type(vk.node_id, selected[0].node_id)

        merged_ids = {vk.node_id} | {vj.node_id for vj in selected}
        for vj in selected:
            members |= vj.members
            popularity += vj.popularity

        new_node = ClusterNode(
            node_id=new_id, members=members, popularity=popularity, road_type=road_type
        )
        graph.nodes[new_id] = new_node
        graph.adjacency[new_id] = set()

        # Re-wire edges from the merged nodes to the outside world.
        for old_id in merged_ids:
            for neighbor in list(graph.adjacency.get(old_id, set())):
                if neighbor in merged_ids:
                    continue
                pop = graph.edge_popularity(old_id, neighbor)
                rt = graph.edge_road_type(old_id, neighbor)
                graph.add_edge(new_id, neighbor, pop, rt)
            graph.remove_node(old_id)
        return new_node


def cluster_trajectory_graph(
    trajectory_graph: TrajectoryGraph, enforce_road_types: bool = True
) -> ClusteringResult:
    """Convenience wrapper: run Algorithm 1 with default settings."""
    return BottomUpClustering(enforce_road_types=enforce_road_types).cluster(trajectory_graph)
