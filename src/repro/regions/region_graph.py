"""The region graph (Section IV-B).

Region vertices are the clusters produced by Algorithm 1.  Region edges come
from two sources:

* **T-edges** — for every trajectory that visits vertices of two regions, a
  region edge between those regions carries the concrete road-network path the
  trajectory used between leaving the first region and entering the second
  (plus the corresponding *transfer centers*);
* **B-edges** — added by a BFS-based procedure on the original road network so
  that the region graph becomes connected; B-edges initially carry no paths
  and later receive paths materialized from transferred preferences (Step 3).

The region graph also maintains *inner-region paths* — the sub-paths
trajectories used inside a region — which serve same-region routing requests.
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..exceptions import RegionGraphError
from ..network.road_network import RoadNetwork, VertexId
from ..network.road_types import RoadType
from ..network.spatial import equirectangular_m
from ..routing.path import Path
from ..trajectories.models import MatchedTrajectory
from .clustering import ClusteringResult
from .region import Region, RegionId

if TYPE_CHECKING:  # pragma: no cover
    from ..preferences.model import PreferenceVector


@dataclass
class RegionEdge:
    """An edge of the region graph (either a T-edge or a B-edge)."""

    region_a: RegionId
    region_b: RegionId
    kind: str
    """``"T"`` for trajectory-derived edges, ``"B"`` for BFS-derived edges."""
    centroid_distance_m: float = 0.0
    functionality: frozenset[tuple[RoadType, RoadType]] = frozenset()
    """Cartesian product of the two regions' top-k road-type sets (``re.F``)."""
    path_counts: Counter = field(default_factory=Counter)
    """Multiset of paths (keyed by vertex tuple) used by trajectories."""
    transfer_pairs: set[tuple[VertexId, VertexId]] = field(default_factory=set)
    """``(exit transfer center in region_a, entry transfer center in region_b)``."""
    preference: "PreferenceVector | None" = None
    """Learned (T-edge) or transferred (B-edge) routing preference."""
    preference_transferred: bool = False
    """True when the preference came from the transfer step rather than learning."""

    @property
    def key(self) -> tuple[RegionId, RegionId]:
        return (self.region_a, self.region_b)

    @property
    def is_t_edge(self) -> bool:
        return self.kind == "T"

    @property
    def is_b_edge(self) -> bool:
        return self.kind == "B"

    @property
    def popularity(self) -> int:
        """Number of trajectory traversals recorded on this edge."""
        return sum(self.path_counts.values())

    def add_path(self, path: Path, count: int = 1) -> None:
        self.path_counts[path.vertices] += count

    def paths(self) -> list[Path]:
        """All distinct paths associated with this edge."""
        return [Path(vertices=vertices) for vertices in self.path_counts]

    def most_popular_path(self) -> Path | None:
        """The path used by the largest number of trajectories (None if empty)."""
        if not self.path_counts:
            return None
        vertices, _ = self.path_counts.most_common(1)[0]
        return Path(vertices=vertices)


class RegionGraph:
    """The region graph ``G_R = (V_R, E_R)`` with T-edges and B-edges."""

    def __init__(self, network: RoadNetwork, regions: Sequence[Region], functionality_top_k: int = 2) -> None:
        self._network = network
        self._regions: dict[RegionId, Region] = {r.region_id: r for r in regions}
        self._vertex_to_region: dict[VertexId, RegionId] = {}
        for region in regions:
            for vertex in region.vertices:
                self._vertex_to_region[vertex] = region.region_id
        self._edges: dict[tuple[RegionId, RegionId], RegionEdge] = {}
        self._adjacency: dict[RegionId, set[RegionId]] = defaultdict(set)
        self._inner_paths: dict[RegionId, Counter] = defaultdict(Counter)
        self._transfer_centers: dict[RegionId, set[VertexId]] = defaultdict(set)
        self._functionality_top_k = functionality_top_k

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def region_count(self) -> int:
        return len(self._regions)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def regions(self) -> Iterator[Region]:
        return iter(self._regions.values())

    def region(self, region_id: RegionId) -> Region:
        try:
            return self._regions[region_id]
        except KeyError:
            raise RegionGraphError(f"unknown region id {region_id}") from None

    def region_of(self, vertex: VertexId) -> RegionId | None:
        """The region containing ``vertex`` or ``None`` if it is uncovered."""
        return self._vertex_to_region.get(vertex)

    def edges(self) -> Iterator[RegionEdge]:
        return iter(self._edges.values())

    def t_edges(self) -> list[RegionEdge]:
        return [e for e in self._edges.values() if e.is_t_edge]

    def b_edges(self) -> list[RegionEdge]:
        return [e for e in self._edges.values() if e.is_b_edge]

    def has_edge(self, region_a: RegionId, region_b: RegionId) -> bool:
        return (region_a, region_b) in self._edges

    def edge(self, region_a: RegionId, region_b: RegionId) -> RegionEdge:
        try:
            return self._edges[(region_a, region_b)]
        except KeyError:
            raise RegionGraphError(f"no region edge ({region_a}, {region_b})") from None

    def neighbors(self, region_id: RegionId) -> set[RegionId]:
        return set(self._adjacency.get(region_id, set()))

    def transfer_centers(self, region_id: RegionId) -> set[VertexId]:
        """Vertices where trajectories entered or left the region."""
        centers = self._transfer_centers.get(region_id, set())
        if centers:
            return set(centers)
        # Regions never traversed across their boundary fall back to all of
        # their vertices as potential connection points.
        return set(self.region(region_id).vertices)

    def inner_paths(self, region_id: RegionId) -> list[tuple[Path, int]]:
        """Inner-region paths with their traversal counts."""
        return [(Path(vertices=v), c) for v, c in self._inner_paths.get(region_id, Counter()).items()]

    def region_centroid(self, region_id: RegionId) -> tuple[float, float]:
        return self.region(region_id).centroid(self._network)

    def centroid_distance_m(self, region_a: RegionId, region_b: RegionId) -> float:
        return equirectangular_m(self.region_centroid(region_a), self.region_centroid(region_b))

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _edge_functionality(
        self, region_a: RegionId, region_b: RegionId
    ) -> frozenset[tuple[RoadType, RoadType]]:
        fa = self.region(region_a).functionality(self._network, self._functionality_top_k)
        fb = self.region(region_b).functionality(self._network, self._functionality_top_k)
        return frozenset((a, b) for a in fa for b in fb)

    def _get_or_create_edge(self, region_a: RegionId, region_b: RegionId, kind: str) -> RegionEdge:
        key = (region_a, region_b)
        edge = self._edges.get(key)
        if edge is None:
            edge = RegionEdge(
                region_a=region_a,
                region_b=region_b,
                kind=kind,
                centroid_distance_m=self.centroid_distance_m(region_a, region_b),
                functionality=self._edge_functionality(region_a, region_b),
            )
            self._edges[key] = edge
            self._adjacency[region_a].add(region_b)
            self._adjacency[region_b].add(region_a)
        elif kind == "T" and edge.kind == "B":
            # A trajectory traversal upgrades a B-edge to a T-edge.
            edge.kind = "T"
        return edge

    def add_trajectory(self, trajectory: MatchedTrajectory, max_region_pairs: int | None = None) -> int:
        """Register one trajectory: T-edges, transfer centers, inner paths.

        Returns the number of region edges this trajectory touched.  The
        optional ``max_region_pairs`` caps the quadratic blow-up for
        trajectories that traverse very many regions (the paper notes a
        trajectory through ``m`` regions yields up to ``m(m-1)/2`` edges).
        """
        visits = self._region_visits(trajectory)
        touched = 0

        # Inner-region paths.
        for region_id, enter_idx, exit_idx in visits:
            if exit_idx > enter_idx:
                inner = trajectory.path.vertices[enter_idx : exit_idx + 1]
                self._inner_paths[region_id][inner] += 1

        # T-edges for each ordered pair of visited regions.
        pair_budget = max_region_pairs if max_region_pairs is not None else len(visits) ** 2
        for i in range(len(visits)):
            for j in range(i + 1, len(visits)):
                if touched >= pair_budget:
                    return touched
                region_i, _, exit_i = visits[i]
                region_j, enter_j, _ = visits[j]
                if region_i == region_j:
                    continue
                exit_vertex = trajectory.path.vertices[exit_i]
                enter_vertex = trajectory.path.vertices[enter_j]
                connecting = Path(vertices=trajectory.path.vertices[exit_i : enter_j + 1])
                edge = self._get_or_create_edge(region_i, region_j, kind="T")
                edge.add_path(connecting)
                edge.transfer_pairs.add((exit_vertex, enter_vertex))
                self._transfer_centers[region_i].add(exit_vertex)
                self._transfer_centers[region_j].add(enter_vertex)
                touched += 1
        return touched

    def _region_visits(self, trajectory: MatchedTrajectory) -> list[tuple[RegionId, int, int]]:
        """Consecutive runs of the trajectory inside regions.

        Returns ``(region_id, enter_index, exit_index)`` triples in traversal
        order; vertices not belonging to any region break the runs.
        """
        visits: list[tuple[RegionId, int, int]] = []
        current: RegionId | None = None
        start_idx = 0
        for idx, vertex in enumerate(trajectory.path.vertices):
            region_id = self._vertex_to_region.get(vertex)
            if region_id != current:
                if current is not None:
                    visits.append((current, start_idx, idx - 1))
                current = region_id
                start_idx = idx
        if current is not None:
            visits.append((current, start_idx, len(trajectory.path.vertices) - 1))
        return visits

    def connect_with_bfs(self) -> int:
        """Add B-edges until every region is connected to a nearby region.

        Implements the BFS construction of Section IV-B: for each region a
        multi-source BFS on the original road network starts from all the
        region's vertices; when the frontier reaches a vertex of a different
        region that vertex is not expanded further; region pairs discovered
        this way that have no region edge yet get a B-edge (both directions).
        Returns the number of (undirected) B-edges added.
        """
        added = 0
        for region in self._regions.values():
            reached = self._bfs_reachable_regions(region)
            for other in reached:
                if other == region.region_id:
                    continue
                if self.has_edge(region.region_id, other) or self.has_edge(other, region.region_id):
                    continue
                self._get_or_create_edge(region.region_id, other, kind="B")
                self._get_or_create_edge(other, region.region_id, kind="B")
                added += 1
        return added

    def _bfs_reachable_regions(self, region: Region) -> set[RegionId]:
        """Regions whose vertices a BFS from ``region`` reaches first."""
        visited: set[VertexId] = set(region.vertices)
        queue: deque[VertexId] = deque(region.vertices)
        reached: set[RegionId] = set()
        while queue:
            vertex = queue.popleft()
            # iter_neighbors avoids materializing a fresh set per BFS pop.
            for neighbor in self._network.iter_neighbors(vertex):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                other_region = self._vertex_to_region.get(neighbor)
                if other_region is None:
                    queue.append(neighbor)
                elif other_region != region.region_id:
                    reached.add(other_region)
                    # Do not expand beyond a foreign region's vertex.
                else:
                    queue.append(neighbor)
        return reached

    # ------------------------------------------------------------------ #
    # Analysis helpers
    # ------------------------------------------------------------------ #
    def is_connected(self) -> bool:
        """True if the region graph is connected (ignoring edge direction)."""
        if not self._regions:
            return True
        start = next(iter(self._regions))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor in self._adjacency.get(current, ()):  # undirected adjacency
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(self._regions)

    def undirected_edge_keys(self) -> set[tuple[RegionId, RegionId]]:
        """Canonical (min, max) keys of all region edges."""
        keys: set[tuple[RegionId, RegionId]] = set()
        for a, b in self._edges:
            keys.add((a, b) if a <= b else (b, a))
        return keys

    def statistics(self) -> dict[str, float]:
        """Summary statistics used in reports and tests."""
        t_edges = self.t_edges()
        b_edges = self.b_edges()
        return {
            "regions": float(self.region_count),
            "t_edges": float(len(t_edges)),
            "b_edges": float(len(b_edges)),
            "mean_region_size": (
                sum(len(r) for r in self._regions.values()) / self.region_count
                if self.region_count
                else 0.0
            ),
            "connected": 1.0 if self.is_connected() else 0.0,
        }


def build_region_graph(
    network: RoadNetwork,
    clustering: ClusteringResult,
    trajectories: Iterable[MatchedTrajectory],
    functionality_top_k: int = 2,
    connect: bool = True,
    max_region_pairs_per_trajectory: int | None = 200,
) -> RegionGraph:
    """Build the full region graph from a clustering and a trajectory set."""
    regions = [
        Region(region_id=i, vertices=frozenset(members), road_type=road_type)
        for i, (members, road_type) in enumerate(
            zip(clustering.clusters, clustering.cluster_road_types)
        )
    ]
    graph = RegionGraph(network, regions, functionality_top_k=functionality_top_k)
    for trajectory in trajectories:
        graph.add_trajectory(trajectory, max_region_pairs=max_region_pairs_per_trajectory)
    if connect:
        graph.connect_with_bfs()
    return graph
