"""Region construction: trajectory graph, modularity clustering, region graph."""

from .trajectory_graph import TrajectoryGraph, TrajectoryGraphEdge
from .modularity import modularity, modularity_gain
from .clustering import (
    BottomUpClustering,
    ClusteringResult,
    ClusterNode,
    cluster_trajectory_graph,
)
from .region import (
    Region,
    RegionId,
    RegionSizeBand,
    format_region_size_table,
    region_size_table,
)
from .region_graph import RegionEdge, RegionGraph, build_region_graph

__all__ = [
    "BottomUpClustering",
    "ClusterNode",
    "ClusteringResult",
    "Region",
    "RegionEdge",
    "RegionGraph",
    "RegionId",
    "RegionSizeBand",
    "TrajectoryGraph",
    "TrajectoryGraphEdge",
    "build_region_graph",
    "cluster_trajectory_graph",
    "format_region_size_table",
    "modularity",
    "modularity_gain",
    "region_size_table",
]
