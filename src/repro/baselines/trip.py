"""TRIP — personalized travel-time routing (Letchner et al., AAAI 2006 [27]).

TRIP models personalized travel times: for each driver it learns the ratio
between the driver's observed travel times and the average (free-flow) travel
times, and uses the resulting personalized edge weights for shortest-path
finding.  We learn the ratio per driver *and per road type*, which is what
makes a TRIP route differ from the plain fastest path: a driver who is
observed to be slow on residential roads but fast on motorways gets routes
biased toward motorways.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from ..network.road_network import Edge, RoadNetwork, VertexId
from ..network.road_types import RoadType
from ..routing.dijkstra import dijkstra
from ..routing.path import Path
from ..trajectories.models import MatchedTrajectory
from .base import RoutingAlgorithm


class TripBaseline(RoutingAlgorithm):
    """Per-driver travel-time-ratio routing."""

    name = "TRIP"

    def __init__(
        self,
        network: RoadNetwork,
        training: Sequence[MatchedTrajectory],
        max_trajectories_per_driver: int = 20,
    ) -> None:
        super().__init__(network)
        self._max_per_driver = max_trajectories_per_driver
        self._ratios: dict[int, dict[RoadType, float]] = {}
        self._fit(training)

    # ------------------------------------------------------------------ #
    def _fit(self, training: Sequence[MatchedTrajectory]) -> None:
        per_driver: dict[int, list[MatchedTrajectory]] = defaultdict(list)
        for trajectory in training:
            per_driver[trajectory.driver_id].append(trajectory)

        for driver_id, trajectories in per_driver.items():
            observed: dict[RoadType, float] = defaultdict(float)
            freeflow: dict[RoadType, float] = defaultdict(float)
            for trajectory in trajectories[: self._max_per_driver]:
                path_freeflow = trajectory.path.travel_time_s(self._network)
                if path_freeflow <= 0:
                    continue
                # Distribute the observed duration over edges proportionally
                # to their free-flow travel times.
                scale = trajectory.duration_s / path_freeflow if trajectory.duration_s > 0 else 1.0
                for source, target in trajectory.path.edge_keys:
                    edge = self._network.edge(source, target)
                    freeflow[edge.road_type] += edge.travel_time_s
                    observed[edge.road_type] += edge.travel_time_s * scale
            ratios: dict[RoadType, float] = {}
            for road_type in RoadType:
                if freeflow.get(road_type, 0.0) > 0:
                    ratios[road_type] = max(0.25, min(4.0, observed[road_type] / freeflow[road_type]))
                else:
                    ratios[road_type] = 1.0
            self._ratios[driver_id] = ratios

    def driver_ratios(self, driver_id: int | None) -> dict[RoadType, float]:
        """The learned per-road-type time ratios (all 1.0 for unknown drivers)."""
        if driver_id is None or driver_id not in self._ratios:
            return {road_type: 1.0 for road_type in RoadType}
        return dict(self._ratios[driver_id])

    # ------------------------------------------------------------------ #
    def route(
        self,
        source: VertexId,
        destination: VertexId,
        departure_time: float | None = None,
        driver_id: int | None = None,
    ) -> Path:
        ratios = self.driver_ratios(driver_id)

        def personalized_time(edge: Edge) -> float:
            return edge.travel_time_s * ratios.get(edge.road_type, 1.0)

        # Compiled form: a per-road-type ratio lookup table applied to the
        # flat travel-time array (memoized per distinct ratio profile, so all
        # queries of one driver share the same precomputed cost array).
        profile = tuple(sorted((int(rt), ratio) for rt, ratio in ratios.items()))

        def build_cost_array(graph):
            def build():
                table = np.ones(max(int(rt) for rt in RoadType) + 1, dtype=np.float64)
                for value, ratio in profile:
                    table[value] = ratio
                return graph.array("travel_time_s") * table[graph.road_type_values]

            return graph.memo(("trip-personalized", profile), build)

        personalized_time.build_cost_array = build_cost_array  # type: ignore[attr-defined]
        personalized_time.cost_cache_key = ("trip-personalized", profile)  # type: ignore[attr-defined]
        return dijkstra(self._network, source, destination, personalized_time)
