"""Baseline routing algorithms compared against L2R in the evaluation."""

from .base import L2RAlgorithm, RoutingAlgorithm
from .cost_centric import FastestBaseline, ShortestBaseline
from .dom import DomBaseline
from .trip import TripBaseline
from .popular import PopularRouteBaseline
from .external_service import (
    ExternalRoutingService,
    ExternalServiceConfig,
    waypoint_accuracy,
)

__all__ = [
    "DomBaseline",
    "ExternalRoutingService",
    "ExternalServiceConfig",
    "FastestBaseline",
    "L2RAlgorithm",
    "PopularRouteBaseline",
    "RoutingAlgorithm",
    "ShortestBaseline",
    "TripBaseline",
    "waypoint_accuracy",
]
