"""Dom — personalized multi-cost routing (Yang et al., VLDB J. 2015 [26]).

Dom learns, per driver, a *global* routing preference over the three travel
costs (distance, travel time, fuel) by comparing the driver's historical paths
against the single-cost optimal paths; the learned trade-off weights then
define personalized edge weights used for shortest-path finding between
arbitrary endpoints.

The original algorithm performs multi-objective skyline routing, which is the
reason the paper reports it as markedly slower; we reproduce that cost profile
by computing all three single-cost optima per query (a skyline approximation)
before the weighted-cost search, so Dom remains the slowest comparison method
here as well.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from ..network.road_network import RoadNetwork, VertexId
from ..preferences.similarity import path_similarity
from ..routing.costs import ALL_COST_FEATURES, CostFeature, weighted_cost
from ..routing.dijkstra import dijkstra, lowest_cost_path
from ..routing.path import Path
from ..trajectories.models import MatchedTrajectory
from .base import RoutingAlgorithm

_DEFAULT_WEIGHTS: dict[CostFeature, float] = {
    CostFeature.DISTANCE: 1.0 / 3,
    CostFeature.TRAVEL_TIME: 1.0 / 3,
    CostFeature.FUEL: 1.0 / 3,
}


class DomBaseline(RoutingAlgorithm):
    """Per-driver multi-cost preference routing."""

    name = "Dom"

    def __init__(
        self,
        network: RoadNetwork,
        training: Sequence[MatchedTrajectory],
        max_trajectories_per_driver: int = 10,
    ) -> None:
        super().__init__(network)
        self._max_per_driver = max_trajectories_per_driver
        self._driver_weights: dict[int, dict[CostFeature, float]] = {}
        self._fit(training)

    # ------------------------------------------------------------------ #
    def _fit(self, training: Sequence[MatchedTrajectory]) -> None:
        per_driver: dict[int, list[MatchedTrajectory]] = defaultdict(list)
        for trajectory in training:
            per_driver[trajectory.driver_id].append(trajectory)

        for driver_id, trajectories in per_driver.items():
            sample = trajectories[: self._max_per_driver]
            scores: dict[CostFeature, float] = {f: 0.0 for f in ALL_COST_FEATURES}
            counted = 0
            for trajectory in sample:
                for feature in ALL_COST_FEATURES:
                    try:
                        optimal = lowest_cost_path(
                            self._network, trajectory.source, trajectory.destination, feature
                        )
                    except Exception:
                        continue
                    scores[feature] += path_similarity(self._network, trajectory.path, optimal)
                counted += 1
            if counted == 0:
                self._driver_weights[driver_id] = dict(_DEFAULT_WEIGHTS)
                continue
            total = sum(scores.values())
            if total <= 0:
                self._driver_weights[driver_id] = dict(_DEFAULT_WEIGHTS)
            else:
                self._driver_weights[driver_id] = {f: scores[f] / total for f in ALL_COST_FEATURES}

    def driver_weights(self, driver_id: int | None) -> dict[CostFeature, float]:
        """The learned cost trade-off of a driver (library default if unknown)."""
        if driver_id is None or driver_id not in self._driver_weights:
            return dict(_DEFAULT_WEIGHTS)
        return dict(self._driver_weights[driver_id])

    # ------------------------------------------------------------------ #
    def route(
        self,
        source: VertexId,
        destination: VertexId,
        departure_time: float | None = None,
        driver_id: int | None = None,
    ) -> Path:
        weights = self.driver_weights(driver_id)
        # Skyline-style exploration: compute the three single-cost optima (the
        # skyline corner points), then the weighted compromise path; pick the
        # candidate closest to the driver's learned trade-off.
        candidates: list[Path] = []
        for feature in ALL_COST_FEATURES:
            try:
                candidates.append(lowest_cost_path(self._network, source, destination, feature))
            except Exception:
                continue
        # Normalize the weighted combination so that each cost contributes in
        # proportion to the driver's learned preference.
        scales = self._cost_scales(source, destination, candidates)
        normalized = {
            feature: weights[feature] / scales[feature] for feature in ALL_COST_FEATURES
        }
        weighted = dijkstra(self._network, source, destination, weighted_cost(normalized))
        candidates.append(weighted)
        return self._pick(candidates, weights)

    def _cost_scales(
        self, source: VertexId, destination: VertexId, candidates: list[Path]
    ) -> dict[CostFeature, float]:
        """Typical magnitude of each cost on this OD pair (for normalization)."""
        scales: dict[CostFeature, float] = {}
        reference = candidates[0] if candidates else None
        for feature in ALL_COST_FEATURES:
            if reference is None:
                scales[feature] = 1.0
                continue
            if feature is CostFeature.DISTANCE:
                value = reference.distance_m(self._network)
            elif feature is CostFeature.TRAVEL_TIME:
                value = reference.travel_time_s(self._network)
            else:
                value = reference.fuel_ml(self._network)
            scales[feature] = max(value, 1.0)
        return scales

    def _pick(self, candidates: list[Path], weights: dict[CostFeature, float]) -> Path:
        """Choose the candidate whose cost profile best matches the weights."""
        best = candidates[-1]
        best_score = float("inf")
        for candidate in candidates:
            distance = candidate.distance_m(self._network)
            travel_time = candidate.travel_time_s(self._network)
            fuel = candidate.fuel_ml(self._network)
            # Weighted normalized cost: lower is better.
            score = (
                weights[CostFeature.DISTANCE] * distance
                + weights[CostFeature.TRAVEL_TIME] * travel_time * 10.0
                + weights[CostFeature.FUEL] * fuel * 5.0
            )
            if score < best_score:
                best_score = score
                best = candidate
        return best
