"""A simulated commercial routing service (the paper's Google Maps comparison).

The paper queries the Google Directions API and compares the returned
way-point polylines against ground-truth paths using a 10 m band (Fig. 14).
Without network access we simulate a comparable service:

* it routes for *time* on its own slightly different travel-time model — a
  global perturbation of edge speeds plus a bias that favours major roads
  (commercial services weigh live traffic and road hierarchy, not local
  drivers' preferences);
* it does not return an edge path but a sparse sequence of way-points in
  lon/lat (as the Directions API does), optionally with coordinate jitter;
* the comparison against a ground-truth path therefore uses the band-matching
  methodology (:func:`repro.network.spatial.match_waypoints_to_polyline`),
  exactly as the paper does for Google paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..network.road_network import Edge, RoadNetwork, VertexId
from ..network.spatial import LonLat, match_waypoints_to_polyline
from ..routing.astar import astar, travel_time_heuristic
from ..routing.path import Path
from .base import RoutingAlgorithm


@dataclass(frozen=True)
class ExternalServiceConfig:
    """Behavioural knobs of the simulated service."""

    major_road_bias: float = 0.85
    """Multiplier (< 1) applied to major-road travel times — the service
    prefers the arterial hierarchy."""
    speed_perturbation: float = 0.10
    """Relative amplitude of the per-edge random perturbation of travel times
    (models the service's independent traffic model)."""
    waypoint_stride: int = 4
    """A way-point is emitted every this many path vertices."""
    waypoint_jitter_m: float = 3.0
    """Gaussian jitter applied to emitted way-points."""
    seed: int = 20180417


class ExternalRoutingService(RoutingAlgorithm):
    """Google-Directions-like routing: time-optimal, major-road biased."""

    name = "Google"

    def __init__(self, network: RoadNetwork, config: ExternalServiceConfig | None = None) -> None:
        super().__init__(network)
        self._config = config or ExternalServiceConfig()
        rng = random.Random(self._config.seed)
        self._perturbation: dict[tuple[VertexId, VertexId], float] = {}
        for edge in network.edges():
            amplitude = self._config.speed_perturbation
            self._perturbation[edge.key] = 1.0 + rng.uniform(-amplitude, amplitude)

    # ------------------------------------------------------------------ #
    def _service_time(self, edge: Edge) -> float:
        factor = self._perturbation.get(edge.key, 1.0)
        if edge.road_type.is_major:
            factor *= self._config.major_road_bias
        return edge.travel_time_s * factor

    def route(
        self,
        source: VertexId,
        destination: VertexId,
        departure_time: float | None = None,
        driver_id: int | None = None,
    ) -> Path:
        """The service's internal edge path (used for the uniform harness)."""
        return astar(
            self._network,
            source,
            destination,
            self._service_time,
            travel_time_heuristic(self._network, destination),
        )

    def directions(
        self,
        source: VertexId,
        destination: VertexId,
        departure_time: float | None = None,
    ) -> list[LonLat]:
        """The service's public answer: a sparse way-point polyline."""
        path = self.route(source, destination, departure_time=departure_time)
        rng = random.Random(self._config.seed ^ (source * 1_000_003 + destination))
        waypoints: list[LonLat] = []
        vertices = path.vertices
        stride = max(1, self._config.waypoint_stride)
        indices = list(range(0, len(vertices), stride))
        if indices[-1] != len(vertices) - 1:
            indices.append(len(vertices) - 1)
        for index in indices:
            lon, lat = self._network.coordinates(vertices[index])
            if self._config.waypoint_jitter_m > 0:
                import math

                lat_jitter = rng.gauss(0.0, self._config.waypoint_jitter_m) / 111_320.0
                lon_jitter = rng.gauss(0.0, self._config.waypoint_jitter_m) / (
                    111_320.0 * max(0.2, math.cos(math.radians(lat)))
                )
                lon, lat = lon + lon_jitter, lat + lat_jitter
            waypoints.append((lon, lat))
        return waypoints


def waypoint_accuracy(
    network: RoadNetwork,
    ground_truth: Path,
    waypoints: list[LonLat],
    band_m: float = 10.0,
) -> float:
    """Accuracy of a way-point answer against a ground-truth path (Fig. 14).

    The ground-truth path is widened into a ``band_m`` band; the matched
    ground-truth length between consecutive in-band way-point projections,
    divided by the total ground-truth length, is the Eq. 1 style accuracy.
    """
    polyline = ground_truth.coordinates(network)
    matched, total = match_waypoints_to_polyline(waypoints, polyline, band_m=band_m)
    return matched / total if total > 0 else 0.0
