"""Popularity-based path recommendation (related-work Cases 1 and 2).

This baseline covers the two situations existing trajectory-reuse methods
handle (Section II):

* **Case 1** — a complete training trajectory already connects the requested
  source and destination: recommend the most popular such path;
* **Case 2** — no complete trajectory exists, but trajectory fragments can be
  spliced: route on a popularity-weighted graph where an edge's cost decreases
  with the number of trajectories that traversed it (a compact stand-in for
  the absorbing-Markov-chain splicing of [18]);
* **Case 3** — the requested pair touches roads never covered by any
  trajectory: the method fails, which is exactly the gap L2R fills.  The
  implementation falls back to the fastest path and reports the fallback, so
  the evaluation can show where popularity-only methods stop working.
"""

from __future__ import annotations

import math
import threading
from collections import Counter, defaultdict
from typing import Sequence

import numpy as np

from ..network.road_network import Edge, RoadNetwork, VertexId
from ..routing.dijkstra import dijkstra, fastest_path
from ..routing.path import Path
from ..trajectories.models import MatchedTrajectory
from .base import RoutingAlgorithm


class PopularRouteBaseline(RoutingAlgorithm):
    """Most-popular-path lookup with popularity-weighted splicing fallback."""

    name = "Popular"

    def __init__(self, network: RoadNetwork, training: Sequence[MatchedTrajectory]) -> None:
        super().__init__(network)
        self._od_paths: dict[tuple[VertexId, VertexId], Counter] = defaultdict(Counter)
        self._edge_popularity: dict[tuple[VertexId, VertexId], int] = defaultdict(int)
        # The service layer fans route() out over threads; the diagnostic
        # counters need a lock to stay exact.
        self._counter_lock = threading.Lock()
        self._fallbacks = 0
        self._queries = 0
        self._fit(training)

    def _fit(self, training: Sequence[MatchedTrajectory]) -> None:
        for trajectory in training:
            self._od_paths[(trajectory.source, trajectory.destination)][trajectory.path.vertices] += 1
            for key in trajectory.path.edge_keys:
                self._edge_popularity[key] += 1

    # ------------------------------------------------------------------ #
    @property
    def fallback_rate(self) -> float:
        """Fraction of queries answered by the fastest-path fallback (Case 3)."""
        return self._fallbacks / self._queries if self._queries else 0.0

    def route(
        self,
        source: VertexId,
        destination: VertexId,
        departure_time: float | None = None,
        driver_id: int | None = None,
    ) -> Path:
        with self._counter_lock:
            self._queries += 1
        # Case 1: a complete trajectory connects the pair.
        counted = self._od_paths.get((source, destination))
        if counted:
            vertices, _ = counted.most_common(1)[0]
            return Path(vertices=vertices)

        # Case 2: splice trajectory fragments on a popularity-weighted graph.
        def splicing_cost(edge: Edge) -> float:
            popularity = self._edge_popularity.get((edge.source, edge.target), 0)
            if popularity == 0:
                # Uncovered edges are strongly discouraged but not forbidden,
                # otherwise Case-3 queries would have no answer at all.
                return edge.distance_m * 100.0
            return edge.distance_m / (1.0 + math.log1p(popularity))

        def build_cost_array(graph):
            # Popularity is frozen after _fit, so the whole splicing-cost
            # array is computed once per graph snapshot and shared by every
            # query (keyed by this baseline instance).
            def build():
                if not self._edge_popularity:
                    return graph.array("distance_m") * 100.0
                return np.fromiter(
                    (splicing_cost(edge) for edge in graph.edges),
                    dtype=np.float64,
                    count=graph.edge_count,
                )

            return graph.memo(("popular-splicing", self), build)

        splicing_cost.build_cost_array = build_cost_array  # type: ignore[attr-defined]
        # Keyed by the instance itself (not id()) so a recycled id can never
        # alias another baseline's popularity table in the graph's caches.
        splicing_cost.cost_cache_key = ("popular-splicing", self)  # type: ignore[attr-defined]

        try:
            spliced = dijkstra(self._network, source, destination, splicing_cost)
        except Exception:
            with self._counter_lock:
                self._fallbacks += 1
            return fastest_path(self._network, source, destination)

        # Case 3 detection: if most of the answer runs on uncovered edges, the
        # popularity signal did not help and we record a fallback.
        uncovered = sum(
            1 for key in spliced.edge_keys if self._edge_popularity.get(key, 0) == 0
        )
        if spliced.edge_keys and uncovered / len(spliced.edge_keys) > 0.5:
            with self._counter_lock:
                self._fallbacks += 1
        return spliced
