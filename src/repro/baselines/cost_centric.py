"""Cost-centric baselines: Shortest and Fastest.

The paper compares L2R with plain shortest-path (distance) and fastest-path
(travel time) routing computed with Dijkstra's algorithm on the original road
network — the behaviour of a traditional routing service with static weights.
"""

from __future__ import annotations

from ..network.road_network import RoadNetwork, VertexId
from ..routing.costs import CostFeature
from ..routing.dijkstra import fastest_path, shortest_path
from ..routing.path import Path
from .base import RoutingAlgorithm


class ShortestBaseline(RoutingAlgorithm):
    """Distance-minimal routing (the paper's *Shortest*)."""

    name = "Shortest"
    #: Single-feature policy tag: lets the service layer batch these queries
    #: (``dijkstra_many``) and answer them goal-directed (ALT) on request.
    cost_feature = CostFeature.DISTANCE

    def route(
        self,
        source: VertexId,
        destination: VertexId,
        departure_time: float | None = None,
        driver_id: int | None = None,
    ) -> Path:
        return shortest_path(self._network, source, destination)


class FastestBaseline(RoutingAlgorithm):
    """Travel-time-minimal routing (the paper's *Fastest*)."""

    name = "Fastest"
    cost_feature = CostFeature.TRAVEL_TIME

    def route(
        self,
        source: VertexId,
        destination: VertexId,
        departure_time: float | None = None,
        driver_id: int | None = None,
    ) -> Path:
        return fastest_path(self._network, source, destination)
