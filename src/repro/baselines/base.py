"""Common interface of the routing algorithms compared in the evaluation.

Every algorithm (L2R itself, the cost-centric baselines, the personalized
baselines, and the external-service simulator) is wrapped as a
:class:`RoutingAlgorithm` so that the evaluation harness can treat them
uniformly: ``route(source, destination, departure_time, driver_id)``.

For serving, :meth:`RoutingAlgorithm.as_engine` adapts any algorithm to the
:class:`~repro.service.engine.RoutingEngine` protocol so it can be registered
with a :class:`~repro.service.RoutingService` — the evaluation harness and the
service drive every method through that identical request/response path.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from ..network.road_network import RoadNetwork, VertexId
from ..routing.path import Path

if TYPE_CHECKING:  # pragma: no cover
    from ..service.engine import AlgorithmEngine


class RoutingAlgorithm(abc.ABC):
    """Abstract base class of all evaluated routing algorithms."""

    #: Human-readable algorithm name used in reports and figures.
    name: str = "algorithm"

    def __init__(self, network: RoadNetwork) -> None:
        self._network = network

    @property
    def network(self) -> RoadNetwork:
        return self._network

    @abc.abstractmethod
    def route(
        self,
        source: VertexId,
        destination: VertexId,
        departure_time: float | None = None,
        driver_id: int | None = None,
    ) -> Path:
        """Return a recommended path from ``source`` to ``destination``."""

    def as_engine(self, name: str | None = None) -> "AlgorithmEngine":
        """This algorithm adapted to the ``RoutingEngine`` protocol."""
        from ..service.engine import AlgorithmEngine

        return AlgorithmEngine(self, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class L2RAlgorithm(RoutingAlgorithm):
    """Adapter exposing a fitted :class:`~repro.core.l2r.LearnToRoute` pipeline."""

    name = "L2R"

    def __init__(self, pipeline) -> None:
        super().__init__(pipeline.network)
        self._pipeline = pipeline

    @property
    def pipeline(self):
        """The wrapped :class:`~repro.core.l2r.LearnToRoute` pipeline."""
        return self._pipeline

    def route(
        self,
        source: VertexId,
        destination: VertexId,
        departure_time: float | None = None,
        driver_id: int | None = None,
    ) -> Path:
        return self._pipeline.route(source, destination, departure_time=departure_time)
