"""Canned synthetic evaluation scenarios and train/test splitting."""

from .synthetic import Scenario, d1_like_scenario, d2_like_scenario, tiny_scenario
from .splits import TrainTestSplit, k_fold_partitions, split_by_id, split_by_time

__all__ = [
    "Scenario",
    "TrainTestSplit",
    "d1_like_scenario",
    "d2_like_scenario",
    "k_fold_partitions",
    "split_by_id",
    "split_by_time",
    "tiny_scenario",
]
