"""Canned evaluation scenarios (the D1-like and D2-like data sets).

Each scenario bundles a synthetic road network, a generated trajectory set,
and the distance bands the paper uses for that data set.  Scenario builders
accept a ``scale`` in (0, 1] so tests can use tiny instances while benchmarks
use the full default size; everything is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.generators import chengdu_like_network, denmark_like_network, grid_city_network
from ..network.road_network import RoadNetwork
from ..trajectories.generator import GeneratedData, GeneratorConfig, TrajectoryGenerator
from ..trajectories.models import MatchedTrajectory
from ..trajectories.statistics import D1_DISTANCE_BANDS_KM, D2_DISTANCE_BANDS_KM


@dataclass
class Scenario:
    """A complete evaluation scenario."""

    name: str
    network: RoadNetwork
    data: GeneratedData
    bands_km: tuple[tuple[float, float], ...]

    @property
    def trajectories(self) -> list[MatchedTrajectory]:
        return self.data.trajectories


def _scaled(value: int, scale: float, minimum: int) -> int:
    return max(minimum, int(round(value * scale)))


def d1_like_scenario(scale: float = 1.0, seed: int = 11) -> Scenario:
    """Country-scale scenario mirroring D1 (Denmark, long trips, highways)."""
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    network = denmark_like_network(seed=seed)
    config = GeneratorConfig(
        n_drivers=_scaled(60, scale, 8),
        n_trajectories=_scaled(900, scale, 60),
        hotspot_count=8,
        hotspot_probability=0.7,
        hotspot_radius_m=2_500.0,
        min_trip_distance_m=1_500.0,
        long_trip_km=12.0,
        short_trip_km=3.0,
        seed=seed,
    )
    data = TrajectoryGenerator(network, config).generate()
    return Scenario(name="D1-like", network=network, data=data, bands_km=D1_DISTANCE_BANDS_KM)


def d2_like_scenario(scale: float = 1.0, seed: int = 7) -> Scenario:
    """City-scale scenario mirroring D2 (Chengdu taxis, short trips)."""
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    network = chengdu_like_network(seed=seed)
    config = GeneratorConfig(
        n_drivers=_scaled(80, scale, 8),
        n_trajectories=_scaled(1_200, scale, 60),
        hotspot_count=10,
        hotspot_probability=0.75,
        hotspot_radius_m=1_200.0,
        min_trip_distance_m=500.0,
        long_trip_km=6.0,
        short_trip_km=2.0,
        seed=seed,
    )
    data = TrajectoryGenerator(network, config).generate()
    return Scenario(name="D2-like", network=network, data=data, bands_km=D2_DISTANCE_BANDS_KM)


def tiny_scenario(seed: int = 3, n_trajectories: int = 120) -> Scenario:
    """A small scenario for unit tests and the quickstart example."""
    network = grid_city_network(rows=10, cols=10, block_m=300.0, seed=seed, name="tiny")
    config = GeneratorConfig(
        n_drivers=12,
        n_trajectories=n_trajectories,
        hotspot_count=4,
        hotspot_probability=0.8,
        hotspot_radius_m=900.0,
        min_trip_distance_m=400.0,
        long_trip_km=2.5,
        short_trip_km=1.0,
        seed=seed,
    )
    data = TrajectoryGenerator(network, config).generate()
    return Scenario(name="tiny", network=network, data=data, bands_km=D2_DISTANCE_BANDS_KM)
