"""Train / test splitting of trajectory sets.

The paper uses a temporal split (first 18 months / 21 days for training, the
rest for testing).  The synthetic generator stamps departure times within a
day, so the library offers both a temporal split (by departure time) and a
deterministic hash split (by trajectory id), the latter being the default for
benchmarks because it balances the distance bands better on synthetic data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..trajectories.models import MatchedTrajectory


@dataclass(frozen=True)
class TrainTestSplit:
    """A train / test partition of a trajectory set."""

    train: list[MatchedTrajectory]
    test: list[MatchedTrajectory]

    @property
    def train_fraction(self) -> float:
        total = len(self.train) + len(self.test)
        return len(self.train) / total if total else 0.0


def split_by_time(
    trajectories: Sequence[MatchedTrajectory], train_fraction: float = 0.75
) -> TrainTestSplit:
    """Temporal split: the earliest departures form the training set."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    ordered = sorted(trajectories, key=lambda t: t.departure_time)
    cut = int(len(ordered) * train_fraction)
    return TrainTestSplit(train=ordered[:cut], test=ordered[cut:])


def split_by_id(
    trajectories: Sequence[MatchedTrajectory], train_fraction: float = 0.75, modulus: int = 100
) -> TrainTestSplit:
    """Deterministic hash split on the trajectory id."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    threshold = int(train_fraction * modulus)
    train: list[MatchedTrajectory] = []
    test: list[MatchedTrajectory] = []
    for trajectory in trajectories:
        if (trajectory.trajectory_id * 2_654_435_761) % modulus < threshold:
            train.append(trajectory)
        else:
            test.append(trajectory)
    return TrainTestSplit(train=train, test=test)


def k_fold_partitions(
    items: Sequence, k: int = 5
) -> list[list]:
    """Deterministic round-robin partition into ``k`` folds (Fig. 9 setup)."""
    if k < 2:
        raise ValueError("k must be at least 2")
    folds: list[list] = [[] for _ in range(k)]
    for index, item in enumerate(items):
        folds[index % k].append(item)
    return folds
