"""Dijkstra's algorithm and cost-specific convenience wrappers.

This is the workhorse single-source shortest-path routine used by the
Shortest / Fastest baselines, by preference learning (lowest-cost paths per
cost feature), and as a building block inside the L2R pipeline.

Queries whose edge cost maps onto a compiled cost array run on the array-based
CSR kernel (:mod:`repro.network.compiled`); opaque edge-cost callables fall
back to :func:`dict_dijkstra`, the dict-based reference implementation.  Both
produce identical paths.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Iterable

from ..exceptions import NoPathError, VertexNotFoundError
from ..network.compiled import dispatch as _compiled
from ..network.road_network import Edge, RoadNetwork, VertexId
from .costs import CostFeature, EdgeCost, cost_function
from .path import Path


def dijkstra(
    network: RoadNetwork,
    source: VertexId,
    destination: VertexId,
    edge_cost: EdgeCost,
    edge_filter: Callable[[Edge], bool] | None = None,
) -> Path:
    """Lowest-cost path from ``source`` to ``destination``.

    ``edge_cost`` maps an :class:`Edge` to a non-negative cost; an optional
    ``edge_filter`` restricts the search to edges for which it returns True.
    Raises :class:`NoPathError` when the destination is unreachable.
    """
    if source not in network:
        raise VertexNotFoundError(source)
    if destination not in network:
        raise VertexNotFoundError(destination)
    if source == destination:
        return Path.of([source])

    vertices = _compiled.try_dijkstra(network, source, destination, edge_cost, edge_filter)
    if vertices is not None:
        return Path.of(vertices)
    return dict_dijkstra(network, source, destination, edge_cost, edge_filter)


def dict_dijkstra(
    network: RoadNetwork,
    source: VertexId,
    destination: VertexId,
    edge_cost: EdgeCost,
    edge_filter: Callable[[Edge], bool] | None = None,
) -> Path:
    """The dict-based reference implementation (no compiled dispatch).

    Kept as the fallback for opaque edge costs and as the ground truth the
    equivalence tests and benchmarks compare the compiled kernel against.
    """
    if source not in network:
        raise VertexNotFoundError(source)
    if destination not in network:
        raise VertexNotFoundError(destination)
    if source == destination:
        return Path.of([source])

    dist: dict[VertexId, float] = {source: 0.0}
    parent: dict[VertexId, VertexId] = {}
    visited: set[VertexId] = set()
    heap: list[tuple[float, VertexId]] = [(0.0, source)]

    while heap:
        cost_u, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        if u == destination:
            return _reconstruct(parent, source, destination)
        for v, edge in network.successors(u).items():
            if v in visited:
                continue
            if edge_filter is not None and not edge_filter(edge):
                continue
            candidate = cost_u + edge_cost(edge)
            if candidate < dist.get(v, math.inf):
                dist[v] = candidate
                parent[v] = u
                heapq.heappush(heap, (candidate, v))

    raise NoPathError(source, destination)


def dijkstra_costs(
    network: RoadNetwork,
    source: VertexId,
    edge_cost: EdgeCost,
    targets: Iterable[VertexId] | None = None,
) -> dict[VertexId, float]:
    """Single-source lowest costs to all (or the given) reachable vertices.

    When ``targets`` is given, the search stops as soon as every target has
    been settled, which is considerably faster for small target sets.
    """
    if source not in network:
        raise VertexNotFoundError(source)
    targets = list(targets) if targets is not None else None
    result = _compiled.try_dijkstra_costs(network, source, edge_cost, targets)
    if result is not None:
        return result
    return dict_dijkstra_costs(network, source, edge_cost, targets)


def dict_dijkstra_costs(
    network: RoadNetwork,
    source: VertexId,
    edge_cost: EdgeCost,
    targets: Iterable[VertexId] | None = None,
) -> dict[VertexId, float]:
    """Dict-based reference implementation of :func:`dijkstra_costs`."""
    if source not in network:
        raise VertexNotFoundError(source)
    remaining = set(targets) if targets is not None else None
    dist: dict[VertexId, float] = {source: 0.0}
    visited: set[VertexId] = set()
    heap: list[tuple[float, VertexId]] = [(0.0, source)]
    result: dict[VertexId, float] = {}

    while heap:
        cost_u, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        result[u] = cost_u
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, edge in network.successors(u).items():
            if v in visited:
                continue
            candidate = cost_u + edge_cost(edge)
            if candidate < dist.get(v, math.inf):
                dist[v] = candidate
                heapq.heappush(heap, (candidate, v))

    if targets is not None:
        target_set = set(targets)
        return {t: result[t] for t in result if t in target_set}
    return result


def _reconstruct(
    parent: dict[VertexId, VertexId], source: VertexId, destination: VertexId
) -> Path:
    vertices: list[VertexId] = [destination]
    current = destination
    while current != source:
        current = parent[current]
        vertices.append(current)
    vertices.reverse()
    return Path.of(vertices)


# --------------------------------------------------------------------------- #
# Convenience wrappers used throughout the library and the baselines.
# --------------------------------------------------------------------------- #
def shortest_path(network: RoadNetwork, source: VertexId, destination: VertexId) -> Path:
    """Distance-minimal path (the paper's *Shortest* baseline)."""
    return dijkstra(network, source, destination, cost_function(CostFeature.DISTANCE))


def fastest_path(network: RoadNetwork, source: VertexId, destination: VertexId) -> Path:
    """Travel-time-minimal path (the paper's *Fastest* baseline)."""
    return dijkstra(network, source, destination, cost_function(CostFeature.TRAVEL_TIME))


def most_economical_path(network: RoadNetwork, source: VertexId, destination: VertexId) -> Path:
    """Fuel-minimal path."""
    return dijkstra(network, source, destination, cost_function(CostFeature.FUEL))


def lowest_cost_path(
    network: RoadNetwork,
    source: VertexId,
    destination: VertexId,
    feature: CostFeature,
) -> Path:
    """Lowest-cost path for an arbitrary travel-cost feature."""
    return dijkstra(network, source, destination, cost_function(feature))
