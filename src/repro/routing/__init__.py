"""Path-finding substrate: Dijkstra, A*, bidirectional search, CH, Algorithm 2."""

from .costs import (
    ALL_COST_FEATURES,
    CostFeature,
    EdgeCost,
    cost_function,
    edge_distance,
    edge_fuel,
    edge_travel_time,
    weighted_cost,
)
from .path import Path, splice_all
from .dijkstra import (
    dict_dijkstra,
    dict_dijkstra_costs,
    dijkstra,
    dijkstra_costs,
    fastest_path,
    lowest_cost_path,
    most_economical_path,
    shortest_path,
)
from .astar import astar, astar_by_feature, default_heuristic, dict_astar, heuristic_for
from .bidirectional import (
    bidirectional_by_feature,
    bidirectional_dijkstra,
    dict_bidirectional_dijkstra,
)
from .contraction import ContractionHierarchy, build_contraction_hierarchy, ch_shortest_path
from .preference_dijkstra import preference_dijkstra
from .fuel import fuel_consumption_ml, fuel_per_km_ml, fuel_rate_ml_per_s, most_economical_speed_kmh

__all__ = [
    "ALL_COST_FEATURES",
    "ContractionHierarchy",
    "CostFeature",
    "EdgeCost",
    "Path",
    "astar",
    "astar_by_feature",
    "bidirectional_by_feature",
    "bidirectional_dijkstra",
    "build_contraction_hierarchy",
    "ch_shortest_path",
    "cost_function",
    "default_heuristic",
    "dict_astar",
    "dict_bidirectional_dijkstra",
    "dict_dijkstra",
    "dict_dijkstra_costs",
    "dijkstra",
    "dijkstra_costs",
    "edge_distance",
    "edge_fuel",
    "edge_travel_time",
    "fastest_path",
    "fuel_consumption_ml",
    "fuel_per_km_ml",
    "fuel_rate_ml_per_s",
    "heuristic_for",
    "lowest_cost_path",
    "most_economical_path",
    "most_economical_speed_kmh",
    "preference_dijkstra",
    "shortest_path",
    "splice_all",
    "weighted_cost",
]
