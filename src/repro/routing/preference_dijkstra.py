"""Algorithm 2: preference-aware modified Dijkstra.

Given a routing-preference vector ``<master, slave>`` — a travel-cost feature
and an optional road-condition feature — the algorithm behaves like Dijkstra
on the master cost, but when expanding a vertex it restricts relaxation to
edges whose road type satisfies the slave preference *whenever at least one
such edge exists*; otherwise all outgoing edges are considered.  This soft
treatment of the slave constraint is exactly the two cases in the paper's
pseudo-code and guarantees that a path is found whenever one exists at all.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING

from ..exceptions import NoPathError, VertexNotFoundError
from ..network.compiled import dispatch as _compiled
from ..network.road_network import Edge, RoadNetwork, VertexId
from .costs import cost_function
from .path import Path

if TYPE_CHECKING:  # pragma: no cover - avoids a routing <-> preferences cycle
    from ..preferences.model import PreferenceVector


def preference_dijkstra(
    network: RoadNetwork,
    source: VertexId,
    destination: VertexId,
    preference: "PreferenceVector",
) -> Path:
    """Lowest-master-cost path that honours the slave road-condition feature.

    Implements Algorithm 2 of the paper.  The slave restriction can, on rare
    topologies, prune the only edges leading to the destination; in that case
    the search is retried with the master cost alone so that a path is always
    returned whenever one exists.  Raises :class:`NoPathError` only when the
    destination is unreachable even without the slave restriction.
    """
    if source not in network:
        raise VertexNotFoundError(source)
    if destination not in network:
        raise VertexNotFoundError(destination)
    if source == destination:
        return Path.of([source])

    master_cost = cost_function(preference.master)
    slave = preference.slave

    try:
        vertices = _compiled.try_preference(network, source, destination, master_cost, slave)
    except _compiled.PreferenceSearchExhausted:
        # The compiled kernel ran and the (slave-constrained) search was
        # exhausted; apply the paper's best-effort fallback.
        if slave is not None:
            from .dijkstra import dijkstra

            return dijkstra(network, source, destination, master_cost)
        raise NoPathError(
            source, destination, reason="preference-constrained search exhausted"
        ) from None
    if vertices is not None:
        return Path.of(vertices)
    return _dict_preference_search(network, source, destination, preference)


def _dict_preference_search(
    network: RoadNetwork,
    source: VertexId,
    destination: VertexId,
    preference: "PreferenceVector",
) -> Path:
    """Dict-based reference implementation of Algorithm 2."""
    master_cost = cost_function(preference.master)
    slave = preference.slave

    def satisfies_slave(edge: Edge) -> bool:
        return slave is None or slave.satisfied_by(edge.road_type)

    dist: dict[VertexId, float] = {source: 0.0}
    parent: dict[VertexId, VertexId] = {}
    settled: set[VertexId] = set()
    heap: list[tuple[float, VertexId]] = [(0.0, source)]

    while heap:
        cost_u, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u == destination:
            vertices: list[VertexId] = [destination]
            current = destination
            while current != source:
                current = parent[current]
                vertices.append(current)
            vertices.reverse()
            return Path.of(vertices)

        successors = network.successors(u)
        # Case (i): at least one outgoing edge satisfies the slave preference
        # -> expand only those edges.  Case (ii): none does -> expand all.
        none_satisfies = not any(satisfies_slave(edge) for edge in successors.values())
        for v, edge in successors.items():
            if v in settled:
                continue
            if not (satisfies_slave(edge) or none_satisfies):
                continue
            candidate = cost_u + master_cost(edge)
            if candidate < dist.get(v, math.inf):
                dist[v] = candidate
                parent[v] = u
                heapq.heappush(heap, (candidate, v))

    if slave is not None:
        # The road-condition restriction pruned every route; fall back to the
        # unconstrained master-cost search (Algorithm 2 is best-effort on the
        # slave dimension).
        from .dijkstra import dijkstra

        return dijkstra(network, source, destination, master_cost)
    raise NoPathError(source, destination, reason="preference-constrained search exhausted")
