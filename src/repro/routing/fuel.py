"""Speed-based fuel-consumption model.

The paper computes fuel consumption from speed limits using vehicular
environmental impact models (EcoMark / SIDRA-style).  We implement a compact
instantaneous model of the same family: fuel rate is a convex function of
cruising speed with an idling floor, so fuel per meter is high at very low
speeds (idling dominates), minimal around 60–80 km/h, and rises again at
motorway speeds (aerodynamic drag).  The absolute calibration constants are
representative of a mid-size passenger car.
"""

from __future__ import annotations

IDLE_RATE_ML_PER_S = 0.30
"""Fuel burned while idling, in ml per second."""

DRAG_COEFFICIENT = 5.5e-7
"""Aerodynamic term of the fuel-rate polynomial (ml per second per (km/h)^3)."""

ROLLING_COEFFICIENT = 0.009
"""Rolling-resistance term (ml per second per km/h)."""


def fuel_rate_ml_per_s(speed_kmh: float) -> float:
    """Instantaneous fuel rate in ml/s when cruising at ``speed_kmh``."""
    speed = max(0.0, float(speed_kmh))
    return IDLE_RATE_ML_PER_S + ROLLING_COEFFICIENT * speed + DRAG_COEFFICIENT * speed**3


def fuel_consumption_ml(distance_m: float, speed_kmh: float) -> float:
    """Fuel in milliliters to cover ``distance_m`` meters at ``speed_kmh``.

    A floor of 5 km/h prevents division blow-ups on degenerate inputs.
    """
    speed = max(5.0, float(speed_kmh))
    duration_s = float(distance_m) / (speed / 3.6)
    return fuel_rate_ml_per_s(speed) * duration_s


def fuel_per_km_ml(speed_kmh: float) -> float:
    """Fuel in milliliters per kilometer at a constant ``speed_kmh``."""
    return fuel_consumption_ml(1000.0, speed_kmh)


def most_economical_speed_kmh(lo: float = 20.0, hi: float = 130.0, step: float = 1.0) -> float:
    """Speed (km/h) that minimizes fuel per kilometer under this model."""
    best_speed = lo
    best_rate = fuel_per_km_ml(lo)
    speed = lo
    while speed <= hi:
        rate = fuel_per_km_ml(speed)
        if rate < best_rate:
            best_rate = rate
            best_speed = speed
        speed += step
    return best_speed
