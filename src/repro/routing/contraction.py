"""Contraction hierarchies (CH).

The paper mentions contraction hierarchies [16] as the standard query-time
speed-up for cost-centric routing and notes that such speed-ups are orthogonal
to accuracy.  We provide a compact CH implementation so that the efficiency
benchmarks can compare plain Dijkstra, bidirectional Dijkstra, and CH queries,
and so the library is usable as a general routing substrate.

The implementation follows the classical recipe: nodes are contracted in order
of a lazy edge-difference priority; shortcuts preserve shortest-path distances
between higher-ranked neighbours; queries run a bidirectional upward search.

With compiled search enabled, :func:`ch_shortest_path` answers from the
array-compiled counterpart (:mod:`repro.network.compiled.ch`): customizable
arc sets queried through elimination-tree hub labels, cost-identical to the
dict walker here (which stays the ground truth under
:func:`~repro.network.compiled.dispatch.compiled_disabled`), and cheap to
re-weight in place when live traffic moves the edge costs.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import NoPathError, StaleHierarchyError, VertexNotFoundError
from ..network.compiled import dispatch as _dispatch
from ..network.road_network import RoadNetwork, VertexId
from .costs import CostFeature, EdgeCost, cost_function
from .path import Path


@dataclass
class _Shortcut:
    """A CH arc: either an original edge or a shortcut bridging ``via``."""

    target: VertexId
    weight: float
    via: VertexId | None = None


@dataclass
class ContractionHierarchy:
    """A contracted search structure for one edge-cost function.

    The hierarchy is frozen at build time: its shortcut weights embed the
    network's costs as of construction.  ``built_version`` /
    ``built_cost_version`` record that moment so queries through
    :func:`ch_shortest_path` can detect live-traffic (or topology) drift
    instead of silently answering with pre-update costs.
    """

    order: dict[VertexId, int]
    upward: dict[VertexId, list[_Shortcut]]
    downward: dict[VertexId, list[_Shortcut]]
    middle: dict[tuple[VertexId, VertexId], VertexId] = field(default_factory=dict)
    built_version: int | None = None
    """``network.version`` at build time (``None`` on hand-built hierarchies:
    staleness then goes unchecked, matching the pre-guard behaviour)."""
    built_cost_version: int | None = None
    """``network.cost_version`` at build time (monitoring / diagnostics)."""
    build_args: tuple | None = None
    """``(feature, edge_cost, hop_limit)`` for :meth:`refresh` rebuilds."""
    built_topology_version: int | None = None
    """``network.topology_version`` at build time: while it still matches,
    staleness is cost-only and :meth:`refresh` can re-weight instead of
    rebuilding."""
    base_slot_weights: object | None = field(default=None, repr=False, compare=False)
    """Build-time edge costs in compiled CSR slot order (numpy array).  The
    compiled hierarchy customizes its arc weights from this array, so frozen
    (``on_stale="ignore"``) answers match the dict walker's; ``None`` on
    hand-built hierarchies (no compiled queries then)."""
    _compiled: object | None = field(default=None, repr=False, compare=False)
    """Cached :class:`~repro.network.compiled.ch.CompiledHierarchy` (built
    lazily by the dispatch layer; dropped from pickles)."""

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_compiled"] = None  # holds a lock + large arrays; lazily rebuilt
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Defaults for pickles written before these fields existed.
        self.__dict__.setdefault("built_topology_version", None)
        self.__dict__.setdefault("base_slot_weights", None)
        self.__dict__.setdefault("_compiled", None)

    @property
    def weights_version(self) -> int:
        """Monotonic version of the compiled arc weights (0 until compiled).

        Bumped by every successful re-weight; the service layer keys its
        route cache on it so pre-re-weight answers are never replayed.
        """
        compiled = self._compiled
        return compiled.weights_version if compiled is not None else 0

    @property
    def reweight_count(self) -> int:
        """How many live-traffic re-weights this hierarchy has absorbed."""
        compiled = self._compiled
        return compiled.reweight_count if compiled is not None else 0

    def is_stale(self, network: RoadNetwork) -> bool:
        """Whether ``network`` mutated (topology or costs) since the build."""
        return self.built_version is not None and network.version != self.built_version

    def refresh(self, network: RoadNetwork) -> "ContractionHierarchy":
        """Bring this hierarchy up to date with the network, *in place*.

        When only costs drifted (live traffic — the network's topology
        version still matches the build's) and compiled search is enabled,
        this is a cheap re-weight: the compiled hierarchy re-customizes just
        the arcs whose base costs changed, O(touched arcs x their lower
        triangles) instead of a full witness-search reconstruction.  The
        dict ``upward`` / ``downward`` maps keep their build-time weights in
        that case — the compiled arc sets are authoritative and every query
        through :func:`ch_shortest_path` uses them; run the whole lifecycle
        under :func:`~repro.network.compiled.dispatch.compiled_disabled` for
        pure dict-walker ground truth (refresh then falls back to a full
        rebuild).

        Topology changes — or anything the compiled path cannot absorb —
        re-run the original construction (same feature / edge cost / hop
        limit) and adopt the result, so every holder of this hierarchy
        object sees current answers.  Returns ``self`` for chaining.
        """
        if self.build_args is None:
            raise StaleHierarchyError(self.built_version or 0, network.version)
        if self._try_reweight(network):
            return self
        feature, edge_cost, hop_limit = self.build_args
        fresh = build_contraction_hierarchy(
            network, feature=feature, edge_cost=edge_cost, hop_limit=hop_limit
        )
        self.__dict__.update(fresh.__dict__)
        return self

    def _try_reweight(self, network: RoadNetwork) -> bool:
        """Absorb cost-only drift by re-weighting the compiled hierarchy."""
        if not _dispatch.is_enabled():
            return False
        if self.built_topology_version is None or self.base_slot_weights is None:
            return False
        if getattr(network, "topology_version", None) != self.built_topology_version:
            return False
        feature, edge_cost, _ = self.build_args
        cost_fn = edge_cost or cost_function(feature)
        # Capture the network versions *before* resolving the cost array: a
        # concurrent cost update racing this refresh can then only make the
        # array newer than the stamp, so at worst the hierarchy still reads
        # as stale and the next query refreshes again — never the reverse
        # (current-looking stamps over pre-update weights).
        version = network.version
        cost_version = network.cost_version
        graph = network.compiled()
        resolved = graph.resolve_cost(cost_fn)
        if resolved is None:
            return False
        _, array, _ = resolved
        from ..network.compiled import ch as _ch

        compiled = _ch.compiled_hierarchy(self, graph, network)
        if compiled is None:
            return False
        compiled.reweight(array)
        self.base_slot_weights = np.asarray(array, dtype=np.float64)
        self.built_version = version
        self.built_cost_version = cost_version
        return True

    def query_cost(self, source: VertexId, destination: VertexId) -> float:
        """Shortest-path cost between two vertices (``inf`` if unreachable)."""
        if source == destination:
            return 0.0
        dist_f = self._upward_search(source, self.upward)
        dist_b = self._upward_search(destination, self.downward)
        best = math.inf
        smaller, larger = (dist_f, dist_b) if len(dist_f) <= len(dist_b) else (dist_b, dist_f)
        for vertex, cost in smaller.items():
            other = larger.get(vertex)
            if other is not None and cost + other < best:
                best = cost + other
        return best

    def query(self, source: VertexId, destination: VertexId) -> Path:
        """Shortest path between two vertices with shortcuts unpacked."""
        if source == destination:
            return Path.of([source])
        dist_f, parent_f = self._upward_search_with_parents(source, self.upward)
        dist_b, parent_b = self._upward_search_with_parents(destination, self.downward)
        best = math.inf
        meeting: VertexId | None = None
        for vertex, cost in dist_f.items():
            other = dist_b.get(vertex)
            if other is not None and cost + other < best:
                best = cost + other
                meeting = vertex
        if meeting is None:
            raise NoPathError(source, destination)

        forward = self._walk(parent_f, source, meeting)
        backward = self._walk(parent_b, destination, meeting)
        backward.reverse()
        contracted_path = forward + backward[1:]
        return Path.of(self._unpack(contracted_path))

    # ------------------------------------------------------------------ #
    def _upward_search(self, start: VertexId, arcs: dict[VertexId, list[_Shortcut]]) -> dict[VertexId, float]:
        dist: dict[VertexId, float] = {start: 0.0}
        settled: set[VertexId] = set()
        heap: list[tuple[float, VertexId]] = [(0.0, start)]
        while heap:
            cost_u, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            for arc in arcs.get(u, ()):  # only upward arcs exist in the maps
                candidate = cost_u + arc.weight
                if candidate < dist.get(arc.target, math.inf):
                    dist[arc.target] = candidate
                    heapq.heappush(heap, (candidate, arc.target))
        return dist

    def _upward_search_with_parents(
        self, start: VertexId, arcs: dict[VertexId, list[_Shortcut]]
    ) -> tuple[dict[VertexId, float], dict[VertexId, VertexId]]:
        dist: dict[VertexId, float] = {start: 0.0}
        parent: dict[VertexId, VertexId] = {}
        settled: set[VertexId] = set()
        heap: list[tuple[float, VertexId]] = [(0.0, start)]
        while heap:
            cost_u, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            for arc in arcs.get(u, ()):
                candidate = cost_u + arc.weight
                if candidate < dist.get(arc.target, math.inf):
                    dist[arc.target] = candidate
                    parent[arc.target] = u
                    heapq.heappush(heap, (candidate, arc.target))
        return dist, parent

    @staticmethod
    def _walk(parent: dict[VertexId, VertexId], start: VertexId, end: VertexId) -> list[VertexId]:
        vertices = [end]
        current = end
        while current != start:
            current = parent[current]
            vertices.append(current)
        vertices.reverse()
        return vertices

    def _unpack(self, contracted_path: list[VertexId]) -> list[VertexId]:
        """Recursively expand shortcuts back into original vertices."""
        result: list[VertexId] = [contracted_path[0]]
        for i in range(len(contracted_path) - 1):
            result.extend(self._unpack_arc(contracted_path[i], contracted_path[i + 1]))
        return result

    def _unpack_arc(self, u: VertexId, v: VertexId) -> list[VertexId]:
        via = self.middle.get((u, v))
        if via is None:
            return [v]
        return self._unpack_arc(u, via) + self._unpack_arc(via, v)


def build_contraction_hierarchy(
    network: RoadNetwork,
    feature: CostFeature = CostFeature.TRAVEL_TIME,
    edge_cost: EdgeCost | None = None,
    hop_limit: int = 16,
) -> ContractionHierarchy:
    """Preprocess ``network`` into a :class:`ContractionHierarchy`.

    ``hop_limit`` bounds the witness searches during contraction; smaller
    values make preprocessing faster at the price of a few extra shortcuts.

    The construction runs on the network's compiled view: vertices are dense
    indices, the initial arc weights come from the precompiled cost arrays
    (no per-edge Python cost calls for recognized costs), and the
    O(vertices · degree²) witness searches share generation-stamped distance
    arrays instead of allocating fresh dicts and sets per search.
    """
    cost_fn = edge_cost or cost_function(feature)
    built_version = network.version
    built_cost_version = network.cost_version
    graph = network.compiled()
    n = graph.vertex_count
    ids = graph.vertex_ids
    offsets, csr_targets = graph.offsets, graph.targets

    resolved = graph.resolve_cost(cost_fn)
    if resolved is not None:
        slot_weights = graph.forward_weights(*resolved)
    else:
        slot_weights = [cost_fn(edge) for edge in graph.edges]

    # Working graph: adjacency of weights (min weight per vertex pair),
    # indexed by dense vertex index.
    forward: list[dict[int, float]] = [{} for _ in range(n)]
    backward: list[dict[int, float]] = [{} for _ in range(n)]
    middle_idx: dict[tuple[int, int], int] = {}
    for u in range(n):
        for i in range(offsets[u], offsets[u + 1]):
            v = csr_targets[i]
            weight = slot_weights[i]
            if weight < forward[u].get(v, math.inf):
                forward[u][v] = weight
                backward[v][u] = weight

    # Generation-stamped witness-search scratch state: one dedicated
    # workspace for the whole build (CH construction is single-threaded and
    # long-lived, so it gets its own rather than borrowing from the pool).
    workspace = graph.workspace()
    dist = workspace.dist
    stamp = workspace.stamp
    settled_stamp = workspace.closed

    def witness_cost(start: int, end: int, exclude: int, limit: float) -> float:
        """Cost of the best path start->end avoiding ``exclude`` (bounded)."""
        gen = workspace.begin()
        dist[start] = 0.0
        stamp[start] = gen
        heap: list[tuple[float, int, int]] = [(0.0, start, 0)]
        while heap:
            cost_u, u, hops = heapq.heappop(heap)
            if settled_stamp[u] == gen:
                continue
            settled_stamp[u] = gen
            if u == end:
                return cost_u
            if cost_u > limit or hops >= hop_limit:
                continue
            for v, weight in forward[u].items():
                if v == exclude or settled_stamp[v] == gen:
                    continue
                candidate = cost_u + weight
                if stamp[v] != gen or candidate < dist[v]:
                    stamp[v] = gen
                    dist[v] = candidate
                    heapq.heappush(heap, (candidate, v, hops + 1))
        return math.inf

    def edge_difference(vertex: int) -> int:
        in_neighbors = list(backward[vertex].items())
        out_neighbors = list(forward[vertex].items())
        shortcuts = 0
        for u, w_in in in_neighbors:
            for w, w_out in out_neighbors:
                if u == w:
                    continue
                through = w_in + w_out
                if witness_cost(u, w, vertex, through) > through:
                    shortcuts += 1
        return shortcuts - (len(in_neighbors) + len(out_neighbors))

    heap: list[tuple[int, int]] = [(edge_difference(v), v) for v in range(n)]
    heapq.heapify(heap)

    order: dict[VertexId, int] = {}
    rank = 0
    contracted = [False] * n

    while heap:
        priority, vertex = heapq.heappop(heap)
        if contracted[vertex]:
            continue
        # Lazy update: recompute and re-insert if the priority became stale.
        current = edge_difference(vertex)
        if heap and current > heap[0][0]:
            heapq.heappush(heap, (current, vertex))
            continue

        order[ids[vertex]] = rank
        rank += 1
        contracted[vertex] = True

        in_neighbors = [(u, w) for u, w in backward[vertex].items() if not contracted[u]]
        out_neighbors = [(w, c) for w, c in forward[vertex].items() if not contracted[w]]
        for u, w_in in in_neighbors:
            for w, w_out in out_neighbors:
                if u == w:
                    continue
                through = w_in + w_out
                if witness_cost(u, w, vertex, through) > through:
                    if through < forward[u].get(w, math.inf):
                        forward[u][w] = through
                        backward[w][u] = through
                        middle_idx[(u, w)] = vertex
        # Remove the contracted vertex from the working graph.
        for u, _ in in_neighbors:
            forward[u].pop(vertex, None)
        for w, _ in out_neighbors:
            backward[w].pop(vertex, None)
        forward[vertex] = {}
        backward[vertex] = {}

    middle: dict[tuple[VertexId, VertexId], VertexId] = {
        (ids[u], ids[w]): ids[via] for (u, w), via in middle_idx.items()
    }

    # Rebuild full arc sets (originals + shortcuts) partitioned by rank.
    upward: dict[VertexId, list[_Shortcut]] = {v: [] for v in network.vertex_ids()}
    downward: dict[VertexId, list[_Shortcut]] = {v: [] for v in network.vertex_ids()}

    all_arcs: dict[tuple[VertexId, VertexId], float] = {}
    for edge, weight in zip(graph.edges, slot_weights):
        key = (edge.source, edge.target)
        if weight < all_arcs.get(key, math.inf):
            all_arcs[key] = weight
    # Shortcut weights: the stored "through" weights may have been improved
    # by later contractions, so reconstruct each one by summing its two
    # halves recursively from the final arc set.
    def arc_weight(u: VertexId, w: VertexId) -> float:
        via = middle.get((u, w))
        if via is None:
            return all_arcs[(u, w)]
        return arc_weight(u, via) + arc_weight(via, w)

    shortcut_arcs = {key: arc_weight(*key) for key in middle}
    combined = dict(all_arcs)
    for key, weight in shortcut_arcs.items():
        if weight < combined.get(key, math.inf):
            combined[key] = weight

    for (u, w), weight in combined.items():
        if order[u] < order[w]:
            upward[u].append(_Shortcut(target=w, weight=weight, via=middle.get((u, w))))
        else:
            downward[w].append(_Shortcut(target=u, weight=weight, via=middle.get((u, w))))

    return ContractionHierarchy(
        order=order,
        upward=upward,
        downward=downward,
        middle=middle,
        built_version=built_version,
        built_cost_version=built_cost_version,
        build_args=(feature, edge_cost, hop_limit),
        built_topology_version=getattr(network, "topology_version", None),
        base_slot_weights=np.asarray(slot_weights, dtype=np.float64),
    )


def ch_shortest_path(
    network: RoadNetwork,
    source: VertexId,
    destination: VertexId,
    hierarchy: ContractionHierarchy,
    on_stale: str = "raise",
) -> Path:
    """Query a prebuilt hierarchy for the path from ``source`` to ``destination``.

    The hierarchy's shortcut weights are frozen at build time, so a network
    that mutated since (live-traffic cost updates included) would silently
    yield pre-update routes.  ``on_stale`` picks the remedy: ``"raise"``
    (default) raises :class:`~repro.exceptions.StaleHierarchyError`,
    ``"rebuild"`` refreshes the hierarchy in place against the current
    network and then answers (a cheap shortcut re-weight for cost-only
    drift, a full rebuild for topology changes — see
    :meth:`ContractionHierarchy.refresh`), ``"ignore"`` knowingly answers
    from the frozen structure.

    With compiled search enabled the query runs on the CSR-compiled arc
    sets (:mod:`repro.network.compiled.ch`) — cost-identical to the dict
    walker, which remains the ground truth under
    :func:`~repro.network.compiled.dispatch.compiled_disabled`.
    """
    if source not in network:
        raise VertexNotFoundError(source)
    if destination not in network:
        raise VertexNotFoundError(destination)
    if on_stale not in ("raise", "rebuild", "ignore"):
        raise ValueError(f"on_stale must be 'raise', 'rebuild', or 'ignore', not {on_stale!r}")
    if hierarchy.is_stale(network):
        if on_stale == "raise":
            raise StaleHierarchyError(hierarchy.built_version or 0, network.version)
        if on_stale == "rebuild":
            hierarchy.refresh(network)
    compiled_path = _dispatch.try_ch(network, source, destination, hierarchy)
    if compiled_path is not None:
        return Path.of(compiled_path)
    return hierarchy.query(source, destination)
