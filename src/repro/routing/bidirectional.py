"""Bidirectional Dijkstra.

Searches simultaneously from the source (forward edges) and from the
destination (reverse edges) and stops when the frontiers provably cannot
improve the best meeting point.  Used by the efficiency benchmarks as the
faster exact alternative to plain Dijkstra; results are identical.
"""

from __future__ import annotations

import heapq
import math

from ..exceptions import NoPathError, VertexNotFoundError
from ..network.compiled import dispatch as _compiled
from ..network.road_network import RoadNetwork, VertexId
from .costs import CostFeature, EdgeCost, cost_function
from .path import Path


def bidirectional_dijkstra(
    network: RoadNetwork,
    source: VertexId,
    destination: VertexId,
    edge_cost: EdgeCost,
) -> Path:
    """Lowest-cost path via simultaneous forward and backward search.

    Recognized edge costs run both frontiers on the compiled CSR (the reverse
    frontier reuses the forward cost array through the predecessor layout);
    opaque ones use :func:`dict_bidirectional_dijkstra`.  Cacheable cost
    views are additionally goal-directed by default: both frontiers search
    on ALT landmark-reduced costs, which is cost-optimal but may pick a
    different equal-cost path than the reference — wrap calls in
    ``repro.network.compiled.alt_disabled()`` for the exact mirror.
    """
    if source not in network:
        raise VertexNotFoundError(source)
    if destination not in network:
        raise VertexNotFoundError(destination)
    if source == destination:
        return Path.of([source])

    vertices = _compiled.try_bidirectional(network, source, destination, edge_cost)
    if vertices is not None:
        return Path.of(vertices)
    return dict_bidirectional_dijkstra(network, source, destination, edge_cost)


def dict_bidirectional_dijkstra(
    network: RoadNetwork,
    source: VertexId,
    destination: VertexId,
    edge_cost: EdgeCost,
) -> Path:
    """The dict-based reference implementation (no compiled dispatch)."""
    if source not in network:
        raise VertexNotFoundError(source)
    if destination not in network:
        raise VertexNotFoundError(destination)
    if source == destination:
        return Path.of([source])

    dist_f: dict[VertexId, float] = {source: 0.0}
    dist_b: dict[VertexId, float] = {destination: 0.0}
    parent_f: dict[VertexId, VertexId] = {}
    parent_b: dict[VertexId, VertexId] = {}
    settled_f: set[VertexId] = set()
    settled_b: set[VertexId] = set()
    heap_f: list[tuple[float, VertexId]] = [(0.0, source)]
    heap_b: list[tuple[float, VertexId]] = [(0.0, destination)]

    best_cost = math.inf
    meeting: VertexId | None = None

    def relax_forward(u: VertexId, cost_u: float) -> None:
        nonlocal best_cost, meeting
        for v, edge in network.successors(u).items():
            if v in settled_f:
                continue
            candidate = cost_u + edge_cost(edge)
            if candidate < dist_f.get(v, math.inf):
                dist_f[v] = candidate
                parent_f[v] = u
                heapq.heappush(heap_f, (candidate, v))
            if v in dist_b and candidate + dist_b[v] < best_cost:
                best_cost = candidate + dist_b[v]
                meeting = v

    def relax_backward(u: VertexId, cost_u: float) -> None:
        nonlocal best_cost, meeting
        for v, edge in network.predecessors(u).items():
            if v in settled_b:
                continue
            candidate = cost_u + edge_cost(edge)
            if candidate < dist_b.get(v, math.inf):
                dist_b[v] = candidate
                parent_b[v] = u
                heapq.heappush(heap_b, (candidate, v))
            if v in dist_f and candidate + dist_f[v] < best_cost:
                best_cost = candidate + dist_f[v]
                meeting = v

    while heap_f and heap_b:
        top_f = heap_f[0][0]
        top_b = heap_b[0][0]
        if top_f + top_b >= best_cost:
            break
        if top_f <= top_b:
            cost_u, u = heapq.heappop(heap_f)
            if u in settled_f:
                continue
            settled_f.add(u)
            if u in dist_b and cost_u + dist_b[u] < best_cost:
                best_cost = cost_u + dist_b[u]
                meeting = u
            relax_forward(u, cost_u)
        else:
            cost_u, u = heapq.heappop(heap_b)
            if u in settled_b:
                continue
            settled_b.add(u)
            if u in dist_f and cost_u + dist_f[u] < best_cost:
                best_cost = cost_u + dist_f[u]
                meeting = u
            relax_backward(u, cost_u)

    if meeting is None:
        raise NoPathError(source, destination)

    forward: list[VertexId] = [meeting]
    current = meeting
    while current != source:
        current = parent_f[current]
        forward.append(current)
    forward.reverse()

    current = meeting
    backward: list[VertexId] = []
    while current != destination:
        current = parent_b[current]
        backward.append(current)

    return Path.of(forward + backward)


def bidirectional_by_feature(
    network: RoadNetwork,
    source: VertexId,
    destination: VertexId,
    feature: CostFeature = CostFeature.TRAVEL_TIME,
) -> Path:
    """Bidirectional search using a built-in cost feature."""
    return bidirectional_dijkstra(network, source, destination, cost_function(feature))
