"""A* search with great-circle lower-bound heuristics.

A* is used where a goal-directed search pays off — notably in the external
routing-service simulator and in the Case-2 attachment searches of the unified
router.  The heuristics are admissible lower bounds for each travel-cost
feature (straight-line distance; straight-line distance at the maximum speed
for travel time; at the most economical fuel rate for fuel).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

from ..exceptions import NoPathError, VertexNotFoundError
from ..network.compiled import dispatch as _compiled
from ..network.road_network import Edge, RoadNetwork, VertexId
from ..network.road_types import DEFAULT_SPEED_KMH, RoadType
from .costs import FEATURE_EDGE_ATTRIBUTES, CostFeature, EdgeCost, cost_function
from .fuel import fuel_per_km_ml, most_economical_speed_kmh
from .path import Path
from ..network.spatial import equirectangular_m

Heuristic = Callable[[VertexId], float]


def euclidean_heuristic(network: RoadNetwork, destination: VertexId) -> Heuristic:
    """Straight-line distance (meters) to the destination."""
    goal = network.coordinates(destination)

    def h(vertex: VertexId) -> float:
        return equirectangular_m(network.coordinates(vertex), goal)

    # Built-in geometric bounds are dominated by the ALT landmark bounds,
    # so the compiled dispatch may substitute those (see try_astar).
    h.alt_replaceable = True  # type: ignore[attr-defined]
    return h


def travel_time_heuristic(network: RoadNetwork, destination: VertexId) -> Heuristic:
    """Straight-line time (seconds) at the network's maximum speed."""
    goal = network.coordinates(destination)
    max_speed_ms = DEFAULT_SPEED_KMH[RoadType.MOTORWAY] / 3.6

    def h(vertex: VertexId) -> float:
        return equirectangular_m(network.coordinates(vertex), goal) / max_speed_ms

    h.alt_replaceable = True  # type: ignore[attr-defined]
    return h


def fuel_heuristic(network: RoadNetwork, destination: VertexId) -> Heuristic:
    """Straight-line fuel (ml) at the most economical speed."""
    goal = network.coordinates(destination)
    best_rate_per_m = fuel_per_km_ml(most_economical_speed_kmh()) / 1000.0

    def h(vertex: VertexId) -> float:
        return equirectangular_m(network.coordinates(vertex), goal) * best_rate_per_m

    h.alt_replaceable = True  # type: ignore[attr-defined]
    return h


def heuristic_for(network: RoadNetwork, destination: VertexId, feature: CostFeature) -> Heuristic:
    """An admissible heuristic for the given travel-cost feature."""
    if feature is CostFeature.DISTANCE:
        return euclidean_heuristic(network, destination)
    if feature is CostFeature.TRAVEL_TIME:
        return travel_time_heuristic(network, destination)
    return fuel_heuristic(network, destination)


def default_heuristic(
    network: RoadNetwork, destination: VertexId, edge_cost: EdgeCost
) -> Heuristic:
    """An admissible heuristic inferred from a tagged edge-cost callable.

    Single-feature costs get their geometric bound; anything else gets the
    zero heuristic (A* then degenerates to Dijkstra — correct, not fast).
    """
    attr = getattr(edge_cost, "cost_attr", None)
    for feature, feature_attr in FEATURE_EDGE_ATTRIBUTES.items():
        if attr == feature_attr:
            return heuristic_for(network, destination, feature)

    def zero(vertex: VertexId) -> float:
        return 0.0

    zero.alt_replaceable = True  # type: ignore[attr-defined]
    return zero


def astar(
    network: RoadNetwork,
    source: VertexId,
    destination: VertexId,
    edge_cost: EdgeCost,
    heuristic: Heuristic | None = None,
    edge_filter: Callable[[Edge], bool] | None = None,
) -> Path:
    """A* lowest-cost path; raises :class:`NoPathError` if unreachable.

    Recognized edge costs run on the compiled CSR kernel, goal-directed by
    default: cacheable cost views use precomputed ALT landmark lower bounds
    (pure array lookups per relaxation) whenever ``heuristic`` is omitted or
    is one of the built-in geometric bounds, which the landmark bounds
    dominate.  The answer is always cost-optimal, but ALT may pick a
    different equal-cost path than :func:`dict_astar` — wrap calls in
    ``repro.network.compiled.alt_disabled()`` for the exact mirror.  Opaque
    costs (and custom heuristics on opaque costs) use :func:`dict_astar`,
    the dict-based reference implementation; with ``heuristic=None`` an
    admissible default is inferred from the cost callable's feature tag.
    """
    if source not in network:
        raise VertexNotFoundError(source)
    if destination not in network:
        raise VertexNotFoundError(destination)
    if source == destination:
        return Path.of([source])

    if heuristic is None:
        # Resolve the default up front so that when ALT is unavailable the
        # query still runs on the compiled kernel (with the inferred
        # geometric bound) rather than the dict reference; the default is
        # alt_replaceable, so ALT takes precedence whenever it exists.
        heuristic = default_heuristic(network, destination, edge_cost)
    vertices = _compiled.try_astar(network, source, destination, edge_cost, heuristic, edge_filter)
    if vertices is not None:
        return Path.of(vertices)
    return dict_astar(network, source, destination, edge_cost, heuristic, edge_filter)


def dict_astar(
    network: RoadNetwork,
    source: VertexId,
    destination: VertexId,
    edge_cost: EdgeCost,
    heuristic: Heuristic | None = None,
    edge_filter: Callable[[Edge], bool] | None = None,
) -> Path:
    """The dict-based reference A* (no compiled dispatch)."""
    if source not in network:
        raise VertexNotFoundError(source)
    if destination not in network:
        raise VertexNotFoundError(destination)
    if source == destination:
        return Path.of([source])
    if heuristic is None:
        heuristic = default_heuristic(network, destination, edge_cost)

    g_score: dict[VertexId, float] = {source: 0.0}
    parent: dict[VertexId, VertexId] = {}
    closed: set[VertexId] = set()
    heap: list[tuple[float, VertexId]] = [(heuristic(source), source)]

    while heap:
        _, u = heapq.heappop(heap)
        if u in closed:
            continue
        closed.add(u)
        if u == destination:
            vertices = [destination]
            current = destination
            while current != source:
                current = parent[current]
                vertices.append(current)
            vertices.reverse()
            return Path.of(vertices)
        for v, edge in network.successors(u).items():
            if v in closed:
                continue
            if edge_filter is not None and not edge_filter(edge):
                continue
            tentative = g_score[u] + edge_cost(edge)
            if tentative < g_score.get(v, math.inf):
                g_score[v] = tentative
                parent[v] = u
                heapq.heappush(heap, (tentative + heuristic(v), v))

    raise NoPathError(source, destination)


def astar_by_feature(
    network: RoadNetwork,
    source: VertexId,
    destination: VertexId,
    feature: CostFeature = CostFeature.TRAVEL_TIME,
) -> Path:
    """A* using a built-in cost feature and its matching heuristic."""
    return astar(
        network,
        source,
        destination,
        cost_function(feature),
        heuristic_for(network, destination, feature),
    )
