"""The :class:`Path` value object.

A path is a sequence of vertex ids where consecutive vertices are connected by
edges of the road network.  The object also carries convenience accessors for
the aggregate costs of the path and supports splicing (concatenation at a
shared endpoint), which the region-graph router uses to stitch region-edge
paths together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..exceptions import NetworkError
from ..network.road_network import RoadNetwork, VertexId


@dataclass(frozen=True)
class Path:
    """An immutable vertex path through a road network."""

    vertices: tuple[VertexId, ...]

    def __post_init__(self) -> None:
        if not self.vertices:
            raise NetworkError("a path must contain at least one vertex")

    @classmethod
    def of(cls, vertices: Sequence[VertexId]) -> "Path":
        return cls(vertices=tuple(vertices))

    # -- basic protocol -------------------------------------------------- #
    def __len__(self) -> int:
        return len(self.vertices)

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self.vertices)

    def __getitem__(self, index: int) -> VertexId:
        return self.vertices[index]

    @property
    def source(self) -> VertexId:
        return self.vertices[0]

    @property
    def destination(self) -> VertexId:
        return self.vertices[-1]

    @property
    def edge_keys(self) -> tuple[tuple[VertexId, VertexId], ...]:
        """Directed ``(u, v)`` pairs along the path."""
        return tuple(
            (self.vertices[i], self.vertices[i + 1]) for i in range(len(self.vertices) - 1)
        )

    @property
    def is_trivial(self) -> bool:
        """True if the path has a single vertex (source == destination)."""
        return len(self.vertices) == 1

    # -- aggregate costs -------------------------------------------------- #
    def distance_m(self, network: RoadNetwork) -> float:
        return network.path_distance_m(self.vertices)

    def travel_time_s(self, network: RoadNetwork) -> float:
        return network.path_travel_time_s(self.vertices)

    def fuel_ml(self, network: RoadNetwork) -> float:
        return network.path_fuel_ml(self.vertices)

    def is_valid(self, network: RoadNetwork) -> bool:
        """True if every hop of the path is an edge of ``network``."""
        return network.is_path(self.vertices)

    # -- composition ------------------------------------------------------ #
    def splice(self, other: "Path") -> "Path":
        """Concatenate two paths that share an endpoint.

        ``self.destination`` must equal ``other.source``; the shared vertex is
        not duplicated in the result.
        """
        if self.destination != other.source:
            raise NetworkError(
                f"cannot splice: path ends at {self.destination} but next path "
                f"starts at {other.source}"
            )
        return Path(vertices=self.vertices + other.vertices[1:])

    def reversed(self) -> "Path":
        """The same vertex sequence in reverse order.

        Only meaningful on networks where the reverse edges exist; callers
        should verify with :meth:`is_valid`.
        """
        return Path(vertices=tuple(reversed(self.vertices)))

    def sub_path(self, start: VertexId, end: VertexId) -> "Path":
        """The sub-path between the first occurrences of ``start`` and ``end``."""
        try:
            i = self.vertices.index(start)
            j = self.vertices.index(end, i)
        except ValueError as exc:
            raise NetworkError(
                f"sub_path endpoints {start} -> {end} not found in order on this path"
            ) from exc
        return Path(vertices=self.vertices[i : j + 1])

    def contains_edge(self, source: VertexId, target: VertexId) -> bool:
        return (source, target) in set(self.edge_keys)

    def coordinates(self, network: RoadNetwork) -> list[tuple[float, float]]:
        """The ``(lon, lat)`` polyline of the path."""
        return [network.coordinates(v) for v in self.vertices]


def splice_all(paths: Sequence[Path]) -> Path:
    """Splice a sequence of paths that chain end-to-start into one path."""
    if not paths:
        raise NetworkError("splice_all() requires at least one path")
    result = paths[0]
    for nxt in paths[1:]:
        result = result.splice(nxt)
    return result
