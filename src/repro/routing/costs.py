"""Travel-cost features and edge-cost functions.

The paper's routing preferences pick a *travel-cost feature* for the master
dimension.  This module defines the cost-feature enumeration (distance, travel
time, fuel consumption) and turns each feature into an edge-cost callable that
routing algorithms can consume.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable

from ..network.road_network import Edge

EdgeCost = Callable[[Edge], float]
"""An edge-cost function mapping an edge to a non-negative scalar."""


class CostFeature(str, Enum):
    """The three travel-cost features used in the paper (DI, TT, FC)."""

    DISTANCE = "DI"
    TRAVEL_TIME = "TT"
    FUEL = "FC"

    @property
    def short_name(self) -> str:
        """The two-letter code used in the paper's figures."""
        return self.value


ALL_COST_FEATURES: tuple[CostFeature, ...] = (
    CostFeature.DISTANCE,
    CostFeature.TRAVEL_TIME,
    CostFeature.FUEL,
)


def edge_distance(edge: Edge) -> float:
    """Edge cost: length in meters (``wDI``)."""
    return edge.distance_m


def edge_travel_time(edge: Edge) -> float:
    """Edge cost: free-flow travel time in seconds (``wTT``)."""
    return edge.travel_time_s


def edge_fuel(edge: Edge) -> float:
    """Edge cost: fuel consumption in milliliters (``wFC``)."""
    return edge.fuel_ml


_COST_FUNCTIONS: dict[CostFeature, EdgeCost] = {
    CostFeature.DISTANCE: edge_distance,
    CostFeature.TRAVEL_TIME: edge_travel_time,
    CostFeature.FUEL: edge_fuel,
}

FEATURE_EDGE_ATTRIBUTES: dict[CostFeature, str] = {
    CostFeature.DISTANCE: "distance_m",
    CostFeature.TRAVEL_TIME: "travel_time_s",
    CostFeature.FUEL: "fuel_ml",
}
"""The :class:`Edge` attribute carrying each feature's weight.

Cost callables are tagged with these names (``cost_attr`` / ``cost_terms``)
so :class:`repro.network.compiled.CompiledGraph` can swap the per-edge Python
call for a precompiled flat cost array.
"""

for _feature, _fn in _COST_FUNCTIONS.items():
    _fn.cost_attr = FEATURE_EDGE_ATTRIBUTES[_feature]  # type: ignore[attr-defined]


def cost_function(feature: CostFeature) -> EdgeCost:
    """Return the edge-cost callable for a travel-cost feature."""
    return _COST_FUNCTIONS[feature]


def weighted_cost(weights: dict[CostFeature, float]) -> EdgeCost:
    """A linear combination of the three cost features.

    Used by the Dom baseline, which learns per-driver trade-off weights over
    distance, travel time, and fuel.  Weights may be any non-negative numbers;
    they are used as-is (callers normalize if they need to).
    """
    items = [(cost_function(feature), float(weight)) for feature, weight in weights.items()]

    def combined(edge: Edge) -> float:
        return sum(fn(edge) * weight for fn, weight in items)

    # Expose the combination to the compiled dispatch layer; term order is
    # preserved so the vectorized accumulation matches the closure bit-for-bit.
    combined.cost_terms = tuple(  # type: ignore[attr-defined]
        (FEATURE_EDGE_ATTRIBUTES[feature], float(weight)) for feature, weight in weights.items()
    )
    return combined
