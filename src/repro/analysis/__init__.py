"""Runtime analysis companions to the static invariants (see tools/reprolint).

:mod:`repro.analysis.sanitizer` provides the debug-mode coherence sanitizer
that checks — while real traffic flows — the version-stamp invariants
reprolint's RL001/RL002 check statically.
"""

from .sanitizer import (
    CoherenceFinding,
    CoherenceSanitizer,
    CoherenceViolation,
    check_cost_coherence,
    sanitize,
)

__all__ = [
    "CoherenceFinding",
    "CoherenceSanitizer",
    "CoherenceViolation",
    "check_cost_coherence",
    "sanitize",
]
