"""Debug-mode runtime coherence sanitizer for the compiled serving stack.

The static linter (``tools/reprolint``, rule RL001) proves that cache
*population sites* read a version stamp; this module checks the dual,
dynamic property while real requests flow: **every cache hit served is
stamped with the live version**.  It is the runtime net for the
stale-replay class of bug — an artifact built under cost version ``k``
answering queries after the store moved to ``k+1``.

Two probes are installed while the :func:`sanitize` context is active:

* **CostStore probe** — wraps the single choke point every versioned
  per-snapshot cache goes through
  (:meth:`~repro.network.compiled.graph.CostStore._cached`, backing
  ``memo()`` / ``linear_array`` / ``forward_weights`` / ``reverse_weights``).
  A hit whose stamp is neither :data:`~repro.network.compiled.graph.TOPOLOGY_STAMP`
  nor the store's **current** cost version is recorded as a
  ``stale-cost-cache-hit``: some caller replayed an artifact that predates a
  live-traffic patch.
* **Hierarchy probe** — wraps the compiled contraction-hierarchy dispatch
  (:func:`~repro.network.compiled.dispatch.try_ch`).  A query answered by a
  hierarchy whose ``built_version`` no longer matches the network's mutation
  counter is recorded as a ``stale-hierarchy-query``: pre-update shortcut
  weights are serving post-update traffic (the ``on_stale="ignore"`` escape
  hatch does exactly this knowingly; under the sanitizer it is surfaced).

Intended for debug runs, soak tests, and CI property tests — the wrappers
add a dictionary peek and a couple of integer compares per lookup, so a
clean :class:`~repro.service.service.RoutingService` route/update cycle
runs at essentially full speed and records **zero** findings.  In
``strict`` mode the first violation raises :class:`CoherenceViolation`;
otherwise findings accumulate on the returned :class:`CoherenceSanitizer`
for inspection via :attr:`~CoherenceSanitizer.findings` /
:meth:`~CoherenceSanitizer.assert_clean`.

Caveat: a *legitimately* racing reader (one that resolved its cost arrays
immediately before a concurrent patch landed) can trip the cost-store probe
even though serving it consistent pre-patch data is by design; run the
sanitizer on single-writer debug traffic when attributing findings.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from ..network.compiled import dispatch as _dispatch
from ..network.compiled.graph import TOPOLOGY_STAMP, CostStore

if TYPE_CHECKING:  # pragma: no cover
    from ..network.road_network import RoadNetwork


class CoherenceViolation(AssertionError):
    """A cache hit was served with a stamp that no longer matches the live
    version (raised in ``strict`` mode; carries the :class:`CoherenceFinding`)."""

    def __init__(self, finding: "CoherenceFinding") -> None:
        super().__init__(finding.describe())
        self.finding = finding


@dataclass(frozen=True)
class CoherenceFinding:
    """One observed coherence violation."""

    kind: str
    """``"stale-cost-cache-hit"`` or ``"stale-hierarchy-query"``."""
    detail: str
    """Human-readable description of the cache key / query."""
    stamp: object
    """The version the served artifact was stamped with."""
    live_version: object
    """The live version at the moment the hit was served."""

    def describe(self) -> str:
        return (
            f"{self.kind}: {self.detail} served with stamp {self.stamp!r} "
            f"while the live version is {self.live_version!r}"
        )


class CoherenceSanitizer:
    """Findings accumulator handed back by :func:`sanitize`."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.findings: list[CoherenceFinding] = []
        self._lock = threading.Lock()

    def record(self, finding: CoherenceFinding) -> None:
        with self._lock:
            self.findings.append(finding)
        if self.strict:
            raise CoherenceViolation(finding)

    @property
    def ok(self) -> bool:
        return not self.findings

    def assert_clean(self) -> None:
        """Raise :class:`CoherenceViolation` on the first recorded finding."""
        if self.findings:
            raise CoherenceViolation(self.findings[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoherenceSanitizer(findings={len(self.findings)}, strict={self.strict})"


def _probed_cached(
    original: Callable, sanitizer: CoherenceSanitizer
) -> Callable:
    """The :meth:`CostStore._cached` wrapper recording stale hits."""

    def cached(self: CostStore, cache, key, build, stamp):
        # Peek the entry exactly as the real lookup will: a hit requires the
        # entry's stamp to equal the caller's.  Checking against the store's
        # *current* version catches callers that resolved (and stamped) their
        # inputs under a version the store has since moved past.
        with self._memo_lock:
            entry = cache.get(key)
            hit = entry is not None and entry[0] == stamp
            live = self._version
        if hit and stamp != TOPOLOGY_STAMP and stamp != live:
            sanitizer.record(
                CoherenceFinding(
                    kind="stale-cost-cache-hit",
                    detail=f"cost-store cache key {key!r}",
                    stamp=stamp,
                    live_version=live,
                )
            )
        return original(self, cache, key, build, stamp)

    cached.__wrapped__ = original  # type: ignore[attr-defined]
    return cached


def _probed_try_ch(original: Callable, sanitizer: CoherenceSanitizer) -> Callable:
    """The :func:`dispatch.try_ch` wrapper recording stale hierarchy queries."""

    def try_ch(network, source, destination, hierarchy):
        built = getattr(hierarchy, "built_version", None)
        live = getattr(network, "version", None)
        result = original(network, source, destination, hierarchy)
        # Only flag queries the compiled path actually answered: a None
        # return fell back to the caller's dict walker (or was ineligible),
        # and ch_shortest_path's own staleness handling already ran by now.
        if result is not None and built is not None and live is not None and built != live:
            sanitizer.record(
                CoherenceFinding(
                    kind="stale-hierarchy-query",
                    detail=f"contraction-hierarchy query {source!r} -> {destination!r}",
                    stamp=built,
                    live_version=live,
                )
            )
        return result

    try_ch.__wrapped__ = original  # type: ignore[attr-defined]
    return try_ch


#: Serializes installs/uninstalls so nested / concurrent ``sanitize()``
#: contexts unwind in order without losing the original implementations.
_INSTALL_LOCK = threading.Lock()


@contextmanager
def sanitize(strict: bool = False) -> Iterator[CoherenceSanitizer]:
    """Install the coherence probes for the duration of the ``with`` block.

    ``strict=True`` raises :class:`CoherenceViolation` at the first stale
    hit (pinpointing the offending call stack); the default records findings
    on the yielded :class:`CoherenceSanitizer` so a soak run can finish and
    report them all.  Probes are installed process-wide (they wrap the
    class/module attributes) and fully removed on exit, even on error.
    """
    sanitizer = CoherenceSanitizer(strict=strict)
    with _INSTALL_LOCK:
        original_cached = CostStore._cached
        original_try_ch = _dispatch.try_ch
        CostStore._cached = _probed_cached(original_cached, sanitizer)
        _dispatch.try_ch = _probed_try_ch(original_try_ch, sanitizer)
    try:
        yield sanitizer
    finally:
        with _INSTALL_LOCK:
            CostStore._cached = original_cached
            _dispatch.try_ch = original_try_ch


def check_cost_coherence(
    network: "RoadNetwork", strict: bool = True
) -> CoherenceSanitizer:
    """One-shot coherence audit of a network's cost state (post-recovery).

    Used by :meth:`~repro.service.durability.manager.DurabilityManager.
    recover` as the final gate before a restored network serves traffic.
    Two families of checks run:

    * **Value integrity** — every cost array has the compiled topology's
      edge count and only finite, strictly positive entries (a corrupt
      snapshot or a bad replay would surface here first).
    * **Cache coherence** — under :func:`sanitize`, the stamped cache choke
      point is exercised twice per attribute (miss-then-hit), proving every
      artifact the restored store hands out is stamped with the *live*
      version — i.e. recovery didn't leave a pre-restore cache entry behind.

    Returns the sanitizer (``.ok`` / ``.findings``); with ``strict=True``
    (the default) the first violation raises instead.
    """
    import numpy as np

    from ..network.compiled.graph import EDGE_COST_ATTRIBUTES

    compiled = network.compiled()
    edge_count = compiled.topology.edge_count
    store = compiled.costs
    live_arrays = store.export_arrays()
    for attr in EDGE_COST_ATTRIBUTES:
        array = np.asarray(live_arrays[attr])
        if array.shape != (edge_count,):
            raise CoherenceViolation(
                CoherenceFinding(
                    kind="incoherent-cost-array",
                    detail=f"{attr} has shape {array.shape}, expected ({edge_count},)",
                    stamp=None,
                    live_version=network.cost_version,
                )
            )
        if not np.all(np.isfinite(array)) or not np.all(array > 0.0):
            raise CoherenceViolation(
                CoherenceFinding(
                    kind="incoherent-cost-array",
                    detail=f"{attr} contains non-finite or non-positive values",
                    stamp=None,
                    live_version=network.cost_version,
                )
            )
    with sanitize(strict=strict) as sanitizer:
        for attr in EDGE_COST_ATTRIBUTES:
            terms = ((attr, 1.0),)
            first = store.linear_array(terms)
            second = store.linear_array(terms)
            if first is not second or not np.array_equal(first, live_arrays[attr]):
                sanitizer.record(
                    CoherenceFinding(
                        kind="incoherent-cost-cache",
                        detail=f"linear_array({attr!r}) is not serving the live array",
                        stamp=None,
                        live_version=network.cost_version,
                    )
                )
    return sanitizer
