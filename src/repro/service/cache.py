"""A thread-safe LRU cache for served routes.

Answers are keyed by ``(engine, source, destination, peak bucket, driver,
cost override)``: the peak bucket folds departure times into ``"peak"`` /
``"offpeak"`` (or ``"any"`` when no time was given) so that a time-dependent
engine's peak and off-peak answers never shadow each other, while all
departure times inside one bucket share a single cache line — exactly the
granularity at which the L2R region graphs differ.  Driver id and cost
override are part of the key so personalized answers are never replayed to
the wrong caller.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Collection

from ..core.config import PeakHours
from .api import RouteRequest, RouteResponse

CacheKey = tuple[object, ...]


@dataclass(frozen=True)
class CacheStats:
    """Counters of one :class:`RouteCache` (snapshot)."""

    hits: int
    misses: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class RouteCache:
    """LRU cache of successful :class:`RouteResponse` objects."""

    def __init__(self, max_size: int = 2048, peak_hours: PeakHours | None = None) -> None:
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        self._max_size = max_size
        self._peak_hours = peak_hours or PeakHours()
        self._entries: OrderedDict[CacheKey, RouteResponse] = OrderedDict()
        self._time_dependent: set[str] = set()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------ #
    @property
    def peak_hours(self) -> PeakHours:
        return self._peak_hours

    def set_peak_hours(self, peak_hours: PeakHours) -> None:
        """Re-bucket with different peak windows (drops all cached entries,
        since existing keys were derived under the old bucketing)."""
        with self._lock:
            self._peak_hours = peak_hours
            self._entries.clear()

    def mark_time_dependent(self, engine: str, enabled: bool = True) -> None:
        """Declare that an engine's answers depend on the peak bucket.

        Static engines (the default) share one ``"any"`` bucket regardless of
        departure time — their answer is the same, so splitting it across
        peak / off-peak lines would only waste capacity and depress hits.
        """
        with self._lock:
            if enabled:
                self._time_dependent.add(engine)
            else:
                self._time_dependent.discard(engine)

    def _bucket(self, engine: str, request: RouteRequest) -> str:
        """Peak bucket derivation; the caller must hold the lock."""
        if engine not in self._time_dependent or request.departure_time is None:
            return "any"
        if self._peak_hours.is_peak(request.departure_time):
            return "peak"
        return "offpeak"

    def bucket_for(self, engine: str, request: RouteRequest) -> str:
        """The peak bucket this request's answer is cached under.

        Exposed so the service's batch partitioning can group requests by
        the same time dimension the cache keys on, without reaching into
        the key tuple's layout.
        """
        with self._lock:
            return self._bucket(engine, request)

    def _key(
        self, engine: str, request: RouteRequest, version: object = None
    ) -> CacheKey:
        """Key derivation; the caller must hold the lock (peak windows can
        be swapped concurrently by :meth:`set_peak_hours`).

        ``version`` is the engine's optional ``cache_version`` tag (e.g. a
        contraction hierarchy's weights version): answers computed under a
        different tag never shadow each other, so an engine whose internal
        state moved — without any re-registration — starts with fresh lines.
        """
        bucket = self._bucket(engine, request)
        return (
            engine,
            request.source,
            request.destination,
            bucket,
            request.driver_id,
            request.cost_override,
            request.goal_directed,
            version,
        )

    def key_for(
        self, engine: str, request: RouteRequest, version: object = None
    ) -> CacheKey:
        with self._lock:
            return self._key(engine, request, version)

    def get(
        self,
        engine: str,
        request: RouteRequest,
        probe: bool = False,
        version: object = None,
    ) -> RouteResponse | None:
        """The cached answer for this request, or ``None``.

        A normal lookup counts one hit or one miss.  ``probe=True`` marks a
        follow-up lookup for a request whose primary lookup already counted
        a miss (the service's fallback-chain peeks): a probe miss counts
        nothing, and a probe hit reclassifies that earlier miss as a hit —
        the counters stay at one outcome per logical request.
        """
        with self._lock:
            key = self._key(engine, request, version)
            cached = self._entries.get(key)
            if cached is None:
                if not probe:
                    self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            if probe and self._misses > 0:
                self._misses -= 1
        # A replay is a cache answer whatever computed the entry: clearing
        # ``batched`` keeps the batch counters at one count per computation.
        return cached.with_request(request, cache_hit=True, latency_s=0.0, batched=False)

    def put(
        self,
        engine: str,
        response: RouteResponse,
        guard: Callable[[], bool] | None = None,
        version: object = None,
    ) -> None:
        """Remember a successful response; failed responses are not cached.

        ``guard`` is evaluated under the cache lock and vetoes the insert
        when it returns False — the service uses it to drop answers computed
        by an engine that was re-registered while the request was in flight.
        ``version`` must be the engine's ``cache_version`` tag observed
        *after* the answer was computed, so the entry lands under the state
        that produced it.
        """
        if not response.ok:
            return
        with self._lock:
            if guard is not None and not guard():
                return
            key = self._key(engine, response.request, version)
            self._entries[key] = response
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_size:
                self._entries.popitem(last=False)

    def invalidate_edges(
        self,
        edges: Collection[tuple[object, object]],
        threshold: int | None = None,
    ) -> int:
        """Drop cached routes that cross any of the given directed edges.

        The delta-aware remedy for live-traffic cost updates: a cached
        answer stays valid exactly while none of its hops changed cost, so
        only responses whose path crosses a touched edge are evicted.  When
        the batch touches more than ``threshold`` edges the per-entry path
        scan stops paying for itself and the whole cache is dropped instead
        (service-wide invalidation, same effect as :meth:`clear` but with
        the hit/miss counters kept).  Returns the number of entries dropped.
        """
        touched = set(edges)
        if not touched:
            return 0
        with self._lock:
            if threshold is not None and len(touched) > threshold:
                dropped = len(self._entries)
                self._entries.clear()
                return dropped
            stale = [
                key
                for key, response in self._entries.items()
                if response.path is not None
                and any(hop in touched for hop in response.path.edge_keys)
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def invalidate_engine(self, engine: str) -> int:
        """Drop every entry cached for *or produced by* ``engine``.

        An answer can sit under another engine's key when it arrived through
        a fallback chain, so both the key's engine and the response's
        answering engine are checked.  Returns the count dropped.
        """
        with self._lock:
            stale = [
                key
                for key, response in self._entries.items()
                if key[0] == engine or response.engine == engine
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def reset_counters(self) -> None:
        """Zero the hit/miss counters without dropping cached entries."""
        with self._lock:
            self._hits = 0
            self._misses = 0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                max_size=self._max_size,
            )
