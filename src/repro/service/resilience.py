"""Resilience primitives of the serving layer.

Production routing traffic is heavy-tailed: slow engines, crashing engines,
and overload are the common case at scale, not the exception.  This module
carries the four mechanisms :class:`~repro.service.RoutingService` composes
to stay up under those conditions:

* :class:`DeadlineBudget` — a per-request wall-clock budget, threaded through
  ``route`` / ``route_many`` and consumed across fallback hops and retry
  backoff sleeps, so one slow engine cannot eat the whole request;
* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *seeded* jitter (replayable in tests), applied only to retryable
  (:class:`~repro.exceptions.TransientEngineError`-shaped) failures;
* :class:`CircuitBreaker` — per-engine closed / open / half-open breaker over
  a sliding failure-rate window; an open breaker skips the engine entirely
  so the fallback chain is consulted without paying the failure latency;
* :class:`AdmissionController` — a bound on concurrently served requests
  with a :class:`~repro.exceptions.ServiceOverloadedError` fast-reject path,
  turning overload into cheap immediate sheds instead of queueing collapse.

All four are deliberately clock-injectable (``clock=time.monotonic`` by
default) so the chaos suite can drive state transitions deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    ServiceOverloadedError,
    TransientEngineError,
)

Clock = Callable[[], float]


# ---------------------------------------------------------------------- #
# Deadline budgets
# ---------------------------------------------------------------------- #
class DeadlineBudget:
    """Wall-clock budget for one request, consumed across fallback hops.

    The budget starts ticking at construction; every stage of the serving
    pipeline (engine attempts, retry backoff sleeps, fallback hops) checks
    :meth:`remaining` / :meth:`check` before spending more time.  Engines
    are cooperative — a hop that already started is not preempted — so the
    budget bounds *additional* work, which is the useful guarantee a
    GIL-bound service can actually make.
    """

    __slots__ = ("budget_s", "_started", "_deadline", "_clock")

    def __init__(self, budget_s: float, clock: Clock = time.monotonic) -> None:
        if budget_s <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget_s = float(budget_s)
        self._clock = clock
        self._started = clock()
        # Precomputed absolute deadline: `expired` is checked on every
        # fallback hop of every request, so it must be one clock read and
        # one comparison, not a property chain.
        self._deadline = self._started + self.budget_s

    @classmethod
    def start(
        cls, budget_s: float | None, clock: Clock = time.monotonic
    ) -> "DeadlineBudget | None":
        """A running budget, or ``None`` when no deadline was requested."""
        if budget_s is None:
            return None
        return cls(budget_s, clock=clock)

    def elapsed(self) -> float:
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.budget_s - self.elapsed())

    @property
    def expired(self) -> bool:
        return self._clock() >= self._deadline

    def check(self, stage: str = "") -> None:
        """Raise :class:`DeadlineExceededError` when the budget is spent."""
        elapsed = self.elapsed()
        if elapsed >= self.budget_s:
            raise DeadlineExceededError(self.budget_s, elapsed, stage=stage)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeadlineBudget(budget_s={self.budget_s}, remaining={self.remaining():.3f})"


# ---------------------------------------------------------------------- #
# Retry policy
# ---------------------------------------------------------------------- #
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    Only *retryable* failures are retried: transient engine errors (and any
    extra exception types passed in), never request-level failures like
    ``NoPathError`` — retrying a request that deterministically has no
    answer only burns deadline budget.  Jitter is drawn from a seeded
    ``np.random.Generator`` so two policies built with the same seed produce
    identical backoff schedules (the chaos suite depends on this).
    """

    def __init__(
        self,
        max_retries: int = 2,
        base_delay_s: float = 0.005,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
        retryable: tuple[type[BaseException], ...] = (TransientEngineError,),
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if base_delay_s < 0 or multiplier < 1.0 or jitter < 0:
            raise ValueError("backoff parameters must be non-negative (multiplier >= 1)")
        self.max_retries = max_retries
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.jitter = jitter
        self.retryable = retryable
        self._retryable_names = frozenset(cls.__name__ for cls in retryable)
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()

    def delay(self, attempt: int) -> float | None:
        """Backoff before retry number ``attempt`` (0-based); ``None`` = stop.

        Draws one jitter sample per granted retry, under a lock, so the
        consumed randomness is a deterministic function of the number of
        retries granted — independent of which requests needed them.
        """
        if attempt >= self.max_retries:
            return None
        base = self.base_delay_s * (self.multiplier**attempt)
        with self._lock:
            fraction = float(self._rng.random())
        return base * (1.0 + self.jitter * fraction)

    def is_retryable(self, failure: BaseException | str | None) -> bool:
        """Whether a failure (exception or response error string) may retry.

        Engines built on ``BaseEngine`` report failures as response strings
        of the form ``"TypeName: message"`` — the type-name prefix is matched
        against the retryable classes (and their registered subclasses by
        isinstance when a real exception is available).
        """
        if failure is None:
            return False
        if isinstance(failure, BaseException):
            return isinstance(failure, self.retryable)
        name = failure.split(":", 1)[0].strip()
        return name in self._retryable_names or name in _TRANSIENT_ERROR_NAMES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(max_retries={self.max_retries}, "
            f"base_delay_s={self.base_delay_s}, multiplier={self.multiplier})"
        )


# ---------------------------------------------------------------------- #
# Hedged requests
# ---------------------------------------------------------------------- #
class HedgePolicy:
    """The p95-derived delay before hedging a request to a second replica.

    Hedging trades duplicate work for tail latency: fire the duplicate only
    once the primary has been quiet for longer than the p95 of recent
    round-trips (times ``multiplier``), so under healthy operation at most
    ~5% of requests hedge, while a stalled or dead primary is cut off
    quickly.  Latencies feed a bounded ring; until enough samples exist the
    configured ``initial_delay_s`` applies.  Thread-safe.
    """

    def __init__(
        self,
        multiplier: float = 1.5,
        min_delay_s: float = 0.01,
        max_delay_s: float = 2.0,
        initial_delay_s: float = 0.25,
        window: int = 256,
        min_samples: int = 8,
    ) -> None:
        if multiplier <= 0 or window < 1 or min_samples < 1:
            raise ValueError("multiplier/window/min_samples must be positive")
        if not (0 < min_delay_s <= max_delay_s):
            raise ValueError("need 0 < min_delay_s <= max_delay_s")
        self.multiplier = multiplier
        self.min_delay_s = min_delay_s
        self.max_delay_s = max_delay_s
        self.initial_delay_s = initial_delay_s
        self.min_samples = min_samples
        self._window: deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()

    def record(self, latency_s: float) -> None:
        """Feed one completed round-trip (hedged or not) into the window."""
        with self._lock:
            self._window.append(float(latency_s))

    def delay_s(self) -> float:
        """The current hedge trigger delay, clamped to the configured band."""
        with self._lock:
            samples = sorted(self._window)
        if len(samples) < self.min_samples:
            base = self.initial_delay_s
        else:
            rank = min(len(samples) - 1, max(0, round(0.95 * (len(samples) - 1))))
            base = samples[rank] * self.multiplier
        return min(self.max_delay_s, max(self.min_delay_s, base))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HedgePolicy(delay_s={self.delay_s():.4f}, "
            f"samples={len(self._window)})"
        )


def _transient_subclass_names() -> frozenset[str]:
    """Names of every known TransientEngineError subclass (string matching
    for failures that were flattened into response error strings)."""
    names = set()
    stack = [TransientEngineError]
    while stack:
        cls = stack.pop()
        names.add(cls.__name__)
        stack.extend(cls.__subclasses__())
    return frozenset(names)


_TRANSIENT_ERROR_NAMES = _transient_subclass_names()


def is_transient_failure(failure: BaseException | str | None) -> bool:
    """Whether a failure indicates engine ill-health (vs a request error).

    Circuit breakers only count these: a ``NoPathError`` proves the engine
    is alive and answering, so it must not open the breaker.
    """
    if failure is None:
        return False
    if isinstance(failure, BaseException):
        return isinstance(
            failure, (TransientEngineError, DeadlineExceededError, TimeoutError)
        )
    name = failure.split(":", 1)[0].strip()
    return name in _TRANSIENT_ERROR_NAMES or name in {"TimeoutError", "DeadlineExceededError"}


# ---------------------------------------------------------------------- #
# Circuit breaker
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CircuitBreakerConfig:
    """Tuning of one per-engine :class:`CircuitBreaker`."""

    window: int = 16
    """Sliding window of most-recent outcomes the failure rate is computed
    over."""
    failure_threshold: float = 0.5
    """Open when the windowed failure fraction reaches this value."""
    min_samples: int = 4
    """Never open before this many outcomes are in the window (a single
    startup failure must not blackhole an engine)."""
    recovery_s: float = 5.0
    """Seconds an open breaker waits before letting half-open probes through."""
    half_open_probes: int = 1
    """Concurrent trial requests allowed while half-open."""

    def __post_init__(self) -> None:
        if not (0.0 < self.failure_threshold <= 1.0):
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.window < 1 or self.min_samples < 1 or self.half_open_probes < 1:
            raise ValueError("window/min_samples/half_open_probes must be >= 1")
        if self.recovery_s < 0:
            raise ValueError("recovery_s must be >= 0")


class CircuitBreaker:
    """Closed / open / half-open breaker over a sliding failure-rate window.

    * **closed** — calls flow; outcomes land in the window.  When the window
      holds at least ``min_samples`` outcomes and the failure fraction
      reaches ``failure_threshold``, the breaker *trips* open.
    * **open** — :meth:`allow` answers ``False`` (callers skip straight to
      the fallback chain) until ``recovery_s`` elapsed, then transitions to
      half-open.
    * **half-open** — up to ``half_open_probes`` concurrent trial calls are
      let through; a success closes the breaker (window reset), a failure
      re-opens it (counted as another trip).

    Thread-safe; the clock is injectable for deterministic tests.
    """

    def __init__(
        self,
        config: CircuitBreakerConfig | None = None,
        clock: Clock = time.monotonic,
    ) -> None:
        self.config = config or CircuitBreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._window: deque[bool] = deque(maxlen=self.config.window)
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._trips = 0

    @property
    def state(self) -> str:
        """``"closed"`` / ``"open"`` / ``"half-open"`` (open may report
        half-open once the recovery period elapsed)."""
        with self._lock:
            return self._observable_state()

    def _observable_state(self) -> str:
        """State as a caller would observe it; lock held by caller."""
        if self._state == "open" and (
            self._clock() - self._opened_at >= self.config.recovery_s
        ):
            return "half-open"
        return self._state

    @property
    def trips(self) -> int:
        """Times the breaker transitioned to open (including re-opens)."""
        with self._lock:
            return self._trips

    def allow(self) -> bool:
        """Whether a call may proceed now (may move open -> half-open)."""
        # Lock-free fast path: reading the state string is atomic under the
        # GIL, and the worst race (a concurrent trip to open) only lets one
        # already-started request through — indistinguishable from that
        # request having raced ahead of the trip.
        if self._state == "closed":
            return True
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at < self.config.recovery_s:
                    return False
                self._state = "half-open"
                self._probes_in_flight = 0
            # half-open: admit a bounded number of concurrent probes.
            if self._probes_in_flight >= self.config.half_open_probes:
                return False
            self._probes_in_flight += 1
            return True

    def record_success(self) -> None:
        with self._lock:
            if self._state == "half-open":
                self._state = "closed"
                self._window.clear()
                self._probes_in_flight = 0
                return
            self._window.append(True)

    def record_failure(self) -> None:
        with self._lock:
            now = self._clock()
            if self._state == "half-open":
                # The probe failed: straight back to open, another trip.
                self._state = "open"
                self._opened_at = now
                self._trips += 1
                self._probes_in_flight = 0
                return
            if self._state == "open":
                return
            self._window.append(False)
            if len(self._window) >= self.config.min_samples:
                failures = sum(1 for ok in self._window if not ok)
                if failures / len(self._window) >= self.config.failure_threshold:
                    self._state = "open"
                    self._opened_at = now
                    self._trips += 1
                    self._window.clear()

    def open_error(self, engine: str) -> CircuitOpenError:
        """The structured error describing a skipped call."""
        return CircuitOpenError(engine, state=self.state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker(state={self.state!r}, trips={self.trips})"


# ---------------------------------------------------------------------- #
# Admission control
# ---------------------------------------------------------------------- #
class AdmissionController:
    """Bounds concurrently served requests; sheds the excess immediately.

    :meth:`acquire` either admits the request or raises
    :class:`ServiceOverloadedError` — optionally after waiting up to
    ``max_wait_s`` for a slot (the wait always passes an explicit timeout,
    so a stuck service cannot strand callers).  Use as a context manager::

        with controller.admit():
            ... serve the request ...
    """

    def __init__(self, max_in_flight: int, max_wait_s: float = 0.0) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.max_in_flight = max_in_flight
        self.max_wait_s = max_wait_s
        # A plain Lock (not the default RLock) keeps the uncontended
        # acquire/release pair cheap; nothing here re-enters.  The fast
        # paths enter ``_lock`` directly (C-level context manager) instead
        # of going through the Condition's Python-level ``__enter__``.
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._in_flight = 0
        self._waiters = 0
        self._shed = 0
        self._admitted = 0

    @property
    def in_flight(self) -> int:
        with self._condition:
            return self._in_flight

    @property
    def shed(self) -> int:
        """Requests rejected with :class:`ServiceOverloadedError`."""
        with self._condition:
            return self._shed

    @property
    def admitted(self) -> int:
        with self._condition:
            return self._admitted

    def acquire(self) -> None:
        """Admit one request or raise :class:`ServiceOverloadedError`."""
        with self._lock:
            if self._in_flight < self.max_in_flight:  # uncontended fast path
                self._in_flight += 1
                self._admitted += 1
                return
            deadline = time.monotonic() + self.max_wait_s
            while self._in_flight >= self.max_in_flight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._shed += 1
                    raise ServiceOverloadedError(self._in_flight, self.max_in_flight)
                self._waiters += 1
                try:
                    self._condition.wait(timeout=remaining)
                finally:
                    self._waiters -= 1
            self._in_flight += 1
            self._admitted += 1

    def release(self) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            if self._waiters:
                self._condition.notify()

    def admit(self) -> "_Admission":
        """Context-manager form of :meth:`acquire` / :meth:`release`."""
        return _Admission(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdmissionController(in_flight={self.in_flight}/"
            f"{self.max_in_flight}, shed={self.shed})"
        )


class _Admission:
    __slots__ = ("_controller",)

    def __init__(self, controller: AdmissionController) -> None:
        self._controller = controller

    def __enter__(self) -> AdmissionController:
        self._controller.acquire()
        return self._controller

    def __exit__(self, *exc_info: object) -> None:
        self._controller.release()


def sleep_within(
    delay_s: float, budget: DeadlineBudget | None, sleep: Callable[[float], None] = time.sleep
) -> bool:
    """Sleep ``delay_s`` if the budget allows it; returns whether it slept.

    The retry loop's guard: a backoff that would outlive the remaining
    deadline is skipped (returning ``False``) so the caller can fail fast
    instead of sleeping through its own deadline.
    """
    if delay_s <= 0:
        return True
    if budget is not None and budget.remaining() <= delay_s:
        return False
    sleep(delay_s)
    return True
