"""The :class:`RoutingEngine` protocol and the engine adapters.

Every routing backend — the L2R pipeline, each baseline, and any future
method — is exposed to the service layer through one contract::

    engine.route(request: RouteRequest) -> RouteResponse

:class:`BaseEngine` implements the shared answering discipline (timing,
per-request cost overrides, converting :class:`~repro.exceptions.ReproError`
failures into error responses instead of exceptions) so concrete engines only
implement :meth:`BaseEngine._answer`.  :class:`AlgorithmEngine` adapts any
legacy :class:`~repro.baselines.base.RoutingAlgorithm`, and
:class:`L2REngine` adapts a fitted :class:`~repro.core.l2r.LearnToRoute`
pipeline with full routing diagnostics.
"""

from __future__ import annotations

import abc
import time
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from ..core.router import RouteDiagnostics
from ..exceptions import ReproError
from ..network.road_network import RoadNetwork
from ..routing.astar import astar
from ..routing.costs import cost_function
from ..routing.dijkstra import lowest_cost_path
from ..routing.path import Path
from .api import RouteRequest, RouteResponse

if TYPE_CHECKING:  # pragma: no cover
    from ..baselines.base import RoutingAlgorithm
    from ..core.l2r import LearnToRoute


@runtime_checkable
class RoutingEngine(Protocol):
    """The single contract every routing backend satisfies.

    Engines whose answers depend on peak / off-peak departure times should
    additionally expose a ``peak_hours`` attribute (a
    :class:`~repro.core.config.PeakHours`, or ``None`` when static) so the
    service's route cache can bucket departure times with the same windows
    the engine switches models on.  Both built-in adapters do.
    """

    name: str

    def route(self, request: RouteRequest) -> RouteResponse:  # pragma: no cover
        """Answer one request; failures are reported on the response."""
        ...


class BaseEngine(abc.ABC):
    """Shared answering discipline of the concrete engines."""

    name: str = "engine"

    def __init__(self, network: RoadNetwork, goal_directed: bool = False) -> None:
        self._network = network
        self.goal_directed = goal_directed
        """Default for requests that reduce to a single-cost query: answer
        with goal-directed ALT-A* instead of plain Dijkstra.  Cost-optimal
        either way; ALT may pick a different equal-cost path.  Per-request
        ``RouteRequest.goal_directed`` overrides this default."""

    @property
    def network(self) -> RoadNetwork:
        return self._network

    def _wants_goal_directed(self, request: RouteRequest) -> bool:
        if request.goal_directed is not None:
            return request.goal_directed
        return self.goal_directed

    def route(self, request: RouteRequest) -> RouteResponse:
        """Answer ``request``, timing the computation.

        :class:`~repro.exceptions.ReproError` failures (no path, unknown
        vertex, ...) become error responses so that one bad request cannot
        abort a batch; programming errors still propagate.
        """
        started = time.perf_counter()
        try:
            if request.cost_override is not None:
                cost = cost_function(request.cost_override)
                if self._wants_goal_directed(request):
                    path = astar(self._network, request.source, request.destination, cost)
                else:
                    path = lowest_cost_path(
                        self._network, request.source, request.destination, request.cost_override
                    )
                diagnostics: RouteDiagnostics | None = RouteDiagnostics(case="cost-override")
            else:
                path, diagnostics = self._answer(request)
        except ReproError as exc:
            return RouteResponse.from_error(
                request, self.name, exc, latency_s=time.perf_counter() - started
            )
        return RouteResponse(
            request=request,
            path=path,
            engine=self.name,
            diagnostics=diagnostics,
            latency_s=time.perf_counter() - started,
        )

    @abc.abstractmethod
    def _answer(self, request: RouteRequest) -> tuple[Path, RouteDiagnostics | None]:
        """Compute the path (and optional diagnostics) for one request."""

    def _static_cost(self):
        """The fixed single-feature edge cost this engine routes with.

        ``None`` (the default) marks the engine's policy as not reducible to
        one Dijkstra per request — such engines never batch.
        """
        return None

    def batch_cost(self, request: RouteRequest):
        """Edge-cost callable when ``request`` reduces to one Dijkstra.

        The service's ``route_many`` partitions requests whose engine
        resolves the *same* callable here into one batched
        ``dijkstra_many`` kernel call.  Returns ``None`` for requests that
        must run through :meth:`route` (personalized / multi-phase
        policies).
        """
        if request.cost_override is not None:
            return cost_function(request.cost_override)
        return self._static_cost()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class AlgorithmEngine(BaseEngine):
    """Adapter exposing a legacy :class:`RoutingAlgorithm` as an engine."""

    def __init__(
        self,
        algorithm: "RoutingAlgorithm",
        name: str | None = None,
        goal_directed: bool = False,
    ) -> None:
        super().__init__(algorithm.network, goal_directed=goal_directed)
        self._algorithm = algorithm
        self.name = name or algorithm.name

    @property
    def algorithm(self) -> "RoutingAlgorithm":
        return self._algorithm

    @property
    def peak_hours(self):
        """Peak windows of a wrapped time-dependent pipeline (else ``None``)."""
        pipeline = getattr(self._algorithm, "pipeline", None)
        config = getattr(pipeline, "config", None)
        if config is not None and getattr(config, "time_dependent", False):
            return config.peak_hours
        return None

    def _static_cost(self):
        """Cost-centric algorithms advertise their feature for batching."""
        feature = getattr(self._algorithm, "cost_feature", None)
        if feature is None:
            return None
        return cost_function(feature)

    def _answer(self, request: RouteRequest) -> tuple[Path, RouteDiagnostics | None]:
        if self._wants_goal_directed(request):
            cost = self._static_cost()
            if cost is not None:
                # Single-cost policy: answer goal-directed (ALT-A*) instead
                # of running the algorithm's plain Dijkstra.
                return astar(self._network, request.source, request.destination, cost), None
        path = self._algorithm.route(
            request.source,
            request.destination,
            departure_time=request.departure_time,
            driver_id=request.driver_id,
        )
        return path, None


class L2REngine(BaseEngine):
    """Adapter exposing a fitted L2R pipeline with routing diagnostics."""

    name = "L2R"

    def __init__(
        self,
        pipeline: "LearnToRoute",
        name: str | None = None,
        goal_directed: bool = False,
    ) -> None:
        super().__init__(pipeline.network, goal_directed=goal_directed)
        self._pipeline = pipeline
        if name is not None:
            self.name = name

    @property
    def pipeline(self) -> "LearnToRoute":
        return self._pipeline

    @property
    def peak_hours(self):
        """Peak windows driving model selection (``None`` for static models)."""
        config = self._pipeline.config
        return config.peak_hours if config.time_dependent else None

    def _answer(self, request: RouteRequest) -> tuple[Path, RouteDiagnostics | None]:
        return self._pipeline.route_with_diagnostics(
            request.source, request.destination, departure_time=request.departure_time
        )


class FunctionEngine(BaseEngine):
    """Adapter for a bare ``(source, destination) -> Path`` callable.

    Handy for plugging ad-hoc routing policies (or test doubles) into the
    service without writing a class.
    """

    def __init__(self, network: RoadNetwork, fn, name: str = "function") -> None:
        super().__init__(network)
        self._fn = fn
        self.name = name

    def _answer(self, request: RouteRequest) -> tuple[Path, RouteDiagnostics | None]:
        return self._fn(request.source, request.destination), None
