"""The :class:`RoutingEngine` protocol and the engine adapters.

Every routing backend — the L2R pipeline, each baseline, and any future
method — is exposed to the service layer through one contract::

    engine.route(request: RouteRequest) -> RouteResponse

:class:`BaseEngine` implements the shared answering discipline (timing,
per-request cost overrides, converting :class:`~repro.exceptions.ReproError`
failures into error responses instead of exceptions) so concrete engines only
implement :meth:`BaseEngine._answer`.  :class:`AlgorithmEngine` adapts any
legacy :class:`~repro.baselines.base.RoutingAlgorithm`, and
:class:`L2REngine` adapts a fitted :class:`~repro.core.l2r.LearnToRoute`
pipeline with full routing diagnostics.
"""

from __future__ import annotations

import abc
import threading
import time
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from ..core.router import RouteDiagnostics
from ..exceptions import ReproError
from ..network.road_network import RoadNetwork
from ..routing.astar import astar
from ..routing.contraction import ContractionHierarchy, ch_shortest_path
from ..routing.costs import CostFeature, cost_function
from ..routing.dijkstra import lowest_cost_path
from ..routing.path import Path
from .api import RouteRequest, RouteResponse

if TYPE_CHECKING:  # pragma: no cover
    from ..baselines.base import RoutingAlgorithm
    from ..core.l2r import LearnToRoute


@runtime_checkable
class RoutingEngine(Protocol):
    """The single contract every routing backend satisfies.

    Engines whose answers depend on peak / off-peak departure times should
    additionally expose a ``peak_hours`` attribute (a
    :class:`~repro.core.config.PeakHours`, or ``None`` when static) so the
    service's route cache can bucket departure times with the same windows
    the engine switches models on.  Both built-in adapters do.
    """

    name: str

    def route(self, request: RouteRequest) -> RouteResponse:  # pragma: no cover
        """Answer one request; failures are reported on the response."""
        ...


class BaseEngine(abc.ABC):
    """Shared answering discipline of the concrete engines."""

    name: str = "engine"

    def __init__(self, network: RoadNetwork, goal_directed: bool = False) -> None:
        self._network = network
        self.goal_directed = goal_directed
        """Default for requests that reduce to a single-cost query: answer
        with goal-directed ALT-A* instead of plain Dijkstra.  Cost-optimal
        either way; ALT may pick a different equal-cost path.  Per-request
        ``RouteRequest.goal_directed`` overrides this default."""

    @property
    def network(self) -> RoadNetwork:
        return self._network

    def _wants_goal_directed(self, request: RouteRequest) -> bool:
        if request.goal_directed is not None:
            return request.goal_directed
        return self.goal_directed

    def route(self, request: RouteRequest) -> RouteResponse:
        """Answer ``request``, timing the computation.

        :class:`~repro.exceptions.ReproError` failures (no path, unknown
        vertex, ...) become error responses so that one bad request cannot
        abort a batch; programming errors still propagate.
        """
        started = time.perf_counter()
        try:
            if request.cost_override is not None:
                cost = cost_function(request.cost_override)
                if self._wants_goal_directed(request):
                    path = astar(self._network, request.source, request.destination, cost)
                else:
                    path = lowest_cost_path(
                        self._network, request.source, request.destination, request.cost_override
                    )
                diagnostics: RouteDiagnostics | None = RouteDiagnostics(case="cost-override")
            else:
                path, diagnostics = self._answer(request)
        except ReproError as exc:
            return RouteResponse.from_error(
                request, self.name, exc, latency_s=time.perf_counter() - started
            )
        return RouteResponse(
            request=request,
            path=path,
            engine=self.name,
            diagnostics=diagnostics,
            latency_s=time.perf_counter() - started,
        )

    @abc.abstractmethod
    def _answer(self, request: RouteRequest) -> tuple[Path, RouteDiagnostics | None]:
        """Compute the path (and optional diagnostics) for one request."""

    def _static_cost(self):
        """The fixed single-feature edge cost this engine routes with.

        ``None`` (the default) marks the engine's policy as not reducible to
        one Dijkstra per request — such engines never batch.
        """
        return None

    def batch_cost(self, request: RouteRequest):
        """Edge-cost callable when ``request`` reduces to one Dijkstra.

        The service's ``route_many`` partitions requests whose engine
        resolves the *same* callable here into one batched
        ``dijkstra_many`` kernel call.  Returns ``None`` for requests that
        must run through :meth:`route` (personalized / multi-phase
        policies).
        """
        if request.cost_override is not None:
            return cost_function(request.cost_override)
        return self._static_cost()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class AlgorithmEngine(BaseEngine):
    """Adapter exposing a legacy :class:`RoutingAlgorithm` as an engine."""

    def __init__(
        self,
        algorithm: "RoutingAlgorithm",
        name: str | None = None,
        goal_directed: bool = False,
    ) -> None:
        super().__init__(algorithm.network, goal_directed=goal_directed)
        self._algorithm = algorithm
        self.name = name or algorithm.name

    @property
    def algorithm(self) -> "RoutingAlgorithm":
        return self._algorithm

    @property
    def peak_hours(self):
        """Peak windows of a wrapped time-dependent pipeline (else ``None``)."""
        pipeline = getattr(self._algorithm, "pipeline", None)
        config = getattr(pipeline, "config", None)
        if config is not None and getattr(config, "time_dependent", False):
            return config.peak_hours
        return None

    def _static_cost(self):
        """Cost-centric algorithms advertise their feature for batching."""
        feature = getattr(self._algorithm, "cost_feature", None)
        if feature is None:
            return None
        return cost_function(feature)

    def _answer(self, request: RouteRequest) -> tuple[Path, RouteDiagnostics | None]:
        if self._wants_goal_directed(request):
            cost = self._static_cost()
            if cost is not None:
                # Single-cost policy: answer goal-directed (ALT-A*) instead
                # of running the algorithm's plain Dijkstra.
                return astar(self._network, request.source, request.destination, cost), None
        path = self._algorithm.route(
            request.source,
            request.destination,
            departure_time=request.departure_time,
            driver_id=request.driver_id,
        )
        return path, None


class L2REngine(BaseEngine):
    """Adapter exposing a fitted L2R pipeline with routing diagnostics."""

    name = "L2R"

    def __init__(
        self,
        pipeline: "LearnToRoute",
        name: str | None = None,
        goal_directed: bool = False,
    ) -> None:
        super().__init__(pipeline.network, goal_directed=goal_directed)
        self._pipeline = pipeline
        if name is not None:
            self.name = name

    @property
    def pipeline(self) -> "LearnToRoute":
        return self._pipeline

    @property
    def peak_hours(self):
        """Peak windows driving model selection (``None`` for static models)."""
        config = self._pipeline.config
        return config.peak_hours if config.time_dependent else None

    def _answer(self, request: RouteRequest) -> tuple[Path, RouteDiagnostics | None]:
        return self._pipeline.route_with_diagnostics(
            request.source, request.destination, departure_time=request.departure_time
        )


class ContractionEngine(BaseEngine):
    """Single-cost engine answering through a contraction hierarchy.

    The hierarchy is built lazily on first use (or taken prebuilt, e.g. from
    :meth:`~repro.network.road_network.RoadNetwork.prepare_hierarchy`) and
    queried through :func:`~repro.routing.contraction.ch_shortest_path` with
    ``on_stale="rebuild"`` by default: live-traffic cost drift is absorbed
    by a cheap compiled shortcut re-weight at the next query, a topology
    change by a full rebuild.  Answers are exact single-cost optima —
    cost-identical to the Shortest / Fastest baselines for the same feature,
    at compiled-hierarchy query speed on repeated queries.

    The engine exposes ``cache_version`` (the hierarchy's weights version
    plus the network's mutation counter), which the service folds into its
    route-cache keys so a re-weighted hierarchy is never shadowed by
    pre-update cached answers, and ``hierarchy_reweights`` for
    :class:`~repro.service.stats.ServiceStats` monitoring.
    """

    name = "CH"

    def __init__(
        self,
        network: RoadNetwork,
        feature: CostFeature = CostFeature.TRAVEL_TIME,
        *,
        hierarchy: ContractionHierarchy | None = None,
        on_stale: str = "rebuild",
        hop_limit: int = 16,
        name: str | None = None,
    ) -> None:
        super().__init__(network)
        self.cost_feature = feature
        self.on_stale = on_stale
        self._hop_limit = hop_limit
        self._hierarchy = hierarchy
        self._hierarchy_lock = threading.Lock()
        if name is not None:
            self.name = name

    def hierarchy(self) -> ContractionHierarchy:
        """The (lazily built) hierarchy this engine answers from."""
        built = self._hierarchy
        if built is None:
            with self._hierarchy_lock:
                if self._hierarchy is None:
                    self._hierarchy = self._network.prepare_hierarchy(
                        self.cost_feature, hop_limit=self._hop_limit
                    )
                built = self._hierarchy
        return built

    @property
    def cache_version(self) -> tuple:
        """Route-cache key component; moves with every re-weight / mutation.

        Including ``network.version`` means a stale hierarchy (costs moved,
        re-weight not yet triggered) can never replay its pre-update cached
        answers: the first post-update request misses, refreshes the
        hierarchy through ``on_stale``, and caches under the new tag.
        """
        built = self._hierarchy
        weights = built.weights_version if built is not None else None
        return ("ch", weights, self._network.version)

    @property
    def current_hierarchy(self) -> ContractionHierarchy | None:
        """The hierarchy if already built (never triggers a build).

        Exposed so the service can de-duplicate re-weight counters when
        several engines share one ``prepare_hierarchy``-cached hierarchy.
        """
        return self._hierarchy

    @property
    def hierarchy_reweights(self) -> int:
        """Live-traffic re-weights absorbed by this engine's hierarchy."""
        built = self._hierarchy
        return built.reweight_count if built is not None else 0

    def _static_cost(self):
        """CH answers one fixed feature: advertise it for request batching.

        Only while ``on_stale="rebuild"``: batched answers run on the *live*
        cost arrays, which matches a hierarchy that refreshes itself on
        drift but would silently contradict a frozen (``"ignore"``) or
        strict (``"raise"``) engine's single-request answers.
        """
        if self.on_stale != "rebuild":
            return None
        return cost_function(self.cost_feature)

    def _answer(self, request: RouteRequest) -> tuple[Path, RouteDiagnostics | None]:
        path = ch_shortest_path(
            self._network,
            request.source,
            request.destination,
            self.hierarchy(),
            on_stale=self.on_stale,
        )
        return path, RouteDiagnostics(case="contraction-hierarchy")


class FunctionEngine(BaseEngine):
    """Adapter for a bare ``(source, destination) -> Path`` callable.

    Handy for plugging ad-hoc routing policies (or test doubles) into the
    service without writing a class.
    """

    def __init__(self, network: RoadNetwork, fn, name: str = "function") -> None:
        super().__init__(network)
        self._fn = fn
        self.name = name

    def _answer(self, request: RouteRequest) -> tuple[Path, RouteDiagnostics | None]:
        return self._fn(request.source, request.destination), None
