"""The :class:`ShardedRoutingService` facade — the RoutingService API over a
multi-process worker pool.

The coordinator owns the master :class:`~repro.network.road_network.
RoadNetwork`, exports its compiled snapshot into one shared-memory segment,
partitions the vertices into shards, and spawns one worker process per
shard.  Queries are dispatched to the worker owning the *source* vertex
(cross-shard destinations are the worker's problem — it stitches through the
boundary overlay); live traffic is applied to the master network through a
:class:`~repro.traffic.TrafficFeed`, patched into the shared segment, and
broadcast to every worker as a versioned :class:`CostDiff` so they self-evict
stale caches and acknowledge the new version (the ack round-trip is the
``broadcast_lag_s`` statistic).

Lifecycle: the coordinator is the segment *owner* — :meth:`close` shuts the
pool down, then closes and unlinks the segment.  Use the service as a
context manager so no test or bench path can leak a segment.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import replace
from typing import TYPE_CHECKING, Iterable, Sequence

from ...exceptions import ConfigurationError, ShardingError
from ...network.compiled import shm
from ...routing.costs import FEATURE_EDGE_ATTRIBUTES
from ...routing.path import Path
from ...traffic.feed import TrafficFeed
from ..api import RouteRequest, RouteResponse
from ..cache import CacheStats
from ..stats import ServiceStats, StatsAccumulator
from .plan import ShardPlan, build_shard_plan
from .pool import ShardWorkerPool
from .protocol import (
    DEFAULT_ENGINES,
    CostDiff,
    Fatal,
    Hello,
    RouteResults,
    RouteWork,
    VersionAck,
    WorkerPayload,
)

if TYPE_CHECKING:  # pragma: no cover
    from ...network.road_network import RoadNetwork, VertexId
    from ...traffic.updates import TrafficUpdate, TrafficUpdateResult

_COST_ATTRIBUTES = tuple(FEATURE_EDGE_ATTRIBUTES.values())


class ShardedRoutingService:
    """Sharded multi-process serving with the ``RoutingService`` surface.

    ``route`` / ``route_many`` / ``stats`` / ``close`` keep their in-process
    semantics; ``apply_traffic`` replaces the TrafficFeed wiring (the
    coordinator must own the write path to keep segment and broadcast in
    lockstep).  The coordinator is intentionally single-threaded per
    operation — calls are serialized by one lock.
    """

    def __init__(
        self,
        network: "RoadNetwork",
        shard_count: int = 2,
        *,
        method: str = "regions",
        cache_size: int = 512,
        boot_timeout_s: float = 120.0,
        request_timeout_s: float = 60.0,
        traffic_timeout_s: float = 30.0,
    ) -> None:
        self._network = network
        self._engine_features = dict(DEFAULT_ENGINES)
        self._default_engine = DEFAULT_ENGINES[0][0]
        self._request_timeout_s = request_timeout_s
        self._traffic_timeout_s = traffic_timeout_s
        self._lock = threading.RLock()
        self._stats = StatsAccumulator()
        self._feed = TrafficFeed(network)
        self._plan: ShardPlan = build_shard_plan(network, shard_count, method=method)

        self._pool: ShardWorkerPool | None = None
        self._segment: shm.SharedGraphSegment | None = shm.export_graph(
            network.compiled(), cost_version=network.cost_version
        )
        try:
            payloads = [
                WorkerPayload(
                    worker_id=shard_id,
                    shard_id=shard_id,
                    plan=self._plan,
                    network=network,
                    spec=self._segment.spec,
                    engines=DEFAULT_ENGINES,
                    default_engine=self._default_engine,
                    cache_size=cache_size,
                )
                for shard_id in range(self._plan.shard_count)
            ]
            self._pool = ShardWorkerPool(payloads, boot_timeout_s=boot_timeout_s)
            self._pool.start()
        except BaseException:
            if self._pool is not None:
                self._pool.close()
            self._segment.close()
            self._segment.unlink()
            self._segment = None
            raise

        self._task_counter = 0
        self._results: dict[int, RouteResults] = {}
        self._acks: dict[int, int] = {}
        self._shard_requests: dict[int, int] = {}
        self._cross_shard = 0
        self._in_shard = 0
        self._broadcast_lag_s = 0.0
        self._crash_worker: int | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def plan(self) -> ShardPlan:
        return self._plan

    @property
    def segment_name(self) -> str | None:
        """The shared segment's OS name (``None`` after close)."""
        return self._segment.name if self._segment is not None else None

    def engines(self) -> list[str]:
        return list(self._engine_features)

    @property
    def default_engine(self) -> str:
        return self._default_engine

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def route(self, request: RouteRequest, engine: str | None = None) -> RouteResponse:
        """Answer one request (dispatched to its source shard's worker)."""
        return self.route_many([request], engine=engine)[0]

    def route_between(
        self,
        source: "VertexId",
        destination: "VertexId",
        *,
        engine: str | None = None,
        **request_fields: object,
    ) -> RouteResponse:
        request = RouteRequest(
            source=source, destination=destination, **request_fields  # type: ignore[arg-type]
        )
        return self.route(request, engine=engine)

    def route_many(
        self,
        requests: Sequence[RouteRequest] | Iterable[RouteRequest],
        engine: str | None = None,
    ) -> list[RouteResponse]:
        """Answer a batch, preserving order.

        Requests are partitioned by source shard and shipped as one
        :class:`RouteWork` per involved worker; a worker found dead while
        its batch is pending is restarted (it resyncs from the shared
        segment) and the batch is resubmitted — with any chaos crash hook
        stripped, so a crash test observes exactly one crash.
        """
        batch = list(requests)
        if not batch:
            return []
        name = engine or self._default_engine
        if name not in self._engine_features:
            raise ConfigurationError(
                f"no engine named {name!r} is registered "
                f"(have: {sorted(self._engine_features)})"
            )
        with self._lock:
            self._ensure_open()
            return self._route_many_locked(batch, name)

    def _route_many_locked(
        self, batch: list[RouteRequest], name: str
    ) -> list[RouteResponse]:
        assert self._pool is not None
        responses: list[RouteResponse | None] = [None] * len(batch)
        by_shard: dict[int, list[int]] = {}
        for position, request in enumerate(batch):
            shard_id = self._plan.shard_of(request.source)
            if shard_id is None:
                responses[position] = RouteResponse(
                    request=request,
                    path=None,
                    engine=name,
                    error=f"VertexNotFoundError: vertex {request.source!r} "
                    "is not in the network",
                )
                continue
            by_shard.setdefault(shard_id, []).append(position)

        pending: dict[int, tuple[int, RouteWork]] = {}
        for shard_id, positions in by_shard.items():
            self._task_counter += 1
            crash_at = None
            if self._crash_worker == shard_id:
                crash_at = 0
                self._crash_worker = None
            work = RouteWork(
                task_id=self._task_counter,
                engine=name,
                requests=tuple(batch[position] for position in positions),
                positions=tuple(positions),
                crash_at=crash_at,
            )
            self._pool.submit(shard_id, work)
            pending[work.task_id] = (shard_id, work)
            self._shard_requests[shard_id] = (
                self._shard_requests.get(shard_id, 0) + len(positions)
            )

        deadline = time.monotonic() + self._request_timeout_s
        while pending and time.monotonic() < deadline:
            self._pump(timeout_s=0.05)
            for task_id in list(pending):
                result = self._results.pop(task_id, None)
                if result is None:
                    continue
                del pending[task_id]
                self._fold_results(batch, result, responses)
            if pending:
                self._revive_and_resubmit(pending)

        for shard_id, work in pending.values():
            for request, position in zip(work.requests, work.positions):
                responses[position] = RouteResponse(
                    request=request,
                    path=None,
                    engine=name,
                    error=f"ShardingError: shard {shard_id} worker did not answer "
                    f"within {self._request_timeout_s:.0f}s",
                )

        final: list[RouteResponse] = []
        for position, response in enumerate(responses):
            assert response is not None
            self._stats.record(response)
            final.append(response)
        return final

    def _fold_results(
        self,
        batch: list[RouteRequest],
        result: RouteResults,
        responses: list[RouteResponse | None],
    ) -> None:
        for answer in result.answers:
            request = batch[answer.position]
            path = Path.of(answer.vertices) if answer.vertices is not None else None
            if answer.cross_shard:
                self._cross_shard += 1
            else:
                self._in_shard += 1
            responses[answer.position] = RouteResponse(
                request=request,
                path=path,
                engine=answer.engine,
                latency_s=answer.latency_s,
                cache_hit=answer.cache_hit,
                batched=True,
                error=answer.error,
            )

    def _revive_and_resubmit(self, pending: dict[int, tuple[int, RouteWork]]) -> None:
        """Restart dead workers and resubmit their unanswered batches."""
        assert self._pool is not None
        if all(self._pool.alive()):
            return
        restarted = set(self._pool.restart_dead())
        if not restarted:
            return
        for task_id, (shard_id, work) in list(pending.items()):
            if shard_id in restarted:
                clean = replace(work, crash_at=None)
                pending[task_id] = (shard_id, clean)
                self._pool.submit(shard_id, clean)

    def _pump(self, timeout_s: float) -> None:
        """Drain one coordinator-bound message into the routing tables."""
        assert self._pool is not None
        try:
            message = self._pool.recv(timeout_s=timeout_s)
        except queue.Empty:
            return
        if isinstance(message, RouteResults):
            # Duplicates (a worker that died *after* sending, then got its
            # batch resubmitted) are harmless: last write wins and both
            # carry the same answers.
            self._results[message.task_id] = message
        elif isinstance(message, VersionAck):
            current = self._acks.get(message.worker_id, 0)
            self._acks[message.worker_id] = max(current, message.version)
        elif isinstance(message, (Hello, Fatal)):
            # Late handshakes from restarts / crash reports: liveness is
            # tracked through the pool, nothing to do here.
            pass

    # ------------------------------------------------------------------ #
    # Live traffic
    # ------------------------------------------------------------------ #
    def apply_traffic(
        self,
        updates: Iterable["TrafficUpdate"],
        *,
        wait: bool = True,
        timeout_s: float | None = None,
    ) -> "TrafficUpdateResult":
        """Apply one live-traffic batch across the whole deployment.

        Master network first (transactional), then the shared segment
        (late attachers and restarted workers resync from it), then the
        versioned :class:`CostDiff` broadcast.  With ``wait=True`` the call
        returns only after every worker acknowledged the new version — the
        barrier the cost-identity guarantees are stated under; the measured
        apply-to-last-ack time is exported as ``broadcast_lag_s``.
        """
        with self._lock:
            self._ensure_open()
            assert self._pool is not None and self._segment is not None
            base_version = self._network.cost_version
            result = self._feed.apply(updates)
            self._stats.record_traffic(
                len(result.touched_edges), 0, result.cost_version
            )
            if not result.touched_edges:
                return result
            graph = self._network.compiled()
            slot_of = graph.topology.slot_of
            self._segment.patch(
                graph,
                [slot_of[key] for key in result.touched_edges],
                result.cost_version,
            )
            started = time.perf_counter()
            changes = tuple(
                (
                    key,
                    tuple(
                        (attr, float(getattr(self._network.edge(*key), attr)))
                        for attr in _COST_ATTRIBUTES
                    ),
                )
                for key in sorted(result.touched_edges)
            )
            self._pool.broadcast(
                CostDiff(
                    version=result.cost_version,
                    base_version=base_version,
                    changes=changes,
                )
            )
            if wait:
                self._await_acks(
                    result.cost_version,
                    self._traffic_timeout_s if timeout_s is None else timeout_s,
                )
                self._broadcast_lag_s = time.perf_counter() - started
            return result

    def _await_acks(self, version: int, timeout_s: float) -> None:
        assert self._pool is not None
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if all(
                self._acks.get(worker_id, 0) >= version
                for worker_id in range(self._pool.size)
            ):
                return
            self._pump(timeout_s=0.05)
            if not all(self._pool.alive()):
                # A worker that died mid-broadcast resyncs from the segment
                # at boot, which carries this version already.
                for worker_id in self._pool.restart_dead():
                    self._acks[worker_id] = version
        raise ShardingError(
            f"traffic broadcast v{version} was not acknowledged by all "
            f"workers within {timeout_s:.0f}s"
        )

    # ------------------------------------------------------------------ #
    # Monitoring / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> ServiceStats:
        """A frozen snapshot including the sharding counters."""
        with self._lock:
            return self._stats.snapshot(
                CacheStats(hits=0, misses=0, size=0, max_size=0),
                shards=self._plan.shard_count,
                shard_requests=dict(self._shard_requests),
                cross_shard_requests=self._cross_shard,
                in_shard_requests=self._in_shard,
                broadcast_lag_s=self._broadcast_lag_s,
                worker_restarts=self._pool.restarts if self._pool is not None else 0,
            )

    def reset_stats(self) -> None:
        with self._lock:
            self._stats.reset()
            self._shard_requests = {}
            self._cross_shard = 0
            self._in_shard = 0

    def inject_crash(self, shard_id: int) -> None:
        """Chaos hook: the next batch for ``shard_id`` hard-kills its worker
        (test-only; the pool restart path must serve identical results)."""
        with self._lock:
            self._crash_worker = shard_id

    def _ensure_open(self) -> None:
        if self._closed:
            raise ShardingError("ShardedRoutingService is closed")

    def close(self, timeout_s: float = 5.0) -> bool:
        """Shut the pool down, then close and unlink the segment.

        Idempotent.  The unlink happens *after* the workers exited (their
        attached views keep the memory alive regardless, but unlinking last
        keeps restart-during-close races impossible).
        """
        with self._lock:
            if self._closed:
                return True
            self._closed = True
            clean = True
            if self._pool is not None:
                clean = self._pool.close(timeout_s=timeout_s)
                self._pool = None
            if self._segment is not None:
                self._segment.close()
                self._segment.unlink()
                self._segment = None
            return clean

    def __enter__(self) -> "ShardedRoutingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedRoutingService(shards={self._plan.shard_count}, "
            f"method={self._plan.method!r}, closed={self._closed})"
        )
