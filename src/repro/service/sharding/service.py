"""The :class:`ShardedRoutingService` facade — the RoutingService API over a
multi-process worker pool.

The coordinator owns the master :class:`~repro.network.road_network.
RoadNetwork`, exports its compiled snapshot into one shared-memory segment,
partitions the vertices into shards, and spawns ``replicas`` worker
processes per shard (over ``multiprocessing`` queues or TCP sockets —
``transport="tcp"``).  Queries are dispatched to the *primary* replica of
the worker set owning the *source* vertex (cross-shard destinations are the
worker's problem — it stitches through the boundary overlay); when the
primary dies or loses its link, the batch fails over to a healthy replica,
and optionally a *hedge* copy goes to a second replica after a p95-derived
delay.  Live traffic is applied to the master network through a
:class:`~repro.traffic.TrafficFeed`, patched into the shared segment, and
broadcast to every worker as a versioned :class:`CostDiff` so they
self-evict stale caches and acknowledge the new version (the ack round-trip
is the ``broadcast_lag_s`` statistic).  Each broadcast also lands in a
bounded :class:`~repro.service.sharding.replication.CostDiffJournal`: a
worker reconnecting behind the current version replays the missed diffs
instead of rescanning the shared segment, falling back to a full
:class:`ResyncRequired` order when the journal has been truncated.
Liveness beyond process handles comes from Ping/Pong heartbeats tracked by
a :class:`~repro.service.sharding.replication.HeartbeatMonitor` — a worker
whose probe goes unanswered has its link severed, which routes it through
the same reconnect/failover machinery as a real network fault.

Lifecycle: the coordinator is the segment *owner* — :meth:`close` shuts the
pool down, then closes and unlinks the segment.  Use the service as a
context manager so no test or bench path can leak a segment.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import replace
from typing import TYPE_CHECKING, Iterable, Sequence

from ...exceptions import ConfigurationError, ShardingError
from ...network.compiled import shm
from ...routing.costs import FEATURE_EDGE_ATTRIBUTES
from ...routing.path import Path
from ...traffic.feed import TrafficFeed
from ..api import RouteRequest, RouteResponse
from ..cache import CacheStats
from ..resilience import HedgePolicy
from ..stats import ServiceStats, StatsAccumulator
from .plan import ShardPlan, build_shard_plan
from .pool import ShardWorkerPool
from .protocol import (
    DEFAULT_ENGINES,
    CostDiff,
    Fatal,
    Hello,
    Ping,
    Pong,
    ResyncRequired,
    RouteResults,
    RouteWork,
    VersionAck,
    WorkerPayload,
)
from .replication import CostDiffJournal, HeartbeatMonitor

if TYPE_CHECKING:  # pragma: no cover
    from ...network.road_network import RoadNetwork, VertexId
    from ...traffic.updates import TrafficUpdate, TrafficUpdateResult
    from ..durability import DurabilityManager, RecoveryReport

_COST_ATTRIBUTES = tuple(FEATURE_EDGE_ATTRIBUTES.values())


class _PendingTask:
    """One in-flight :class:`RouteWork` batch and its dispatch state."""

    __slots__ = ("shard_id", "worker_id", "work", "submitted_at", "hedge_worker")

    def __init__(
        self, shard_id: int, worker_id: int, work: RouteWork, submitted_at: float
    ) -> None:
        self.shard_id = shard_id
        self.worker_id = worker_id
        self.work = work
        self.submitted_at = submitted_at
        self.hedge_worker: int | None = None


class ShardedRoutingService:
    """Sharded multi-process serving with the ``RoutingService`` surface.

    ``route`` / ``route_many`` / ``stats`` / ``close`` keep their in-process
    semantics; ``apply_traffic`` replaces the TrafficFeed wiring (the
    coordinator must own the write path to keep segment and broadcast in
    lockstep).  The coordinator is intentionally single-threaded per
    operation — calls are serialized by one lock.
    """

    def __init__(
        self,
        network: "RoadNetwork",
        shard_count: int = 2,
        *,
        method: str = "regions",
        cache_size: int = 512,
        boot_timeout_s: float = 120.0,
        request_timeout_s: float = 60.0,
        traffic_timeout_s: float = 30.0,
        transport: str = "queue",
        replicas: int = 1,
        hedge: bool = False,
        hedge_delay_s: float | None = None,
        heartbeat_interval_s: float = 2.0,
        heartbeat_timeout_s: float = 10.0,
        journal_capacity: int = 64,
        durability: "DurabilityManager | None" = None,
    ) -> None:
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        self._network = network
        self._engine_features = dict(DEFAULT_ENGINES)
        self._default_engine = DEFAULT_ENGINES[0][0]
        self._request_timeout_s = request_timeout_s
        self._traffic_timeout_s = traffic_timeout_s
        self._transport = transport
        self._replicas = replicas
        self._hedge_enabled = hedge
        self._hedge_delay_s = hedge_delay_s
        self._hedge_policy = HedgePolicy()
        self._heartbeat_interval_s = heartbeat_interval_s
        self._heartbeat_timeout_s = heartbeat_timeout_s
        self._lock = threading.RLock()
        self._stats = StatsAccumulator()
        self._feed = TrafficFeed(network)
        self._plan: ShardPlan = build_shard_plan(network, shard_count, method=method)
        # The durability manager (caller-owned; the coordinator never closes
        # it) slots in at both write paths: write-ahead of raw batches via
        # the feed, and a durable mirror of every broadcast diff behind the
        # bounded in-memory journal.
        self._durability = durability
        if durability is not None:
            self._feed.attach_journal(durability)
        self._journal = CostDiffJournal(journal_capacity, durability=durability)

        self._pool: ShardWorkerPool | None = None
        self._segment: shm.SharedGraphSegment | None = shm.export_graph(
            network.compiled(), cost_version=network.cost_version
        )
        worker_count = self._plan.shard_count * replicas
        try:
            # Worker w serves shard w % shard_count, so with replicas == 1
            # worker ids and shard ids coincide (the historical layout) and
            # replica k of shard s is worker s + k * shard_count.
            payloads = [
                WorkerPayload(
                    worker_id=worker_id,
                    shard_id=worker_id % self._plan.shard_count,
                    plan=self._plan,
                    network=network,
                    spec=self._segment.spec,
                    engines=DEFAULT_ENGINES,
                    default_engine=self._default_engine,
                    cache_size=cache_size,
                )
                for worker_id in range(worker_count)
            ]
            self._pool = ShardWorkerPool(
                payloads, boot_timeout_s=boot_timeout_s, transport=transport
            )
            self._pool.start()
        except BaseException:
            if self._pool is not None:
                self._pool.close()
            self._segment.close()
            self._segment.unlink()
            self._segment = None
            raise

        self._monitor = HeartbeatMonitor(range(worker_count))
        self._last_heartbeat = time.monotonic()
        self._task_counter = 0
        self._results: dict[int, RouteResults] = {}
        self._acks: dict[int, int] = {}
        self._shard_requests: dict[int, int] = {}
        self._cross_shard = 0
        self._in_shard = 0
        self._broadcast_lag_s = 0.0
        self._failovers = 0
        self._hedged = 0
        self._hedge_wins = 0
        self._reconnected: set[int] = set()
        self._crash_worker: int | None = None
        self._crash_diff_shards: tuple[int, ...] = ()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def plan(self) -> ShardPlan:
        return self._plan

    @property
    def segment_name(self) -> str | None:
        """The shared segment's OS name (``None`` after close)."""
        return self._segment.name if self._segment is not None else None

    def engines(self) -> list[str]:
        return list(self._engine_features)

    @property
    def default_engine(self) -> str:
        return self._default_engine

    @property
    def transport(self) -> str:
        return self._transport

    @property
    def replicas(self) -> int:
        return self._replicas

    # ------------------------------------------------------------------ #
    # Replica sets
    # ------------------------------------------------------------------ #
    def replicas_of(self, shard_id: int) -> list[int]:
        """The worker ids serving ``shard_id``, lowest (default primary)
        first."""
        return [
            shard_id + k * self._plan.shard_count for k in range(self._replicas)
        ]

    def _primary(self, shard_id: int) -> int:
        """The lowest-index *healthy* replica (falling back to the lowest
        alive, then the lowest outright — someone must take the blame for a
        timeout even when the whole set is down)."""
        assert self._pool is not None
        candidates = self.replicas_of(shard_id)
        for worker_id in candidates:
            if self._pool.healthy(worker_id):
                return worker_id
        for worker_id in candidates:
            if self._pool.alive()[worker_id]:
                return worker_id
        return candidates[0]

    def _standby(self, shard_id: int, not_worker: int) -> int | None:
        """A healthy replica other than ``not_worker`` (failover/hedge
        target), or ``None`` when the set has no spare."""
        assert self._pool is not None
        for worker_id in self.replicas_of(shard_id):
            if worker_id != not_worker and self._pool.healthy(worker_id):
                return worker_id
        return None

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def route(self, request: RouteRequest, engine: str | None = None) -> RouteResponse:
        """Answer one request (dispatched to its source shard's worker)."""
        return self.route_many([request], engine=engine)[0]

    def route_between(
        self,
        source: "VertexId",
        destination: "VertexId",
        *,
        engine: str | None = None,
        **request_fields: object,
    ) -> RouteResponse:
        request = RouteRequest(
            source=source, destination=destination, **request_fields  # type: ignore[arg-type]
        )
        return self.route(request, engine=engine)

    def route_many(
        self,
        requests: Sequence[RouteRequest] | Iterable[RouteRequest],
        engine: str | None = None,
    ) -> list[RouteResponse]:
        """Answer a batch, preserving order.

        Requests are partitioned by source shard and shipped as one
        :class:`RouteWork` per involved worker; a worker found dead while
        its batch is pending is restarted (it resyncs from the shared
        segment) and the batch is resubmitted — with any chaos crash hook
        stripped, so a crash test observes exactly one crash.
        """
        batch = list(requests)
        if not batch:
            return []
        name = engine or self._default_engine
        if name not in self._engine_features:
            raise ConfigurationError(
                f"no engine named {name!r} is registered "
                f"(have: {sorted(self._engine_features)})"
            )
        with self._lock:
            self._ensure_open()
            return self._route_many_locked(batch, name)

    def _route_many_locked(
        self, batch: list[RouteRequest], name: str
    ) -> list[RouteResponse]:
        assert self._pool is not None
        responses: list[RouteResponse | None] = [None] * len(batch)
        by_shard: dict[int, list[int]] = {}
        for position, request in enumerate(batch):
            shard_id = self._plan.shard_of(request.source)
            if shard_id is None:
                responses[position] = RouteResponse(
                    request=request,
                    path=None,
                    engine=name,
                    error=f"VertexNotFoundError: vertex {request.source!r} "
                    "is not in the network",
                )
                continue
            by_shard.setdefault(shard_id, []).append(position)

        pending: dict[int, _PendingTask] = {}
        for shard_id, positions in by_shard.items():
            self._task_counter += 1
            crash_at = None
            if self._crash_worker == shard_id:
                crash_at = 0
                self._crash_worker = None
            work = RouteWork(
                task_id=self._task_counter,
                engine=name,
                requests=tuple(batch[position] for position in positions),
                positions=tuple(positions),
                crash_at=crash_at,
            )
            worker_id = self._primary(shard_id)
            if not self._pool.submit(worker_id, work):
                # Link down at dispatch (TCP): fail straight over to a
                # standby; a still-undelivered batch heals in the wait loop.
                standby = self._standby(shard_id, worker_id)
                if standby is not None and self._pool.submit(standby, work):
                    worker_id = standby
                    self._failovers += 1
            pending[work.task_id] = _PendingTask(
                shard_id, worker_id, work, time.monotonic()
            )
            self._shard_requests[shard_id] = (
                self._shard_requests.get(shard_id, 0) + len(positions)
            )

        deadline = time.monotonic() + self._request_timeout_s
        while pending and time.monotonic() < deadline:
            self._pump(timeout_s=0.05)
            for task_id in list(pending):
                result = self._results.pop(task_id, None)
                if result is None:
                    continue
                task = pending.pop(task_id)
                self._hedge_policy.record(time.monotonic() - task.submitted_at)
                if task.hedge_worker is not None and result.worker_id == task.hedge_worker:
                    self._hedge_wins += 1
                self._fold_results(batch, result, responses)
            if pending:
                self._heal_and_resubmit(pending)
                self._maybe_hedge(pending)

        for task in pending.values():
            for request, position in zip(task.work.requests, task.work.positions):
                responses[position] = RouteResponse(
                    request=request,
                    path=None,
                    engine=name,
                    error=f"ShardingError: shard {task.shard_id} worker did not "
                    f"answer within {self._request_timeout_s:.0f}s",
                )

        final: list[RouteResponse] = []
        for position, response in enumerate(responses):
            assert response is not None
            self._stats.record(response)
            final.append(response)
        return final

    def _fold_results(
        self,
        batch: list[RouteRequest],
        result: RouteResults,
        responses: list[RouteResponse | None],
    ) -> None:
        for answer in result.answers:
            request = batch[answer.position]
            path = Path.of(answer.vertices) if answer.vertices is not None else None
            if answer.cross_shard:
                self._cross_shard += 1
            else:
                self._in_shard += 1
            responses[answer.position] = RouteResponse(
                request=request,
                path=path,
                engine=answer.engine,
                latency_s=answer.latency_s,
                cache_hit=answer.cache_hit,
                batched=True,
                error=answer.error,
            )

    def _heal_and_resubmit(self, pending: dict[int, _PendingTask]) -> None:
        """Fail pending batches over to healthy replicas, resubmit to
        reconnected links, and restart dead workers — in that order, so a
        replica set absorbs a primary's death without waiting out a respawn.
        """
        assert self._pool is not None
        alive = self._pool.alive()
        reconnected, self._reconnected = self._reconnected, set()
        for task in pending.values():
            if task.worker_id in reconnected:
                # The link died and came back: whatever was in flight may be
                # gone, so resend (duplicate answers are last-write-wins).
                clean = replace(task.work, crash_at=None)
                task.work = clean
                self._pool.submit(task.worker_id, clean)
                continue
            if self._pool.healthy(task.worker_id):
                continue
            standby = self._standby(task.shard_id, task.worker_id)
            if standby is None:
                continue  # no spare: the restart path below (or a reconnect)
            clean = replace(task.work, crash_at=None)
            task.work = clean
            if self._pool.submit(standby, clean):
                task.worker_id = standby
                self._failovers += 1
        if all(alive):
            return
        restarted = set(self._pool.restart_dead())
        for task in pending.values():
            if task.worker_id in restarted:
                clean = replace(task.work, crash_at=None)
                task.work = clean
                self._pool.submit(task.worker_id, clean)

    def _maybe_hedge(self, pending: dict[int, _PendingTask]) -> None:
        """Duplicate slow batches to a standby replica (same ``task_id``,
        so whichever copy answers first wins and the loser is a no-op)."""
        if not self._hedge_enabled or self._replicas < 2:
            return
        assert self._pool is not None
        delay = (
            self._hedge_delay_s
            if self._hedge_delay_s is not None
            else self._hedge_policy.delay_s()
        )
        now = time.monotonic()
        for task in pending.values():
            if task.hedge_worker is not None or now - task.submitted_at < delay:
                continue
            standby = self._standby(task.shard_id, task.worker_id)
            if standby is None:
                continue
            clean = replace(task.work, crash_at=None)
            if self._pool.submit(standby, clean):
                task.hedge_worker = standby
                self._hedged += 1

    def _pump(self, timeout_s: float) -> None:
        """Drain one coordinator-bound message into the routing tables."""
        assert self._pool is not None
        self._maybe_heartbeat()
        try:
            message = self._pool.recv(timeout_s=timeout_s)
        except queue.Empty:
            return
        worker_id = getattr(message, "worker_id", None)
        if isinstance(worker_id, int):
            self._monitor.note_message(worker_id)
        if isinstance(message, RouteResults):
            # Duplicates (a worker that died *after* sending, then got its
            # batch resubmitted — or a hedge's second answer) are harmless:
            # last write wins and both carry the same answers.
            self._results[message.task_id] = message
        elif isinstance(message, VersionAck):
            current = self._acks.get(message.worker_id, 0)
            self._acks[message.worker_id] = max(current, message.version)
        elif isinstance(message, Hello):
            self._on_hello(message)
        elif isinstance(message, (Pong, Fatal)):
            # Pongs already fed the monitor above; crash reports are
            # handled through process liveness.
            pass

    def _on_hello(self, hello: Hello) -> None:
        """A reconnect re-identification (boot Hellos are consumed by the
        pool's handshake): mark the worker for pending-work resubmission and
        bring its cost state forward — journal replay when the bounded
        history still covers its version gap, full resync otherwise."""
        assert self._pool is not None
        self._reconnected.add(hello.worker_id)
        current = self._network.cost_version
        if hello.cost_version >= current:
            return
        chain = self._journal.chain(hello.cost_version)
        if chain:
            if all(self._pool.submit(hello.worker_id, diff) for diff in chain):
                self._journal.record_replay()
            # A send that failed means the link died again mid-replay; the
            # next Hello restarts the catch-up from the worker's new version.
        elif self._pool.submit(hello.worker_id, ResyncRequired(version=current)):
            # chain is None (journal truncated) or [] with a stale worker
            # (empty journal): the segment is the only source wide enough.
            self._journal.record_resync()

    # ------------------------------------------------------------------ #
    # Heartbeats
    # ------------------------------------------------------------------ #
    def _maybe_heartbeat(self) -> None:
        if self._heartbeat_interval_s is None or self._heartbeat_interval_s <= 0:
            return
        now = time.monotonic()
        if now - self._last_heartbeat < self._heartbeat_interval_s:
            return
        self._last_heartbeat = now
        self._heartbeat_round()

    def heartbeat(self) -> list[int]:
        """Probe every worker now; returns the ids that crossed the
        liveness deadline (their links are severed so the reconnect /
        failover machinery owns recovery)."""
        with self._lock:
            self._ensure_open()
            return self._heartbeat_round()

    def _heartbeat_round(self) -> list[int]:
        assert self._pool is not None
        probe = Ping(sequence=self._monitor.next_sequence())
        for worker_id in range(self._pool.size):
            if self._pool.submit(worker_id, probe):
                self._monitor.note_ping(worker_id)
        suspects = self._monitor.suspects(self._heartbeat_timeout_s)
        for worker_id in suspects:
            # A wedged worker or half-open link: sever it so recovery flows
            # through the reconnect path instead of trusting a zombie.
            self._pool.drop_connection(worker_id)
        return suspects

    # ------------------------------------------------------------------ #
    # Live traffic
    # ------------------------------------------------------------------ #
    def apply_traffic(
        self,
        updates: Iterable["TrafficUpdate"],
        *,
        wait: bool = True,
        timeout_s: float | None = None,
    ) -> "TrafficUpdateResult":
        """Apply one live-traffic batch across the whole deployment.

        Master network first (transactional), then the shared segment
        (late attachers and restarted workers resync from it), then the
        versioned :class:`CostDiff` broadcast.  With ``wait=True`` the call
        returns only after every worker acknowledged the new version — the
        barrier the cost-identity guarantees are stated under; the measured
        apply-to-last-ack time is exported as ``broadcast_lag_s``.
        """
        with self._lock:
            self._ensure_open()
            assert self._pool is not None and self._segment is not None
            base_version = self._network.cost_version
            result = self._feed.apply(updates)
            self._stats.record_traffic(
                len(result.touched_edges), 0, result.cost_version
            )
            if not result.touched_edges:
                return result
            graph = self._network.compiled()
            slot_of = graph.topology.slot_of
            self._segment.patch(
                graph,
                [slot_of[key] for key in result.touched_edges],
                result.cost_version,
            )
            started = time.perf_counter()
            changes = tuple(
                (
                    key,
                    tuple(
                        (attr, float(getattr(self._network.edge(*key), attr)))
                        for attr in _COST_ATTRIBUTES
                    ),
                )
                for key in sorted(result.touched_edges)
            )
            crash_workers = tuple(
                self._primary(shard_id) for shard_id in self._crash_diff_shards
            )
            self._crash_diff_shards = ()
            diff = CostDiff(
                version=result.cost_version,
                base_version=base_version,
                changes=changes,
                crash_workers=crash_workers,
            )
            # The journal keeps the *clean* diff: a replay must catch a
            # reconnecting worker up, not re-fire a chaos crash hook.
            self._journal.append(replace(diff, crash_workers=()))
            self._pool.broadcast(diff)
            if wait:
                self._await_acks(
                    result.cost_version,
                    self._traffic_timeout_s if timeout_s is None else timeout_s,
                )
                self._broadcast_lag_s = time.perf_counter() - started
            return result

    def _await_acks(self, version: int, timeout_s: float) -> None:
        assert self._pool is not None
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if all(
                self._acks.get(worker_id, 0) >= version
                for worker_id in range(self._pool.size)
            ):
                return
            self._pump(timeout_s=0.05)
            if not all(self._pool.alive()):
                # A worker that died mid-broadcast resyncs from the segment
                # at boot, which carries this version already.
                for worker_id in self._pool.restart_dead():
                    self._acks[worker_id] = version
        raise ShardingError(
            f"traffic broadcast v{version} was not acknowledged by all "
            f"workers within {timeout_s:.0f}s"
        )

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #
    def snapshot(self) -> None:
        """Take an atomic durability snapshot of the current cost state.

        Serialized with ``apply_traffic`` by the coordinator lock, so the
        version stamp and the exported arrays always describe the same
        instant.  Covered WAL segments are pruned afterwards.
        """
        with self._lock:
            self._ensure_open()
            if self._durability is None:
                raise ConfigurationError(
                    "this ShardedRoutingService was built without a "
                    "durability manager"
                )
            self._durability.snapshot(self._network)

    def recover(self, *, timeout_s: float | None = None) -> "RecoveryReport":
        """Coordinator-restart recovery: restore disk state, resync workers.

        Call on a freshly-constructed service whose network was just loaded
        from the model file and whose ``durability`` manager points at the
        pre-crash directory.  The durable state (newest snapshot + WAL
        suffix) is replayed into the master network through the normal feed
        machinery, the whole shared segment is re-patched at the recovered
        version, the in-memory diff journal is cleared (pre-crash chains
        must never bridge across a recovery), and every worker is ordered
        to resync from the segment.  Returns the durability layer's
        :class:`RecoveryReport` once all workers have acknowledged the
        recovered version.
        """
        with self._lock:
            self._ensure_open()
            assert self._pool is not None and self._segment is not None
            if self._durability is None:
                raise ConfigurationError(
                    "this ShardedRoutingService was built without a "
                    "durability manager"
                )
            report = self._durability.recover(self._network, self._feed)
            graph = self._network.compiled()
            version = self._network.cost_version
            self._segment.patch(
                graph, list(range(graph.topology.edge_count)), version
            )
            self._journal.clear()
            self._pool.broadcast(ResyncRequired(version=version))
            self._await_acks(
                version,
                self._traffic_timeout_s if timeout_s is None else timeout_s,
            )
            return report

    # ------------------------------------------------------------------ #
    # Monitoring / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> ServiceStats:
        """A frozen snapshot including the sharding counters."""
        with self._lock:
            return self._stats.snapshot(
                CacheStats(hits=0, misses=0, size=0, max_size=0),
                shards=self._plan.shard_count,
                shard_requests=dict(self._shard_requests),
                cross_shard_requests=self._cross_shard,
                in_shard_requests=self._in_shard,
                broadcast_lag_s=self._broadcast_lag_s,
                worker_restarts=self._pool.restarts if self._pool is not None else 0,
                transport=self._transport,
                replicas=self._replicas,
                failovers=self._failovers,
                hedged_requests=self._hedged,
                hedge_wins=self._hedge_wins,
                heartbeats_sent=self._monitor.pings_sent,
                heartbeat_timeouts=self._monitor.timeouts,
                journal_replays=self._journal.replays,
                journal_resyncs=self._journal.resyncs,
                journal_depth=len(self._journal),
            )

    def reset_stats(self) -> None:
        with self._lock:
            self._stats.reset()
            self._shard_requests = {}
            self._cross_shard = 0
            self._in_shard = 0

    def inject_crash(self, shard_id: int, phase: str = "work") -> None:
        """Chaos hook: hard-kill the shard's primary worker at a chosen
        point (test-only; recovery must serve identical results).

        ``phase="work"`` crashes it on its next :class:`RouteWork` batch;
        ``phase="diff"`` crashes it on the next :class:`CostDiff` broadcast
        *between receipt and ack* — the window the traffic barrier must
        survive.
        """
        if phase not in ("work", "diff"):
            raise ConfigurationError(
                f"unknown crash phase {phase!r} (expected 'work' or 'diff')"
            )
        with self._lock:
            if phase == "work":
                self._crash_worker = shard_id
            else:
                self._crash_diff_shards = (*self._crash_diff_shards, shard_id)

    def drop_connection(self, worker_id: int) -> bool:
        """Chaos hook (TCP transport): sever one worker's link — a network
        fault, not a crash; the worker redials and re-identifies on its
        own.  Returns whether a live link existed."""
        with self._lock:
            self._ensure_open()
            assert self._pool is not None
            return self._pool.drop_connection(worker_id)

    def partition_worker(self, worker_id: int) -> bool:
        """Chaos hook (TCP transport): black-hole one worker — link severed
        and every re-dial refused — until :meth:`heal_worker`.  The worker
        keeps redialing with backoff; once healed, its reconnect Hello
        triggers a journal replay (or full resync) of whatever broadcasts
        it missed."""
        with self._lock:
            self._ensure_open()
            assert self._pool is not None
            return self._pool.partition_worker(worker_id)

    def heal_worker(self, worker_id: int) -> None:
        """Close a :meth:`partition_worker` partition."""
        with self._lock:
            self._ensure_open()
            assert self._pool is not None
            self._pool.heal_worker(worker_id)

    def _ensure_open(self) -> None:
        if self._closed:
            raise ShardingError("ShardedRoutingService is closed")

    def close(self, timeout_s: float = 5.0) -> bool:
        """Shut the pool down, then close and unlink the segment.

        Idempotent.  The unlink happens *after* the workers exited (their
        attached views keep the memory alive regardless, but unlinking last
        keeps restart-during-close races impossible).
        """
        with self._lock:
            if self._closed:
                return True
            self._closed = True
            clean = True
            if self._pool is not None:
                clean = self._pool.close(timeout_s=timeout_s)
                self._pool = None
            if self._segment is not None:
                self._segment.close()
                self._segment.unlink()
                self._segment = None
            return clean

    def __enter__(self) -> "ShardedRoutingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedRoutingService(shards={self._plan.shard_count}, "
            f"method={self._plan.method!r}, closed={self._closed})"
        )
