"""Partitioning a road network into serving shards.

A :class:`ShardPlan` assigns every vertex to exactly one shard and records
the *boundary* structure the cross-shard overlay needs: the directed cut
edges (endpoints in different shards) and, per shard, the boundary vertices
— every endpoint of a cut edge.  Any s-t walk decomposes into maximal
intra-shard segments whose endpoints are boundary vertices (or s / t
themselves) joined by cut edges, which is exactly the decomposition the
overlay router exploits for exact cross-shard answers.

The default partitioner reuses the paper's Algorithm 1 modularity
clustering (:mod:`repro.regions`): the road network itself is treated as a
uniform-popularity trajectory graph, the resulting clusters are packed into
``shard_count`` balanced bins, and any stragglers (isolated vertices the
clustering never saw) join the smallest bin.  A plain BFS partitioner is
the fallback when clustering cannot produce enough usable units.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from ...exceptions import NetworkError
from ...network.road_network import RoadNetwork
from ...regions.clustering import cluster_trajectory_graph
from ...regions.trajectory_graph import TrajectoryGraph

if TYPE_CHECKING:  # pragma: no cover
    from ...network.road_network import VertexId


@dataclass(frozen=True)
class ShardPlan:
    """An immutable vertex partition plus its boundary structure.

    Picklable: shipped to every worker over the spawn pickle, so workers
    and the coordinator agree on shard membership byte for byte.
    """

    shard_count: int
    assignment: Mapping["VertexId", int]
    shards: tuple[tuple["VertexId", ...], ...]
    boundary: tuple[tuple["VertexId", ...], ...]
    """Per shard, the sorted boundary vertices (endpoints of cut edges)."""
    cut_edges: tuple[tuple["VertexId", "VertexId"], ...]
    """Directed edges whose endpoints live in different shards."""
    method: str = "regions"

    def shard_of(self, vertex: "VertexId") -> int | None:
        """The shard a vertex belongs to, or ``None`` for unknown vertices."""
        return self.assignment.get(vertex)

    @property
    def boundary_vertices(self) -> frozenset["VertexId"]:
        return frozenset(v for shard in self.boundary for v in shard)

    def subnetwork(self, network: RoadNetwork, shard_id: int) -> RoadNetwork:
        """The induced sub-network of one shard (both endpoints inside)."""
        members = self.shards[shard_id]
        sub = RoadNetwork(name=f"{network.name}-shard{shard_id}")
        for vertex_id in members:
            vertex = network.vertex(vertex_id)
            sub.add_vertex(vertex_id, vertex.lon, vertex.lat)
        member_set = frozenset(members)
        for vertex_id in members:
            for target, edge in network.successors(vertex_id).items():
                if target in member_set:
                    sub.add_edge(
                        vertex_id,
                        target,
                        road_type=edge.road_type,
                        distance_m=edge.distance_m,
                        speed_kmh=edge.speed_kmh,
                        travel_time_s=edge.travel_time_s,
                        fuel_ml=edge.fuel_ml,
                    )
        return sub


def _pack_units(
    units: list[list["VertexId"]], shard_count: int
) -> dict["VertexId", int] | None:
    """Greedily pack partition units into balanced bins; ``None`` if any
    bin would come out empty (too few units for the requested shards)."""
    if len(units) < shard_count:
        return None
    loads = [0] * shard_count
    assignment: dict["VertexId", int] = {}
    for unit in sorted(units, key=len, reverse=True):
        bin_id = loads.index(min(loads))
        loads[bin_id] += len(unit)
        for vertex in unit:
            assignment[vertex] = bin_id
    if min(loads) == 0:
        return None
    return assignment


def _cluster_units(network: RoadNetwork) -> list[list["VertexId"]]:
    """Partition units from the paper's modularity clustering.

    The network's own edges stand in as a uniform-popularity trajectory
    graph: structure (not demand) drives the partition, which is exactly
    what shard balance wants.
    """
    trajectory_graph = TrajectoryGraph()
    for edge in network.edges():
        trajectory_graph.add_traversal(edge.source, edge.target, edge.road_type)
    result = cluster_trajectory_graph(trajectory_graph, enforce_road_types=False)
    return [sorted(cluster) for cluster in result.clusters if cluster]


def _bfs_units(network: RoadNetwork, shard_count: int) -> list[list["VertexId"]]:
    """Contiguous chunks of roughly equal size via BFS over the undirected
    adjacency — the deterministic fallback partitioner."""
    vertices = sorted(network.vertex_ids())
    if not vertices:
        return []
    target = max(1, (len(vertices) + shard_count - 1) // shard_count)
    unassigned = set(vertices)
    units: list[list["VertexId"]] = []
    for seed in vertices:
        if seed not in unassigned:
            continue
        unit: list["VertexId"] = []
        queue: deque["VertexId"] = deque([seed])
        unassigned.discard(seed)
        while queue and len(unit) < target:
            vertex = queue.popleft()
            unit.append(vertex)
            for neighbor in sorted(network.neighbors(vertex)):
                if neighbor in unassigned:
                    unassigned.discard(neighbor)
                    queue.append(neighbor)
        # Vertices pulled into the queue but not placed return to the pool.
        for vertex in queue:
            unassigned.add(vertex)
        units.append(sorted(unit))
    return units


def _boundary_structure(
    network: RoadNetwork, assignment: Mapping["VertexId", int], shard_count: int
) -> tuple[tuple[tuple["VertexId", ...], ...], tuple[tuple["VertexId", "VertexId"], ...]]:
    boundary_sets: list[set["VertexId"]] = [set() for _ in range(shard_count)]
    cut_edges: list[tuple["VertexId", "VertexId"]] = []
    for edge in network.edges():
        shard_u = assignment[edge.source]
        shard_v = assignment[edge.target]
        if shard_u != shard_v:
            cut_edges.append((edge.source, edge.target))
            boundary_sets[shard_u].add(edge.source)
            boundary_sets[shard_v].add(edge.target)
    return (
        tuple(tuple(sorted(vertices)) for vertices in boundary_sets),
        tuple(sorted(cut_edges)),
    )


def build_shard_plan(
    network: RoadNetwork, shard_count: int, *, method: str = "regions"
) -> ShardPlan:
    """Partition ``network`` into ``shard_count`` shards.

    ``method="regions"`` (default) packs Algorithm-1 clusters into balanced
    bins, falling back to BFS chunks when clustering yields fewer usable
    units than shards; ``method="bfs"`` forces the fallback partitioner.
    """
    vertex_count = network.vertex_count
    if shard_count < 1:
        raise NetworkError(f"shard_count must be >= 1, got {shard_count}")
    if vertex_count == 0:
        raise NetworkError("cannot shard an empty network")
    if shard_count > vertex_count:
        raise NetworkError(
            f"cannot split {vertex_count} vertices into {shard_count} shards"
        )

    chosen = method
    if shard_count == 1:
        assignment = {vertex: 0 for vertex in network.vertex_ids()}
    else:
        if method == "regions":
            units = _cluster_units(network)
            covered = {vertex for unit in units for vertex in unit}
            stragglers = sorted(set(network.vertex_ids()) - covered)
            if stragglers:
                units.append(stragglers)
            assignment = _pack_units(units, shard_count)
            if assignment is None:
                chosen = "bfs"
        elif method == "bfs":
            assignment = None
            chosen = "bfs"
        else:
            raise NetworkError(f"unknown shard-plan method {method!r}")
        if chosen == "bfs":
            units = _bfs_units(network, shard_count)
            # BFS chunking can come up one unit short on tiny networks;
            # halving the largest unit always restores feasibility.
            while len(units) < shard_count and any(len(unit) > 1 for unit in units):
                largest = max(units, key=len)
                units.remove(largest)
                mid = len(largest) // 2
                units.append(largest[:mid])
                units.append(largest[mid:])
            assignment = _pack_units(units, shard_count)
        if assignment is None:
            raise NetworkError(
                f"could not produce {shard_count} non-empty shards for "
                f"{vertex_count} vertices"
            )

    shards = tuple(
        tuple(sorted(v for v, shard in assignment.items() if shard == k))
        for k in range(shard_count)
    )
    boundary, cut_edges = _boundary_structure(network, assignment, shard_count)
    return ShardPlan(
        shard_count=shard_count,
        assignment=assignment,
        shards=shards,
        boundary=boundary,
        cut_edges=cut_edges,
        method=chosen,
    )
