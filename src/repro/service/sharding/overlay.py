"""Boundary overlay graph and exact cross-shard route stitching.

Any optimal s→t walk decomposes at its cut-edge traversals into maximal
intra-shard segments whose endpoints are boundary vertices (plus s and t
themselves).  The overlay graph materializes exactly that decomposition: its
vertices are the boundary vertices of a :class:`~repro.service.sharding.plan.
ShardPlan`, its edges are the real cut edges (original costs) plus, per
shard, *shortcut* edges between same-shard boundary pairs carrying the
shard-local shortest cost for every feature.  Boundary-to-boundary distances
over this overlay therefore equal the true full-network distances, and a
cross-shard query reduces to

    min over (b, b')  d_A(s, b) + D[b, b'] + d_B(b', t)

with ``d_A`` / ``d_B`` shard-local distance rows (one ``dijkstra_many``
batch per distinct source set, through the compiled dispatch layer) and
``D`` the memoized overlay boundary matrix.  The same stitch bound doubles
as the *escape check* for in-shard queries: a path may legitimately leave
its shard and re-enter, and the stitch cost is exactly the best such escape.

Cost updates never change reachability (all edge costs stay positive), so
the overlay's topology is fixed at build time; live traffic only refreshes
shortcut values through :meth:`BoundaryOverlay.apply`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ...exceptions import NoPathError, ReproError
from ...network.compiled import dispatch as _compiled
from ...network.road_network import RoadNetwork
from ...routing.costs import (
    ALL_COST_FEATURES,
    FEATURE_EDGE_ATTRIBUTES,
    CostFeature,
    cost_function,
)
from ...routing.dijkstra import dijkstra
from ...routing.path import Path, splice_all

if TYPE_CHECKING:  # pragma: no cover
    from ...network.road_network import VertexId
    from .plan import ShardPlan

#: Relative tolerance for "strictly better" comparisons between a shard-local
#: answer and the overlay stitch bound (floating-point stitch sums).
ESCAPE_REL_TOL = 1e-9

#: Relative tolerance for the post-reconstruction cost audit.
AUDIT_REL_TOL = 1e-6


def path_cost(
    network: RoadNetwork, vertices: Sequence["VertexId"], feature: CostFeature
) -> float:
    """The summed feature cost of a vertex walk on ``network``."""
    attribute = FEATURE_EDGE_ATTRIBUTES[feature]
    total = 0.0
    for source, target in zip(vertices, vertices[1:]):
        total += getattr(network.edge(source, target), attribute)
    return total


def _improves(candidate: float, incumbent: float, rel_tol: float = ESCAPE_REL_TOL) -> bool:
    """Whether ``candidate`` beats ``incumbent`` beyond float noise."""
    if not math.isfinite(candidate):
        return False
    if not math.isfinite(incumbent):
        return True
    return candidate < incumbent - rel_tol * max(1.0, abs(incumbent))


@dataclass(frozen=True)
class Stitch:
    """One pair's best overlay decomposition: cost and the boundary pair."""

    cost: float
    exit_vertex: "VertexId"
    entry_vertex: "VertexId"


class BoundaryOverlay:
    """The compiled boundary overlay of one shard plan.

    Owns the per-shard induced sub-networks (the same objects the serving
    worker routes on, so cost updates applied through :meth:`apply` are seen
    by both) and the overlay :class:`RoadNetwork` whose boundary matrix the
    stitcher consumes.
    """

    def __init__(self, network: RoadNetwork, plan: "ShardPlan") -> None:
        self.plan = plan
        self.subnets: tuple[RoadNetwork, ...] = tuple(
            plan.subnetwork(network, shard_id) for shard_id in range(plan.shard_count)
        )
        self.network = self._build_overlay(network, plan)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build_overlay(self, network: RoadNetwork, plan: "ShardPlan") -> RoadNetwork:
        overlay = RoadNetwork(name=f"{network.name}-overlay")
        for vertex_id in sorted(plan.boundary_vertices):
            vertex = network.vertex(vertex_id)
            overlay.add_vertex(vertex_id, vertex.lon, vertex.lat)
        for source, target in plan.cut_edges:
            edge = network.edge(source, target)
            overlay.add_edge(
                source,
                target,
                road_type=edge.road_type,
                distance_m=edge.distance_m,
                speed_kmh=edge.speed_kmh,
                travel_time_s=edge.travel_time_s,
                fuel_ml=edge.fuel_ml,
            )
        for shard_id in range(plan.shard_count):
            for (source, target), values in self._shortcut_values(shard_id).items():
                overlay.add_edge(
                    source,
                    target,
                    distance_m=values["distance_m"],
                    speed_kmh=self._shortcut_speed(values),
                    travel_time_s=values["travel_time_s"],
                    fuel_ml=values["fuel_ml"],
                )
        return overlay

    @staticmethod
    def _shortcut_speed(values: Mapping[str, float]) -> float:
        seconds = values["travel_time_s"]
        if seconds <= 0.0:
            return 50.0
        return max(1.0, values["distance_m"] / seconds * 3.6)

    def _shortcut_values(
        self, shard_id: int
    ) -> dict[tuple["VertexId", "VertexId"], dict[str, float]]:
        """Shard-local shortest costs between the shard's boundary pairs.

        Only finite pairs are returned: positive costs mean reachability is
        a topological property, so the finite set — and with it the overlay
        edge set — is stable under live-traffic updates.
        """
        boundary = self.plan.boundary[shard_id]
        if len(boundary) < 2:
            return {}
        per_feature: dict[CostFeature, np.ndarray] = {}
        for feature in ALL_COST_FEATURES:
            rows = self.shard_rows(shard_id, feature)
            if rows is None:
                return self._shortcut_values_reference(shard_id)
            matrix, index_of, _ = rows
            columns = [index_of[vertex] for vertex in boundary]
            per_feature[feature] = matrix[:, columns]
        values: dict[tuple["VertexId", "VertexId"], dict[str, float]] = {}
        for i, source in enumerate(boundary):
            for j, target in enumerate(boundary):
                if i == j:
                    continue
                distance = float(per_feature[CostFeature.DISTANCE][i, j])
                if not math.isfinite(distance):
                    continue
                values[(source, target)] = {
                    FEATURE_EDGE_ATTRIBUTES[feature]: float(per_feature[feature][i, j])
                    for feature in ALL_COST_FEATURES
                }
        return values

    def _shortcut_values_reference(
        self, shard_id: int
    ) -> dict[tuple["VertexId", "VertexId"], dict[str, float]]:
        """Per-pair reference fallback when batched rows are unavailable."""
        boundary = self.plan.boundary[shard_id]
        subnet = self.subnets[shard_id]
        values: dict[tuple["VertexId", "VertexId"], dict[str, float]] = {}
        for source in boundary:
            for target in boundary:
                if source == target:
                    continue
                entry: dict[str, float] = {}
                try:
                    for feature in ALL_COST_FEATURES:
                        path = dijkstra(subnet, source, target, cost_function(feature))
                        entry[FEATURE_EDGE_ATTRIBUTES[feature]] = path_cost(
                            subnet, tuple(path), feature
                        )
                except NoPathError:
                    continue
                values[(source, target)] = entry
        return values

    # ------------------------------------------------------------------ #
    # Live traffic
    # ------------------------------------------------------------------ #
    def apply(
        self,
        changes: Mapping[tuple["VertexId", "VertexId"], Mapping[str, float]],
    ) -> frozenset[tuple["VertexId", "VertexId"]]:
        """Propagate master-network cost changes into subnets and overlay.

        Intra-shard changes patch the owning sub-network (the worker's
        serving graph) and mark the shard dirty; dirty shards get their
        shortcut values recomputed; cut-edge changes patch the overlay
        directly.  Returns the changed intra-shard edge keys (the set a
        serving cache over the sub-networks must invalidate against).
        """
        per_shard: dict[int, dict[tuple["VertexId", "VertexId"], dict[str, float]]] = {}
        overlay_changes: dict[tuple["VertexId", "VertexId"], dict[str, float]] = {}
        assignment = self.plan.assignment
        for (source, target), attrs in changes.items():
            shard_s = assignment.get(source)
            shard_t = assignment.get(target)
            if shard_s is None or shard_t is None:
                continue
            if shard_s == shard_t:
                per_shard.setdefault(shard_s, {})[(source, target)] = dict(attrs)
            else:
                overlay_changes[(source, target)] = dict(attrs)
        local: set[tuple["VertexId", "VertexId"]] = set()
        for shard_id, shard_changes in per_shard.items():
            local.update(self.subnets[shard_id].update_edge_costs(shard_changes))
        for shard_id in sorted(per_shard):
            overlay_changes.update(self._shortcut_values(shard_id))
        if overlay_changes:
            self.network.update_edge_costs(overlay_changes)
        return frozenset(local)

    # ------------------------------------------------------------------ #
    # Boundary matrix
    # ------------------------------------------------------------------ #
    @property
    def order(self) -> tuple["VertexId", ...]:
        return tuple(sorted(self.plan.boundary_vertices))

    def matrix(self, feature: CostFeature) -> tuple[np.ndarray, dict["VertexId", int]]:
        """The all-pairs boundary distance matrix for one feature.

        Memoized on the overlay's compiled snapshot, so live-traffic patches
        (which bump the overlay's cost version through :meth:`apply`)
        invalidate it automatically.
        """
        order = self.order
        index = {vertex: position for position, vertex in enumerate(order)}
        if not order:
            return np.zeros((0, 0), dtype=np.float64), index

        def build() -> np.ndarray:
            rows = self.walk_rows(feature)
            if rows is None:
                return self._matrix_reference(order, feature)
            matrix, index_of, _ = rows
            columns = [index_of[vertex] for vertex in order]
            return np.ascontiguousarray(matrix[:, columns])

        graph = self.network.compiled()
        if graph is None:
            return self._matrix_reference(order, feature), index
        result = graph.memo(("sharding-overlay-matrix", feature), build)
        return result, index  # type: ignore[return-value]

    def walk_rows(
        self, feature: CostFeature
    ) -> tuple[np.ndarray, dict["VertexId", int], dict["VertexId", int]] | None:
        """Memoized SSSP rows from every boundary vertex over the overlay.

        The boundary matrix is a column selection of these rows, and — since
        the rows carry distances to *all* overlay vertices — they also
        reconstruct overlay walks without any fresh search.  Memoized on the
        overlay's compiled snapshot like :meth:`matrix`.
        """
        order = self.order
        if not order:
            return None
        graph = self.network.compiled()
        if graph is None:
            return None
        computed = graph.memo(
            ("sharding-overlay-rows", feature),
            lambda: boundary_rows(self.network, order, feature),
        )
        if computed is None:
            return None
        row_of = {vertex: position for position, vertex in enumerate(order)}
        return computed[0], computed[1], row_of

    def shard_rows(
        self, shard_id: int, feature: CostFeature
    ) -> tuple[np.ndarray, dict["VertexId", int], dict["VertexId", int]] | None:
        """Memoized SSSP rows from a shard's boundary over its sub-network.

        Shortcut edges always start at a boundary vertex, so these rows
        expand every shortcut leg of an overlay walk with zero searches.
        Memoized on the subnet's compiled snapshot; live-traffic updates
        bump its cost version and invalidate automatically.
        """
        boundary = self.plan.boundary[shard_id]
        if not boundary:
            return None
        subnet = self.subnets[shard_id]
        graph = subnet.compiled()
        if graph is None:
            return None
        computed = graph.memo(
            ("sharding-shard-boundary-rows", feature),
            lambda: boundary_rows(subnet, boundary, feature),
        )
        if computed is None:
            return None
        row_of = {vertex: position for position, vertex in enumerate(boundary)}
        return computed[0], computed[1], row_of

    def _matrix_reference(
        self, order: tuple["VertexId", ...], feature: CostFeature
    ) -> np.ndarray:
        cost = cost_function(feature)
        matrix = np.full((len(order), len(order)), np.inf, dtype=np.float64)
        for i, source in enumerate(order):
            matrix[i, i] = 0.0
            for j, target in enumerate(order):
                if i == j:
                    continue
                try:
                    path = dijkstra(self.network, source, target, cost)
                except NoPathError:
                    continue
                matrix[i, j] = path_cost(self.network, tuple(path), feature)
        return matrix

    # ------------------------------------------------------------------ #
    # Shortcut expansion
    # ------------------------------------------------------------------ #
    def expand(
        self, overlay_vertices: Sequence["VertexId"], feature: CostFeature
    ) -> Path:
        """Expand an overlay walk into a full-network path.

        Cut edges are real edges and pass through unchanged; shortcut edges
        re-run the shard-local search that priced them.
        """
        cost = cost_function(feature)
        assignment = self.plan.assignment
        legs: list[Path] = []
        for source, target in zip(overlay_vertices, overlay_vertices[1:]):
            if assignment[source] != assignment[target]:
                legs.append(Path.of([source, target]))
            else:
                subnet = self.subnets[assignment[source]]
                legs.append(dijkstra(subnet, source, target, cost))
        if not legs:
            return Path.of([overlay_vertices[0]])
        return splice_all(legs)


def boundary_rows(
    network: RoadNetwork,
    sources: Sequence["VertexId"],
    feature: CostFeature,
    reverse: bool = False,
) -> tuple[np.ndarray, dict["VertexId", int]] | None:
    """Batched per-source cost rows through the compiled dispatch layer.

    ``None`` when the compiled path is unavailable (disabled, or a source is
    unknown to the graph); callers fall back to reference routing then.
    """
    if not sources:
        return np.zeros((0, 0), dtype=np.float64), {}
    return _compiled.try_cost_rows(network, sources, cost_function(feature), reverse=reverse)


#: Per-shard SSSP rows: (cost matrix, compiled column index map, row-of-vertex).
_ShardRows = tuple[np.ndarray, dict["VertexId", int], dict["VertexId", int]]

#: A batched leg answer: a path, ``()`` for a provably unreachable pair, or
#: ``None`` when the batch could not answer and the caller must re-derive.
_Leg = Path | tuple[()] | None


def _legs_many(
    network: RoadNetwork,
    pairs: Sequence[tuple["VertexId", "VertexId"]],
    cost,
) -> list[_Leg]:
    """Batched point-to-point legs through one shared kernel call.

    Trivial pairs (source == destination) short-circuit to the zero-length
    walk — with strictly positive edge costs nothing beats it — so stitch
    endpoints sitting on the boundary never hit the kernel.
    """
    legs: list[_Leg] = [None] * len(pairs)
    remaining: list[int] = []
    for position, (source, destination) in enumerate(pairs):
        if source == destination:
            legs[position] = Path.of([source])
        else:
            remaining.append(position)
    if not remaining:
        return legs
    batched = _compiled.try_route_many(
        network, [pairs[position] for position in remaining], cost
    )
    if batched is None:
        return legs
    for position, answer in zip(remaining, batched):
        if isinstance(answer, list) and answer:
            legs[position] = Path.of(answer)
        elif answer == ():
            legs[position] = ()
    return legs


def _legs_from_rows(
    network: RoadNetwork,
    rows: np.ndarray,
    specs: Sequence[tuple[int, "VertexId", "VertexId"]],
    cost,
    reverse: bool = False,
) -> list[_Leg]:
    """Legs reconstructed from precomputed SSSP rows — no new searches."""
    if not specs:
        return []
    batched = _compiled.try_route_from_rows(network, rows, list(specs), cost, reverse=reverse)
    if batched is None:
        return [None] * len(specs)
    legs: list[_Leg] = []
    for answer in batched:
        if isinstance(answer, list) and answer:
            legs.append(Path.of(answer))
        elif answer == ():
            legs.append(())
        else:
            legs.append(None)
    return legs


class CrossShardRouter:
    """Exact stitched routing over a :class:`BoundaryOverlay`.

    Stateless between calls apart from the overlay's memoized boundary
    matrix; one :meth:`stitch` call batches all row computations for a group
    of same-feature pairs.
    """

    def __init__(self, network: RoadNetwork, overlay: BoundaryOverlay) -> None:
        self.network = network
        self.overlay = overlay
        self.plan = overlay.plan

    def stitch(
        self,
        pairs: Sequence[tuple["VertexId", "VertexId"]],
        feature: CostFeature,
    ) -> list[Stitch | None] | None:
        """The best overlay decomposition per pair.

        Entry ``None`` means no boundary path exists for that pair; a
        ``None`` *return* means the batched machinery is unavailable and the
        caller must fall back to full-network routing.
        """
        rows = self._endpoint_rows(pairs, feature)
        if rows is None:
            return None
        return self._stitch_from_rows(pairs, feature, *rows)

    def _endpoint_rows(
        self,
        pairs: Sequence[tuple["VertexId", "VertexId"]],
        feature: CostFeature,
    ) -> tuple[dict[int, _ShardRows], dict[int, _ShardRows]] | None:
        """Per-shard SSSP cost rows for every pair endpoint.

        Forward rows (keyed by source shard) hold distances *from* each
        source over its sub-network; backward rows (keyed by destination
        shard) hold distances *to* each destination.  These rows price the
        stitch **and** — through :func:`~repro.network.compiled.dispatch.
        try_route_from_rows` — reconstruct shard-local legs without any
        further SSSP, which is what makes the serving path competitive with
        the single-process batched kernel.
        """
        plan = self.plan
        forward: dict[int, _ShardRows] = {}
        backward: dict[int, _ShardRows] = {}
        for rows, reverse, selector in (
            (forward, False, 0),
            (backward, True, 1),
        ):
            grouped: dict[int, list["VertexId"]] = {}
            for pair in pairs:
                vertex = pair[selector]
                shard_id = plan.shard_of(vertex)
                if shard_id is None:
                    return None
                if reverse and not plan.boundary[shard_id]:
                    # No stitch can enter a boundary-less shard, so its
                    # backward rows would never be read.
                    continue
                bucket = grouped.setdefault(shard_id, [])
                if vertex not in bucket:
                    bucket.append(vertex)
            for shard_id, vertices in grouped.items():
                computed = boundary_rows(
                    self.overlay.subnets[shard_id], vertices, feature, reverse=reverse
                )
                if computed is None:
                    return None
                row_of = {vertex: position for position, vertex in enumerate(vertices)}
                rows[shard_id] = (computed[0], computed[1], row_of)
        return forward, backward

    def _stitch_from_rows(
        self,
        pairs: Sequence[tuple["VertexId", "VertexId"]],
        feature: CostFeature,
        forward: dict[int, _ShardRows],
        backward: dict[int, _ShardRows],
    ) -> list[Stitch | None]:
        matrix, overlay_index = self.overlay.matrix(feature)
        plan = self.plan
        # The boundary column selections and the overlay block depend only on
        # the (source shard, destination shard) pair — prepare each once.
        prepared: dict[int, tuple] = {}
        blocks: dict[tuple[int, int], np.ndarray] = {}
        for shard_id in set(forward) | set(backward):
            boundary = plan.boundary[shard_id]
            prepared[shard_id] = (
                boundary,
                np.asarray([forward[shard_id][1][b] for b in boundary], dtype=np.intp)
                if shard_id in forward and boundary
                else None,
                np.asarray([backward[shard_id][1][b] for b in boundary], dtype=np.intp)
                if shard_id in backward and boundary
                else None,
                [overlay_index[b] for b in boundary],
            )

        results: list[Stitch | None] = []
        for source, destination in pairs:
            shard_s = plan.shard_of(source)
            shard_t = plan.shard_of(destination)
            assert shard_s is not None and shard_t is not None
            exits, fwd_columns, _, exit_overlay = prepared[shard_s]
            entries, _, bwd_columns, entry_overlay = prepared[shard_t]
            if not exits or not entries:
                results.append(None)
                continue
            fwd_matrix, _, fwd_rows = forward[shard_s]
            bwd_matrix, _, bwd_rows = backward[shard_t]
            out_costs = fwd_matrix[fwd_rows[source], fwd_columns]
            in_costs = bwd_matrix[bwd_rows[destination], bwd_columns]
            overlay_block = blocks.get((shard_s, shard_t))
            if overlay_block is None:
                overlay_block = blocks[(shard_s, shard_t)] = matrix[
                    np.ix_(exit_overlay, entry_overlay)
                ]
            total = out_costs[:, None] + overlay_block + in_costs[None, :]
            flat = int(np.argmin(total))
            best = float(total.flat[flat])
            if not math.isfinite(best):
                results.append(None)
                continue
            i, j = divmod(flat, len(entries))
            results.append(Stitch(cost=best, exit_vertex=exits[i], entry_vertex=entries[j]))
        return results

    def reconstruct(
        self,
        source: "VertexId",
        destination: "VertexId",
        stitch: Stitch,
        feature: CostFeature,
    ) -> Path:
        """The full-network path realizing one stitch, audited for cost.

        Builds shard-local legs around the overlay walk between the stitch's
        boundary pair, splices, and verifies the result prices at the stitch
        cost (within :data:`AUDIT_REL_TOL`); any disagreement — or a leg
        search failing outright — falls back to a direct full-network search
        so a stitching bug can degrade throughput but never correctness.
        """
        cost = cost_function(feature)
        try:
            shard_s = self.plan.shard_of(source)
            shard_t = self.plan.shard_of(destination)
            assert shard_s is not None and shard_t is not None
            head = dijkstra(
                self.overlay.subnets[shard_s], source, stitch.exit_vertex, cost
            )
            overlay_walk = dijkstra(
                self.overlay.network, stitch.exit_vertex, stitch.entry_vertex, cost
            )
            middle = self.overlay.expand(tuple(overlay_walk), feature)
            tail = dijkstra(
                self.overlay.subnets[shard_t], stitch.entry_vertex, destination, cost
            )
            path = splice_all([head, middle, tail])
            if self._audit_passes(path, stitch, feature):
                return path
        except ReproError:
            pass
        return dijkstra(self.network, source, destination, cost)

    def _audit_passes(self, path: Path, stitch: Stitch, feature: CostFeature) -> bool:
        """Whether a spliced path prices at the stitch cost and walks real edges."""
        realized = path_cost(self.network, tuple(path), feature)
        return (
            math.isfinite(realized)
            and abs(realized - stitch.cost) <= AUDIT_REL_TOL * max(1.0, abs(stitch.cost))
            and path.is_valid(self.network)
        )

    def _reconstruct_many(
        self,
        rebuilds: Sequence[tuple[int, "VertexId", "VertexId", Stitch]],
        feature: CostFeature,
        forward: dict[int, _ShardRows] | None = None,
        backward: dict[int, _ShardRows] | None = None,
    ) -> list[tuple[int, tuple["VertexId", ...]]]:
        """Batched :meth:`reconstruct` over many stitches.

        Head (source→exit) and tail (entry→destination) legs reconstruct
        straight from the stitch's own SSSP rows when the caller passes them
        — zero additional searches; otherwise (and for the overlay walks and
        the shortcut expansions the walks reveal) one batched kernel call
        per network answers the whole group.  Any pair whose legs the batch
        could not produce — or whose spliced path fails the cost audit —
        drops to the per-pair :meth:`reconstruct`, which carries its own
        full-network fallback.
        """
        subnets = self.overlay.subnets
        assignment = self.plan.assignment
        cost = cost_function(feature)
        count = len(rebuilds)

        head_groups: dict[int, list[tuple[int, tuple["VertexId", "VertexId"]]]] = {}
        tail_groups: dict[int, list[tuple[int, tuple["VertexId", "VertexId"]]]] = {}
        walk_pairs: list[tuple["VertexId", "VertexId"]] = []
        heads: list[_Leg] = [None] * count
        tails: list[_Leg] = [None] * count
        for position, (_, source, destination, stitch) in enumerate(rebuilds):
            shard_s = self.plan.shard_of(source)
            shard_t = self.plan.shard_of(destination)
            assert shard_s is not None and shard_t is not None
            head_groups.setdefault(shard_s, []).append(
                (position, (source, stitch.exit_vertex))
            )
            tail_groups.setdefault(shard_t, []).append(
                (position, (stitch.entry_vertex, destination))
            )
            walk_pairs.append((stitch.exit_vertex, stitch.entry_vertex))
        for groups, slots, rows, reverse in (
            (head_groups, heads, forward, False),
            (tail_groups, tails, backward, True),
        ):
            for shard_id, group in groups.items():
                shard_rows = rows.get(shard_id) if rows else None
                if shard_rows is not None:
                    matrix, _, row_of = shard_rows
                    # Forward rows are keyed by the head's source, backward
                    # rows by the tail's destination.
                    batch = _legs_from_rows(
                        subnets[shard_id],
                        matrix,
                        [
                            (row_of[pair[1] if reverse else pair[0]], *pair)
                            for _, pair in group
                        ],
                        cost,
                        reverse=reverse,
                    )
                else:
                    batch = _legs_many(
                        subnets[shard_id], [pair for _, pair in group], cost
                    )
                for (position, _), leg in zip(group, batch):
                    slots[position] = leg
        overlay_rows = self.overlay.walk_rows(feature)
        if overlay_rows is not None:
            walk_matrix, _, walk_row_of = overlay_rows
            walks = _legs_from_rows(
                self.overlay.network,
                walk_matrix,
                [(walk_row_of[exit_], exit_, entry) for exit_, entry in walk_pairs],
                cost,
            )
        else:
            walks = _legs_many(self.overlay.network, walk_pairs, cost)

        # Round two: shard-local expansion of the shortcut edges inside each
        # overlay walk (cut edges are real and pass through unchanged).
        middles: list[list[_Leg] | None] = [None] * count
        expansion_groups: dict[
            int, list[tuple[int, int, tuple["VertexId", "VertexId"]]]
        ] = {}
        for position, walk in enumerate(walks):
            if not isinstance(walk, Path):
                continue
            vertices = tuple(walk)
            legs: list[_Leg] = []
            for walk_source, walk_target in zip(vertices, vertices[1:]):
                if assignment[walk_source] != assignment[walk_target]:
                    legs.append(Path.of([walk_source, walk_target]))
                else:
                    expansion_groups.setdefault(assignment[walk_source], []).append(
                        (position, len(legs), (walk_source, walk_target))
                    )
                    legs.append(None)
            middles[position] = legs
        for shard_id, group in expansion_groups.items():
            shard_rows = self.overlay.shard_rows(shard_id, feature)
            if shard_rows is not None:
                shard_matrix, _, shard_row_of = shard_rows
                batch = _legs_from_rows(
                    subnets[shard_id],
                    shard_matrix,
                    [(shard_row_of[pair[0]], *pair) for _, _, pair in group],
                    cost,
                )
            else:
                batch = _legs_many(
                    subnets[shard_id], [pair for _, _, pair in group], cost
                )
            for (position, leg_index, _), leg in zip(group, batch):
                middles[position][leg_index] = leg  # type: ignore[index]

        results: list[tuple[int, tuple["VertexId", ...]]] = []
        for position, (index, source, destination, stitch) in enumerate(rebuilds):
            head, tail, legs = heads[position], tails[position], middles[position]
            path: Path | None = None
            if isinstance(head, Path) and isinstance(tail, Path) and legs is not None:
                complete = [leg for leg in legs if isinstance(leg, Path)]
                if len(complete) == len(legs):
                    middle = (
                        splice_all(complete)
                        if complete
                        else Path.of([stitch.exit_vertex])
                    )
                    try:
                        candidate = splice_all([head, middle, tail])
                        if self._audit_passes(candidate, stitch, feature):
                            path = candidate
                    except ReproError:
                        path = None
            if path is None:
                path = self.reconstruct(source, destination, stitch, feature)
            results.append((index, tuple(path)))
        return results

    def route_pairs(
        self,
        pairs: Sequence[tuple["VertexId", "VertexId"]],
        feature: CostFeature,
    ) -> list[tuple[tuple["VertexId", ...] | None, bool]] | None:
        """Route pairs through the overlay; ``(vertices, used_overlay)`` each.

        In-shard pairs are answered by the shard-local search unless the
        stitch bound shows an escape path is strictly cheaper.  ``None``
        return mirrors :meth:`stitch` (machinery unavailable).
        """
        rows = self._endpoint_rows(pairs, feature)
        if rows is None:
            return None
        forward, backward = rows
        stitches = self._stitch_from_rows(pairs, feature, forward, backward)
        cost = cost_function(feature)

        # In-shard pairs reconstruct straight from the stitch's forward rows
        # (no further searches); entries the rows could not prove — or a
        # provably unreachable ``()`` — re-derive or resolve per pair.
        local_groups: dict[int, list[int]] = {}
        for index, (source, destination) in enumerate(pairs):
            shard_s = self.plan.shard_of(source)
            if shard_s is not None and shard_s == self.plan.shard_of(destination):
                local_groups.setdefault(shard_s, []).append(index)
        local_paths: dict[int, Path | None] = {}
        for shard_id, indices in local_groups.items():
            subnet = self.overlay.subnets[shard_id]
            matrix, _, row_of = forward[shard_id]
            batch = _legs_from_rows(
                subnet,
                matrix,
                [(row_of[pairs[index][0]], *pairs[index]) for index in indices],
                cost,
            )
            for index, leg in zip(indices, batch):
                if leg is None:
                    try:
                        leg = dijkstra(subnet, pairs[index][0], pairs[index][1], cost)
                    except ReproError:
                        leg = None
                elif not isinstance(leg, Path):
                    leg = None  # () — provably no shard-local path
                local_paths[index] = leg

        answers: list[tuple[tuple["VertexId", ...] | None, bool]] = [
            (None, True)
        ] * len(pairs)
        rebuilds: list[tuple[int, "VertexId", "VertexId", Stitch]] = []
        for index, ((source, destination), stitch) in enumerate(zip(pairs, stitches)):
            if index in local_paths:
                local_path = local_paths[index]
                local_cost = (
                    path_cost(self.network, tuple(local_path), feature)
                    if local_path is not None
                    else math.inf
                )
                if stitch is not None and _improves(stitch.cost, local_cost):
                    rebuilds.append((index, source, destination, stitch))
                elif local_path is not None:
                    answers[index] = (tuple(local_path), False)
                else:
                    answers[index] = (None, False)
            elif stitch is not None:
                rebuilds.append((index, source, destination, stitch))
        for index, vertices in self._reconstruct_many(
            rebuilds, feature, forward, backward
        ):
            answers[index] = (vertices, True)
        return answers
