"""The shard worker: one spawned process serving one shard's queries.

Boot protocol (the order matters):

1. attach the shared segment (:func:`repro.network.compiled.shm.attach` —
   close-only lifecycle, the worker never unlinks);
2. verify the pickled network snapshot compiles to the *same* CSR topology
   the segment describes (slot-indexed patches would land on wrong edges
   otherwise);
3. :func:`~repro.network.compiled.shm.sync_network` the snapshot up to the
   segment's cost state (the pickle may predate live-traffic batches);
4. adopt the segment's cost arrays zero-copy into the compiled snapshot
   (one set of big float arrays per machine, not per worker);
5. build the :class:`~repro.service.sharding.overlay.BoundaryOverlay` and
   start answering.

Live traffic arrives as versioned :class:`CostDiff` broadcasts; a worker
whose version does not match the diff's base resyncs from the segment (the
authoritative state) instead of applying the diff.  Either way every route
answer cached under the old version is dropped — the self-eviction the
coordinator's broadcast protocol is designed around.
"""

from __future__ import annotations

import os
import queue
import time
from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING

from ...exceptions import NetworkError, ReproError
from ...network.compiled import shm
from ...routing.costs import ALL_COST_FEATURES, FEATURE_EDGE_ATTRIBUTES, CostFeature, cost_function
from ...routing.dijkstra import dijkstra
from .overlay import BoundaryOverlay, CrossShardRouter
from .protocol import (
    CostDiff,
    Fatal,
    Hello,
    Ping,
    Pong,
    QueueTransport,
    ResyncRequired,
    RouteAnswer,
    RouteResults,
    RouteWork,
    Shutdown,
    Transport,
    VersionAck,
    WorkerPayload,
)

if TYPE_CHECKING:  # pragma: no cover
    from ...network.road_network import RoadNetwork, VertexId

#: How long one ``recv`` blocks before the loop re-checks its running flag.
_POLL_TIMEOUT_S = 0.2


def resync_network(network: "RoadNetwork", view: shm.SegmentView) -> frozenset[tuple["VertexId", "VertexId"]]:
    """Bring a network's *edge objects* up to the segment's cost state.

    Unlike :func:`~repro.network.compiled.shm.sync_network` (which diffs the
    compiled arrays and is the right tool at boot), this compares the
    authoritative ``Edge`` attribute values — correct even after
    :func:`~repro.network.compiled.shm.adopt_shared_costs` made the compiled
    arrays aliases of the segment (patched in place by the owner, so an
    array diff would see nothing while the edges are stale).
    """
    edge_keys = view.array("edge_keys")
    changes: dict[tuple["VertexId", "VertexId"], dict[str, float]] = {}
    for attr in view.spec.cost_attributes:
        shared = view.cost_array(attr)
        for slot in range(view.edge_count):
            key = (int(edge_keys[slot, 0]), int(edge_keys[slot, 1]))
            value = float(shared[slot])
            if getattr(network.edge(*key), attr) != value:
                changes.setdefault(key, {})[attr] = value
    if not changes:
        return frozenset()
    return network.update_edge_costs(changes)


class ShardWorker:
    """The serving loop behind one shard; transport-agnostic."""

    def __init__(self, payload: WorkerPayload, transport: Transport) -> None:
        self.payload = payload
        self.transport = transport
        self.network = payload.network
        self.view: shm.SegmentView | None = None
        self.overlay: BoundaryOverlay | None = None
        self.router: CrossShardRouter | None = None
        self.version = 0
        self._engine_features = dict(payload.engines)
        self._answers: OrderedDict[
            tuple[CostFeature, "VertexId", "VertexId"],
            tuple[tuple["VertexId", ...] | None, bool],
        ] = OrderedDict()
        self._running = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def boot(self) -> None:
        view = shm.attach(self.payload.spec)
        try:
            graph = self.network.compiled()
            if not shm.verify_topology(graph, view):
                raise NetworkError(
                    f"worker {self.payload.worker_id}: segment "
                    f"{self.payload.spec.segment_name!r} does not match the "
                    "pickled network's CSR topology"
                )
            shm.sync_network(self.network, view)
            shm.adopt_shared_costs(self.network.compiled(), view)
            self.version = view.cost_version
            self.overlay = BoundaryOverlay(self.network, self.payload.plan)
            self.router = CrossShardRouter(self.network, self.overlay)
        except BaseException:
            view.close()
            raise
        self.view = view

    def close(self) -> None:
        """Idempotent: drop the segment mapping (never unlink — the owner's
        job) and stop the loop."""
        self._running = False
        if self.view is not None:
            self.view.close()
            self.view = None

    def run(self) -> None:
        """Serve until :class:`Shutdown` (or transport teardown)."""
        self._running = True
        self.transport.send(
            Hello(
                worker_id=self.payload.worker_id,
                shard_id=self.payload.shard_id,
                pid=os.getpid(),
                cost_version=self.version,
            )
        )
        while self._running:
            try:
                message = self.transport.recv(timeout_s=_POLL_TIMEOUT_S)
            except queue.Empty:
                continue
            except (EOFError, OSError):
                break
            self.handle(message)

    def handle(self, message: object) -> None:
        if isinstance(message, RouteWork):
            self.transport.send(self.serve(message))
        elif isinstance(message, CostDiff):
            if self.payload.worker_id in message.crash_workers:
                # Chaos hook: die between broadcast receipt and ack — the
                # exact window the coordinator's ack barrier must survive.
                os._exit(23)
            self.apply_diff(message)
            self.transport.send(
                VersionAck(worker_id=self.payload.worker_id, version=self.version)
            )
        elif isinstance(message, Ping):
            self.transport.send(
                Pong(
                    worker_id=self.payload.worker_id,
                    sequence=message.sequence,
                    cost_version=self.version,
                )
            )
        elif isinstance(message, ResyncRequired):
            self.resync()
            self.transport.send(
                VersionAck(worker_id=self.payload.worker_id, version=self.version)
            )
        elif isinstance(message, Shutdown):
            if self.payload.ignore_shutdown:
                # Chaos hook: model a wedged worker that never honours the
                # orderly stop — the pool's close deadline must terminate it.
                return
            self._running = False

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def serve(self, work: RouteWork) -> RouteResults:
        if work.crash_at is not None:
            # Chaos hook: die the way a segfaulting worker would — no
            # goodbye message, no cleanup, mid-batch.
            os._exit(23)
        started = time.perf_counter()
        answers: list[RouteAnswer] = []
        engine = work.engine or self.payload.default_engine
        default_feature = self._engine_features.get(engine)
        if default_feature is None:
            for request, position in zip(work.requests, work.positions):
                answers.append(
                    RouteAnswer(
                        position=position,
                        vertices=None,
                        engine=engine,
                        error=f"ConfigurationError: no engine named {engine!r} "
                        f"on shard workers (have: {sorted(self._engine_features)})",
                    )
                )
            return RouteResults(
                task_id=work.task_id, worker_id=self.payload.worker_id, answers=tuple(answers)
            )

        groups: dict[CostFeature, list[int]] = {}
        for index, request in enumerate(work.requests):
            feature = request.cost_override or default_feature
            groups.setdefault(feature, []).append(index)
        slots: list[RouteAnswer | None] = [None] * len(work.requests)
        for feature, members in groups.items():
            self._serve_group(work, engine, feature, members, slots)
        elapsed = time.perf_counter() - started
        per_request = elapsed / max(1, len(work.requests))
        finished = tuple(
            replace(answer, latency_s=per_request)
            for answer in slots
            if answer is not None
        )
        return RouteResults(
            task_id=work.task_id, worker_id=self.payload.worker_id, answers=finished
        )

    def _serve_group(
        self,
        work: RouteWork,
        engine: str,
        feature: CostFeature,
        members: list[int],
        slots: list[RouteAnswer | None],
    ) -> None:
        assert self.router is not None
        plan = self.payload.plan
        pending: list[int] = []
        for index in members:
            request = work.requests[index]
            position = work.positions[index]
            if plan.shard_of(request.source) is None or plan.shard_of(request.destination) is None:
                missing = (
                    request.source
                    if plan.shard_of(request.source) is None
                    else request.destination
                )
                slots[index] = RouteAnswer(
                    position=position,
                    vertices=None,
                    engine=engine,
                    error=f"VertexNotFoundError: vertex {missing!r} is not in the network",
                )
                continue
            cached = self._answers.get((feature, request.source, request.destination))
            if cached is not None:
                vertices, cross_shard = cached
                slots[index] = self._answer(position, engine, feature, vertices, cross_shard, True)
                continue
            pending.append(index)
        if not pending:
            return

        pairs = [
            (work.requests[index].source, work.requests[index].destination)
            for index in pending
        ]
        routed = self.router.route_pairs(pairs, feature)
        if routed is None:
            # Compiled machinery unavailable: serve exactly, one reference
            # search per pair on the full network.
            routed = []
            cost = cost_function(feature)
            for source, destination in pairs:
                try:
                    routed.append((tuple(dijkstra(self.network, source, destination, cost)), False))
                except ReproError:
                    routed.append((None, False))
        for index, (vertices, cross_shard) in zip(pending, routed):
            request = work.requests[index]
            self._remember(feature, request.source, request.destination, vertices, cross_shard)
            slots[index] = self._answer(
                work.positions[index], engine, feature, vertices, cross_shard, False
            )

    def _answer(
        self,
        position: int,
        engine: str,
        feature: CostFeature,
        vertices: tuple["VertexId", ...] | None,
        cross_shard: bool,
        cache_hit: bool,
    ) -> RouteAnswer:
        if vertices is None:
            return RouteAnswer(
                position=position,
                vertices=None,
                engine=engine,
                cross_shard=cross_shard,
                cache_hit=cache_hit,
                error="NoPathError: destination unreachable from source",
            )
        return RouteAnswer(
            position=position,
            vertices=vertices,
            engine=engine,
            cross_shard=cross_shard,
            cache_hit=cache_hit,
        )

    def _remember(
        self,
        feature: CostFeature,
        source: "VertexId",
        destination: "VertexId",
        vertices: tuple["VertexId", ...] | None,
        cross_shard: bool,
    ) -> None:
        capacity = self.payload.cache_size
        if capacity < 1:
            return
        self._answers[(feature, source, destination)] = (vertices, cross_shard)
        self._answers.move_to_end((feature, source, destination))
        while len(self._answers) > capacity:
            self._answers.popitem(last=False)

    # ------------------------------------------------------------------ #
    # Live traffic
    # ------------------------------------------------------------------ #
    def apply_diff(self, diff: CostDiff) -> None:
        """Apply one versioned broadcast (or resync on a version gap)."""
        assert self.overlay is not None
        if diff.version <= self.version:
            return
        if diff.base_version != self.version:
            self.resync()
            return
        changes = diff.as_updates()
        try:
            self.network.update_edge_costs(changes)
            self.overlay.apply(changes)
        except ReproError:
            # A diff that no longer applies cleanly (e.g. replayed against a
            # restarted worker) is superseded by the segment's state.
            self.resync()
            return
        self.version = diff.version
        self._answers.clear()

    def resync(self) -> None:
        """Adopt the shared segment's cost state wholesale."""
        assert self.view is not None and self.overlay is not None
        changed = resync_network(self.network, self.view)
        if changed:
            updates: dict[tuple["VertexId", "VertexId"], dict[str, float]] = {}
            for key in changed:
                edge = self.network.edge(*key)
                updates[key] = {
                    FEATURE_EDGE_ATTRIBUTES[feature]: getattr(
                        edge, FEATURE_EDGE_ATTRIBUTES[feature]
                    )
                    for feature in ALL_COST_FEATURES
                }
            self.overlay.apply(updates)
        self.version = self.view.cost_version
        self._answers.clear()


def _worker_entry(payload: WorkerPayload, inbox: object, outbox: object) -> None:
    """Spawn target: boot, serve, always close the segment view.

    Module-level so the spawn pickle can import it; boot failures are
    reported as :class:`Fatal` so the pool does not hang on the handshake.
    """
    transport = QueueTransport(inbox=inbox, outbox=outbox)
    worker = ShardWorker(payload, transport)
    try:
        worker.boot()
    except BaseException as exc:  # noqa: BLE001 - reported, then re-raised
        transport.send(Fatal(worker_id=payload.worker_id, error=f"{type(exc).__name__}: {exc}"))
        raise
    try:
        worker.run()
    finally:
        worker.close()


def _tcp_worker_entry(payload: WorkerPayload, address: tuple[str, int]) -> None:
    """Spawn target for the TCP transport: dial the coordinator's hub.

    Identical lifecycle to :func:`_worker_entry`, plus reconnect
    re-identification: the transport's ``identify`` hook sends a fresh
    :class:`Hello` carrying the worker's *live* cost version as the first
    frame of every re-dialed connection, which is what lets the coordinator
    choose between a :class:`CostDiff` journal replay and a full resync.
    """
    from .transport import SocketTransport

    transport = SocketTransport(address)
    worker = ShardWorker(payload, transport)
    transport.identify = lambda: Hello(
        worker_id=payload.worker_id,
        shard_id=payload.shard_id,
        pid=os.getpid(),
        cost_version=worker.version,
    )
    try:
        worker.boot()
    except BaseException as exc:  # noqa: BLE001 - reported, then re-raised
        try:
            transport.send(Fatal(worker_id=payload.worker_id, error=f"{type(exc).__name__}: {exc}"))
        except (OSError, EOFError):
            pass  # the hub is gone too; exiting loudly is all that is left
        raise
    try:
        worker.run()
    finally:
        worker.close()
        transport.close()
