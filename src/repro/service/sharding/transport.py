"""TCP socket transport for the sharded serving protocol.

The same :class:`~repro.service.sharding.worker.ShardWorker` loop that runs
over ``multiprocessing`` queues runs unchanged over sockets: this module
supplies the two endpoints of that wire.

* :class:`SocketTransport` — the worker side.  Implements the
  :class:`~repro.service.sharding.protocol.Transport` protocol (``send`` /
  ``recv``) over one TCP connection to the coordinator, dialing lazily and
  *reconnecting* with :class:`~repro.service.resilience.RetryPolicy`
  seeded-jitter backoff when the link dies.  ``recv`` raises
  ``queue.Empty`` on a poll timeout — exactly like the queue transport —
  so the worker loop cannot tell the transports apart.  The first frame of
  every re-dialed connection is the ``identify`` message (a
  :class:`~repro.service.sharding.protocol.Hello` carrying the worker's
  current cost version), which is what lets the coordinator choose between
  a journal replay and a full segment resync.
* :class:`TcpHub` — the coordinator side.  One listening socket, a
  background accept thread, and one reader thread per live connection;
  every inbound message lands in a single bounded-wait queue the pool
  drains, and outbound sends go straight to the owning connection under a
  per-connection lock.  A newer connection from the same worker id
  displaces the older one (reconnects win), and :meth:`TcpHub.
  drop_connection` severs a link deliberately — the chaos hook the
  partition tests are built on.

Framing is length-prefixed pickle (see :mod:`~repro.service.sharding.
protocol` for the byte layout); every socket operation — ``accept``,
``recv``, ``sendall``, the dial — carries an explicit timeout, enforced by
reprolint RL010, so no peer can wedge a coordinator or worker forever.
"""

from __future__ import annotations

import pickle
import queue
import socket
import struct
import threading
import time
from typing import Callable

from ...exceptions import ShardingError
from ..resilience import RetryPolicy

#: Frame length prefix: 4 bytes, big-endian, unsigned.
_LENGTH_STRUCT = struct.Struct(">I")

#: Hard cap on one frame's payload. A corrupt length prefix (or a hostile
#: peer) must not make the reader allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: How long one worker-side ``recv`` poll blocks by default (mirrors the
#: queue transport's default).
_DEFAULT_POLL_TIMEOUT_S = 1.0

#: Socket timeout for whole-frame writes and for the mid-frame chunks of a
#: read that already consumed its length prefix (a peer that stops mid-frame
#: is broken, not slow).
_IO_TIMEOUT_S = 10.0


class FrameError(ShardingError):
    """A malformed frame: oversized length prefix or truncated payload."""


# ---------------------------------------------------------------------- #
# Frame codec
# ---------------------------------------------------------------------- #
def encode_frame(message: object) -> bytes:
    """One wire frame: 4-byte big-endian length + pickled message."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame cap"
        )
    return _LENGTH_STRUCT.pack(len(payload)) + payload


def send_frame(sock: socket.socket, message: object, timeout_s: float = _IO_TIMEOUT_S) -> None:
    """Write one frame under an explicit timeout (``sendall`` semantics)."""
    sock.settimeout(timeout_s)
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, count: int, deadline: float) -> bytes:
    """Read exactly ``count`` bytes before ``deadline`` (monotonic).

    Raises ``socket.timeout`` when the deadline passes, ``EOFError`` when
    the peer closes mid-read.  Every chunk read re-arms the socket timeout
    from the remaining budget, so a trickling peer cannot stretch one frame
    past the deadline.
    """
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        budget = deadline - time.monotonic()
        if budget <= 0:
            raise socket.timeout("frame read deadline passed")
        sock.settimeout(budget)
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise EOFError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, timeout_s: float) -> object:
    """Read and unpickle one frame.

    ``socket.timeout`` means "no frame started within ``timeout_s``" (the
    caller's poll loop continues); once a length prefix arrives the rest of
    the frame must follow within :data:`_IO_TIMEOUT_S`.  ``EOFError`` means
    the peer closed the connection.
    """
    deadline = time.monotonic() + timeout_s
    try:
        header = _recv_exact(sock, _LENGTH_STRUCT.size, deadline)
    except socket.timeout:
        raise
    (length,) = _LENGTH_STRUCT.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame announces {length} bytes, above the {MAX_FRAME_BYTES}-byte cap"
        )
    payload = _recv_exact(sock, length, time.monotonic() + _IO_TIMEOUT_S)
    return pickle.loads(payload)


# ---------------------------------------------------------------------- #
# Worker side: SocketTransport
# ---------------------------------------------------------------------- #
class SocketTransport:
    """The worker end of the wire: one auto-reconnecting TCP connection.

    Satisfies the :class:`~repro.service.sharding.protocol.Transport`
    protocol.  ``recv`` converts poll timeouts to ``queue.Empty`` (the
    worker loop's contract) and treats a dead link as "no message yet":
    it redials with the retry policy's seeded backoff and keeps polling.
    Only when the whole reconnect budget is exhausted does it raise
    ``EOFError`` — the worker loop exits, the process dies, and the pool's
    respawn path takes over with a full boot.
    """

    def __init__(
        self,
        address: tuple[str, int],
        *,
        retry: RetryPolicy | None = None,
        connect_timeout_s: float = 5.0,
        io_timeout_s: float = _IO_TIMEOUT_S,
        identify: Callable[[], object] | None = None,
    ) -> None:
        self.address = address
        self.retry = retry or RetryPolicy(
            max_retries=8, base_delay_s=0.01, multiplier=2.0, jitter=0.5
        )
        self.connect_timeout_s = connect_timeout_s
        self.io_timeout_s = io_timeout_s
        self.identify = identify
        """Zero-arg factory for the re-identification message sent as the
        first frame of every connection (set by the worker entry to a
        :class:`~repro.service.sharding.protocol.Hello` closure over the
        worker's live cost version)."""
        self._sock: socket.socket | None = None
        self._connects = 0

    # -- connection management ----------------------------------------- #
    @property
    def connects(self) -> int:
        """Successful dials so far (1 = never reconnected)."""
        return self._connects

    def _dial_once(self) -> socket.socket:
        sock = socket.create_connection(self.address, timeout=self.connect_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _connect(self) -> socket.socket:
        """Dial with seeded-backoff retries; raises ``OSError`` when the
        whole retry budget is spent."""
        attempt = 0
        while True:
            try:
                sock = self._dial_once()
                break
            except OSError:
                delay = self.retry.delay(attempt)
                if delay is None:
                    raise
                attempt += 1
                time.sleep(delay)
        self._connects += 1
        self._sock = sock
        # Re-identification happens on reconnects only: on the very first
        # connection the worker's own first frame (its boot Hello, or a
        # Fatal for a worker dying at boot) is the identify frame, and
        # injecting a transport-level Hello ahead of a Fatal would make the
        # pool mark a dead worker as booted.
        if self._connects > 1 and self.identify is not None:
            try:
                send_frame(sock, self.identify(), timeout_s=self.io_timeout_s)
            except OSError:
                self._drop()
                raise
        return sock

    def _ensure_connected(self) -> socket.socket:
        if self._sock is None:
            return self._connect()
        return self._sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass  # already torn down by the peer; nothing left to close
            self._sock = None

    def close(self) -> None:
        self._drop()

    # -- Transport protocol -------------------------------------------- #
    def send(self, message: object) -> None:
        """Deliver one message, reconnecting once on a dead link.

        The re-dialed connection's identify frame precedes the payload, so
        the coordinator re-learns the worker before the (possibly resent)
        message arrives.  A second consecutive failure propagates — the
        worker loop treats it as transport teardown.
        """
        try:
            send_frame(self._ensure_connected(), message, timeout_s=self.io_timeout_s)
        except (OSError, EOFError):
            self._drop()
            send_frame(self._connect(), message, timeout_s=self.io_timeout_s)

    def recv(self, timeout_s: float | None = None) -> object:
        wait = _DEFAULT_POLL_TIMEOUT_S if timeout_s is None else timeout_s
        try:
            sock = self._ensure_connected()
        except OSError as exc:
            raise EOFError(f"reconnect budget exhausted dialing {self.address}") from exc
        try:
            return recv_frame(sock, timeout_s=wait)
        except socket.timeout:
            raise queue.Empty() from None
        except (OSError, EOFError):
            # Dead link: redial (bounded by the retry policy) and report
            # "nothing yet" — whatever was in flight is the coordinator's
            # problem (it resubmits work to reconnected/respawned workers).
            # The pause keeps a worker whose connections keep dying at birth
            # (a coordinator-side partition) from busy-spinning the dial.
            self._drop()
            time.sleep(self.retry.base_delay_s)
            try:
                self._connect()
            except OSError as exc:
                raise EOFError(
                    f"reconnect budget exhausted dialing {self.address}"
                ) from exc
            raise queue.Empty() from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "connected" if self._sock is not None else "disconnected"
        return f"SocketTransport({self.address}, {state}, connects={self._connects})"


# ---------------------------------------------------------------------- #
# Coordinator side: TcpHub
# ---------------------------------------------------------------------- #
class _Connection:
    """One live worker link: socket, send lock, and its reader thread."""

    __slots__ = ("sock", "lock", "thread", "closed")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.lock = threading.Lock()
        self.thread: threading.Thread | None = None
        self.closed = False

    def close(self) -> None:
        self.closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # peer already gone; close below still releases the fd
        try:
            self.sock.close()
        except OSError:
            pass  # double-close race with the reader thread is harmless


class TcpHub:
    """The coordinator's socket endpoint: accept, route, collect.

    Connections self-identify: the first frame a worker sends on any
    connection carries its ``worker_id`` (a ``Hello``, or a ``Fatal`` for a
    worker dying at boot), and the hub binds the connection to that id —
    displacing any previous connection, so reconnects always win.  Every
    inbound message (the identify frame included) lands in one queue that
    :meth:`recv` drains with a bounded wait; outbound :meth:`send` /
    :meth:`broadcast` are best-effort — a send onto a dead link marks the
    connection gone and returns ``False`` rather than raising, because the
    liveness/journal machinery (not the sender) owns recovery.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        accept_timeout_s: float = 0.2,
        io_timeout_s: float = _IO_TIMEOUT_S,
        handshake_timeout_s: float = 120.0,
    ) -> None:
        self.io_timeout_s = io_timeout_s
        self.accept_timeout_s = accept_timeout_s
        self.handshake_timeout_s = handshake_timeout_s
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._inbound: queue.Queue[object] = queue.Queue()
        self._connections: dict[int, _Connection] = {}
        self._partitioned: set[int] = set()
        self._registry_lock = threading.Lock()
        self._closing = False
        self._drops = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="tcp-hub-accept", daemon=True
        )
        self._accept_thread.start()

    # -- background threads -------------------------------------------- #
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                self._listener.settimeout(self.accept_timeout_s)
                conn_sock, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed underneath us: shutting down
            conn_sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _Connection(conn_sock)
            reader = threading.Thread(
                target=self._reader_loop,
                args=(connection,),
                name="tcp-hub-reader",
                daemon=True,
            )
            connection.thread = reader
            reader.start()

    def _reader_loop(self, connection: _Connection) -> None:
        worker_id: int | None = None
        try:
            first = recv_frame(connection.sock, timeout_s=self.handshake_timeout_s)
            worker_id = getattr(first, "worker_id", None)
            if not isinstance(worker_id, int):
                raise FrameError(
                    f"first frame {type(first).__name__} carries no worker_id"
                )
            with self._registry_lock:
                blackholed = worker_id in self._partitioned
            if blackholed:
                # An active partition: refuse the connection (the worker
                # keeps redialing with backoff until the partition heals).
                connection.close()
                return
            self._register(worker_id, connection)
            self._inbound.put(first)
            while not connection.closed and not self._closing:
                try:
                    message = recv_frame(connection.sock, timeout_s=self.accept_timeout_s)
                except socket.timeout:
                    continue
                self._inbound.put(message)
        except (OSError, EOFError, FrameError, pickle.UnpicklingError):
            pass  # dead/garbled link: unregister below, liveness heals it
        finally:
            if worker_id is not None:
                self._unregister(worker_id, connection)
            connection.close()

    def _register(self, worker_id: int, connection: _Connection) -> None:
        with self._registry_lock:
            previous = self._connections.get(worker_id)
            self._connections[worker_id] = connection
        if previous is not None and previous is not connection:
            previous.close()

    def _unregister(self, worker_id: int, connection: _Connection) -> None:
        with self._registry_lock:
            if self._connections.get(worker_id) is connection:
                del self._connections[worker_id]

    # -- coordinator API ------------------------------------------------ #
    @property
    def drops(self) -> int:
        """Connections severed via :meth:`drop_connection` (chaos hook)."""
        return self._drops

    def connected(self, worker_id: int) -> bool:
        with self._registry_lock:
            connection = self._connections.get(worker_id)
        return connection is not None and not connection.closed

    def connected_workers(self) -> list[int]:
        with self._registry_lock:
            return sorted(
                worker_id
                for worker_id, connection in self._connections.items()
                if not connection.closed
            )

    def send(self, worker_id: int, message: object) -> bool:
        """Best-effort delivery; ``False`` when no live link took it."""
        with self._registry_lock:
            connection = self._connections.get(worker_id)
        if connection is None or connection.closed:
            return False
        try:
            with connection.lock:
                send_frame(connection.sock, message, timeout_s=self.io_timeout_s)
            return True
        except (OSError, FrameError):
            self._unregister(worker_id, connection)
            connection.close()
            return False

    def broadcast(self, message: object) -> int:
        """Send to every connected worker; returns the delivered count."""
        delivered = 0
        for worker_id in self.connected_workers():
            if self.send(worker_id, message):
                delivered += 1
        return delivered

    def recv(self, timeout_s: float = 1.0) -> object:
        """The next worker-to-coordinator message (``queue.Empty`` on
        timeout — callers own the retry loop, like the queue pool)."""
        return self._inbound.get(timeout=timeout_s)

    def partition_worker(self, worker_id: int) -> bool:
        """Chaos hook: black-hole the worker until :meth:`heal_worker`.

        Its current link is severed and every re-dial is refused at the
        handshake, so — unlike a bare :meth:`drop_connection`, which the
        worker heals in milliseconds — the worker *deterministically* stays
        unreachable across whatever the test does next (e.g. a traffic
        broadcast it must later catch up on via journal replay).  Returns
        whether a live link existed when the partition opened.
        """
        with self._registry_lock:
            self._partitioned.add(worker_id)
        return self.drop_connection(worker_id)

    def heal_worker(self, worker_id: int) -> None:
        """Close the partition; the worker's next dial registers normally."""
        with self._registry_lock:
            self._partitioned.discard(worker_id)

    def drop_connection(self, worker_id: int) -> bool:
        """Chaos hook: sever the worker's link (it reconnects on its own).

        Returns whether a live connection existed.  The worker process is
        untouched — this is a network fault, not a crash — so the next
        frames it sends redial and re-identify, which is exactly the
        journal-replay path the partition tests exercise.
        """
        with self._registry_lock:
            connection = self._connections.pop(worker_id, None)
        if connection is None:
            return False
        connection.close()
        self._drops += 1
        return True

    def close(self) -> None:
        """Stop accepting, sever every link, release the port.  Idempotent."""
        if self._closing:
            return
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass  # already closed; the accept loop exits either way
        self._accept_thread.join(timeout=5.0)
        with self._registry_lock:
            connections = list(self._connections.values())
            self._connections.clear()
        for connection in connections:
            connection.close()

    def __enter__(self) -> "TcpHub":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TcpHub({self.address}, connected={self.connected_workers()})"
