"""The spawn-based worker pool behind a :class:`ShardedRoutingService`.

One process per worker, each booted from a :class:`WorkerPayload` pickled
exactly once; all later coordination flows over ``multiprocessing`` queues
(a private inbox per worker, one shared outbox back to the coordinator).
``spawn`` — not ``fork`` — so workers never inherit the coordinator's
thread/lock state and behave identically on every platform.

The pool is deliberately dumb about routing: it moves protocol messages,
tracks liveness, and restarts dead workers (a restarted worker re-runs the
full boot protocol, so it resyncs cost state from the shared segment rather
than trusting anything in this process).  Request semantics — resubmission,
response assembly, version barriers — live in the service facade.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
from typing import TYPE_CHECKING, Sequence

from ...exceptions import ShardingError
from .protocol import Fatal, Hello, Shutdown
from .worker import _worker_entry

if TYPE_CHECKING:  # pragma: no cover
    from .protocol import WorkerPayload

#: Grace given to one orderly worker exit before escalating to terminate().
_JOIN_TIMEOUT_S = 5.0


class ShardWorkerPool:
    """Lifecycle and transport for a set of shard worker processes."""

    def __init__(
        self,
        payloads: Sequence["WorkerPayload"],
        *,
        boot_timeout_s: float = 120.0,
    ) -> None:
        if not payloads:
            raise ShardingError("a worker pool needs at least one worker payload")
        self._payloads = list(payloads)
        self._boot_timeout_s = boot_timeout_s
        self._ctx = multiprocessing.get_context("spawn")
        self._outbox = self._ctx.Queue()
        self._inboxes = [self._ctx.Queue() for _ in self._payloads]
        self._processes: list[multiprocessing.process.BaseProcess | None] = [
            None for _ in self._payloads
        ]
        self._stash: list[object] = []
        self._restarts = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return len(self._payloads)

    @property
    def restarts(self) -> int:
        """Workers respawned after dying (crash chaos, OOM kills...)."""
        return self._restarts

    def start(self) -> None:
        """Spawn every worker and wait out the boot handshakes."""
        if self._started:
            return
        self._started = True
        for worker_id in range(self.size):
            self._spawn(worker_id)
        self._await_hello(set(range(self.size)))

    def _spawn(self, worker_id: int) -> None:
        process = self._ctx.Process(
            target=_worker_entry,
            args=(self._payloads[worker_id], self._inboxes[worker_id], self._outbox),
            name=f"shard-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        self._processes[worker_id] = process

    def _await_hello(self, expected: set[int]) -> None:
        """Collect boot handshakes; stash unrelated traffic for recv()."""
        deadline = time.monotonic() + self._boot_timeout_s
        waiting = set(expected)
        while waiting:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ShardingError(
                    f"workers {sorted(waiting)} did not finish booting within "
                    f"{self._boot_timeout_s:.0f}s"
                )
            try:
                message = self._outbox.get(timeout=min(0.5, remaining))
            except queue.Empty:
                dead = [w for w in waiting if not self._is_alive(w)]
                if dead:
                    raise ShardingError(
                        f"workers {dead} died during boot without a report"
                    ) from None
                continue
            if isinstance(message, Fatal) and message.worker_id in waiting:
                raise ShardingError(
                    f"worker {message.worker_id} failed to boot: {message.error}"
                )
            if isinstance(message, Hello) and message.worker_id in waiting:
                waiting.discard(message.worker_id)
            else:
                self._stash.append(message)

    def _is_alive(self, worker_id: int) -> bool:
        process = self._processes[worker_id]
        return process is not None and process.is_alive()

    def alive(self) -> list[bool]:
        return [self._is_alive(worker_id) for worker_id in range(self.size)]

    def restart_dead(self) -> list[int]:
        """Respawn every dead worker; returns the restarted ids.

        The respawned process re-runs the whole boot protocol (attach,
        topology check, segment resync), so whatever state died with its
        predecessor is rebuilt from the authoritative shared segment.
        """
        if self._closed:
            raise ShardingError("worker pool is closed")
        dead: list[int] = []
        for worker_id in range(self.size):
            if not self._is_alive(worker_id):
                process = self._processes[worker_id]
                if process is not None:
                    process.join(timeout=_JOIN_TIMEOUT_S)
                self._spawn(worker_id)
                dead.append(worker_id)
        if dead:
            self._restarts += len(dead)
            self._await_hello(set(dead))
        return dead

    def close(self, timeout_s: float = _JOIN_TIMEOUT_S) -> bool:
        """Orderly shutdown; idempotent; returns False on terminate().

        Shutdown is broadcast to every inbox, workers get ``timeout_s`` to
        drain and exit (closing their segment views on the way out), and
        stragglers are terminated.  Queue feeder threads are cancelled so a
        half-full queue can never hang interpreter exit.
        """
        if self._closed:
            return True
        self._closed = True
        clean = True
        for worker_id in range(self.size):
            if self._is_alive(worker_id):
                try:
                    self._inboxes[worker_id].put(Shutdown())
                except (ValueError, OSError):
                    clean = False
        deadline = time.monotonic() + timeout_s
        for worker_id, process in enumerate(self._processes):
            if process is None:
                continue
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                clean = False
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT_S)
        for q in [self._outbox, *self._inboxes]:
            q.cancel_join_thread()
            q.close()
        return clean

    def __enter__(self) -> "ShardWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def submit(self, worker_id: int, message: object) -> None:
        """Enqueue one message for one worker."""
        if self._closed:
            raise ShardingError("worker pool is closed")
        self._inboxes[worker_id].put(message)

    def broadcast(self, message: object) -> int:
        """Enqueue one message for every worker; returns the copy count."""
        if self._closed:
            raise ShardingError("worker pool is closed")
        for inbox in self._inboxes:
            inbox.put(message)
        return self.size

    def recv(self, timeout_s: float = 1.0) -> object:
        """The next worker-to-coordinator message (stashed first).

        Raises ``queue.Empty`` on timeout — callers own the retry loop and
        its liveness checks.
        """
        if self._stash:
            return self._stash.pop(0)
        return self._outbox.get(timeout=timeout_s)
