"""The spawn-based worker pool behind a :class:`ShardedRoutingService`.

One process per worker, each booted from a :class:`WorkerPayload` pickled
exactly once; all later coordination flows over one of two transports —
``multiprocessing`` queues (a private inbox per worker, one shared outbox
back to the coordinator) or TCP sockets through a :class:`~repro.service.
sharding.transport.TcpHub` (``transport="tcp"``, the multi-node wire run
here over loopback).  ``spawn`` — not ``fork`` — so workers never inherit
the coordinator's thread/lock state and behave identically on every
platform.

The pool is deliberately dumb about routing: it moves protocol messages,
tracks liveness (process handles *and*, over TCP, link state), and restarts
dead workers (a restarted worker re-runs the full boot protocol, so it
resyncs cost state from the shared segment rather than trusting anything in
this process).  Request semantics — resubmission, response assembly,
version barriers, failover — live in the service facade.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
from typing import TYPE_CHECKING, Sequence

from ...exceptions import ShardingError
from .protocol import Fatal, Hello, Shutdown
from .transport import TcpHub
from .worker import _tcp_worker_entry, _worker_entry

if TYPE_CHECKING:  # pragma: no cover
    from .protocol import WorkerPayload

#: Grace given to one orderly worker exit before escalating to terminate().
_JOIN_TIMEOUT_S = 5.0


class ShardWorkerPool:
    """Lifecycle and transport for a set of shard worker processes."""

    def __init__(
        self,
        payloads: Sequence["WorkerPayload"],
        *,
        boot_timeout_s: float = 120.0,
        transport: str = "queue",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if not payloads:
            raise ShardingError("a worker pool needs at least one worker payload")
        if transport not in ("queue", "tcp"):
            raise ShardingError(
                f"unknown pool transport {transport!r} (expected 'queue' or 'tcp')"
            )
        self._payloads = list(payloads)
        self._boot_timeout_s = boot_timeout_s
        self.transport = transport
        self._ctx = multiprocessing.get_context("spawn")
        self._hub: TcpHub | None = None
        self._outbox = None
        self._inboxes: list[object] = []
        if transport == "tcp":
            self._hub = TcpHub(host, port, handshake_timeout_s=boot_timeout_s)
        else:
            self._outbox = self._ctx.Queue()
            self._inboxes = [self._ctx.Queue() for _ in self._payloads]
        self._processes: list[multiprocessing.process.BaseProcess | None] = [
            None for _ in self._payloads
        ]
        self._stash: list[object] = []
        self._restarts = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return len(self._payloads)

    @property
    def restarts(self) -> int:
        """Workers respawned after dying (crash chaos, OOM kills...)."""
        return self._restarts

    def start(self) -> None:
        """Spawn every worker and wait out the boot handshakes."""
        if self._started:
            return
        self._started = True
        for worker_id in range(self.size):
            self._spawn(worker_id)
        self._await_hello(set(range(self.size)))

    def _spawn(self, worker_id: int) -> None:
        if self._hub is not None:
            target, args = _tcp_worker_entry, (self._payloads[worker_id], self._hub.address)
        else:
            target, args = _worker_entry, (
                self._payloads[worker_id],
                self._inboxes[worker_id],
                self._outbox,
            )
        process = self._ctx.Process(
            target=target,
            args=args,
            name=f"shard-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        self._processes[worker_id] = process

    def _poll(self, timeout_s: float) -> object:
        """One raw transport read (``queue.Empty`` on timeout)."""
        if self._hub is not None:
            return self._hub.recv(timeout_s=timeout_s)
        return self._outbox.get(timeout=timeout_s)  # type: ignore[union-attr]

    def _await_hello(self, expected: set[int]) -> None:
        """Collect boot handshakes; stash unrelated traffic for recv()."""
        deadline = time.monotonic() + self._boot_timeout_s
        waiting = set(expected)
        while waiting:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ShardingError(
                    f"workers {sorted(waiting)} did not finish booting within "
                    f"{self._boot_timeout_s:.0f}s"
                )
            try:
                message = self._poll(min(0.5, remaining))
            except queue.Empty:
                dead = [w for w in waiting if not self._is_alive(w)]
                if dead:
                    raise ShardingError(
                        f"workers {dead} died during boot without a report"
                    ) from None
                continue
            if isinstance(message, Fatal) and message.worker_id in waiting:
                raise ShardingError(
                    f"worker {message.worker_id} failed to boot: {message.error}"
                )
            if isinstance(message, Hello) and message.worker_id in waiting:
                waiting.discard(message.worker_id)
            else:
                self._stash.append(message)

    def _is_alive(self, worker_id: int) -> bool:
        process = self._processes[worker_id]
        return process is not None and process.is_alive()

    def alive(self) -> list[bool]:
        return [self._is_alive(worker_id) for worker_id in range(self.size)]

    def connected(self, worker_id: int) -> bool:
        """Whether the worker has a live transport link.

        Over queues a link cannot die separately from the process, so this
        is process liveness; over TCP it is the hub's connection registry —
        a partitioned worker is alive but *not* connected.
        """
        if self._hub is not None:
            return self._hub.connected(worker_id)
        return self._is_alive(worker_id)

    def healthy(self, worker_id: int) -> bool:
        """Alive *and* reachable — the failover predicate."""
        return self._is_alive(worker_id) and self.connected(worker_id)

    def drop_connection(self, worker_id: int) -> bool:
        """Chaos hook (TCP only): sever the worker's link without touching
        the process.  Returns ``False`` over queues or for absent links."""
        if self._hub is None:
            return False
        return self._hub.drop_connection(worker_id)

    def partition_worker(self, worker_id: int) -> bool:
        """Chaos hook (TCP only): black-hole the worker — link severed and
        re-dials refused — until :meth:`heal_worker`."""
        if self._hub is None:
            return False
        return self._hub.partition_worker(worker_id)

    def heal_worker(self, worker_id: int) -> None:
        """Close a :meth:`partition_worker` partition (TCP only)."""
        if self._hub is not None:
            self._hub.heal_worker(worker_id)

    def restart_dead(self) -> list[int]:
        """Respawn every dead worker; returns the restarted ids.

        The respawned process re-runs the whole boot protocol (attach,
        topology check, segment resync), so whatever state died with its
        predecessor is rebuilt from the authoritative shared segment.
        """
        if self._closed:
            raise ShardingError("worker pool is closed")
        dead: list[int] = []
        for worker_id in range(self.size):
            if not self._is_alive(worker_id):
                process = self._processes[worker_id]
                if process is not None:
                    process.join(timeout=_JOIN_TIMEOUT_S)
                self._spawn(worker_id)
                dead.append(worker_id)
        if dead:
            self._restarts += len(dead)
            self._await_hello(set(dead))
        return dead

    def close(self, timeout_s: float = _JOIN_TIMEOUT_S) -> bool:
        """Orderly shutdown; idempotent; returns False on terminate().

        Shutdown is broadcast to every inbox, workers get ``timeout_s`` to
        drain and exit (closing their segment views on the way out), and
        stragglers are terminated.  Queue feeder threads are cancelled so a
        half-full queue can never hang interpreter exit.
        """
        if self._closed:
            return True
        self._closed = True
        clean = True
        if self._hub is not None:
            delivered = self._hub.broadcast(Shutdown())
            if delivered < sum(self.alive()):
                clean = False  # someone alive had no link to hear the stop
        else:
            for worker_id in range(self.size):
                if self._is_alive(worker_id):
                    try:
                        self._inboxes[worker_id].put(Shutdown())  # type: ignore[attr-defined]
                    except (ValueError, OSError):
                        clean = False
        deadline = time.monotonic() + timeout_s
        for worker_id, process in enumerate(self._processes):
            if process is None:
                continue
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                clean = False
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT_S)
        if self._hub is not None:
            self._hub.close()
        for q in [self._outbox, *self._inboxes]:
            if q is None:
                continue
            q.cancel_join_thread()  # type: ignore[attr-defined]
            q.close()  # type: ignore[attr-defined]
        return clean

    def __enter__(self) -> "ShardWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def submit(self, worker_id: int, message: object) -> bool:
        """Deliver one message to one worker's transport.

        Returns whether the transport took it: always ``True`` over queues
        (delivery to a dead process just parks the message), ``False`` over
        TCP when the worker has no live link — the caller's liveness and
        failover machinery owns what happens next.
        """
        if self._closed:
            raise ShardingError("worker pool is closed")
        if self._hub is not None:
            return self._hub.send(worker_id, message)
        self._inboxes[worker_id].put(message)  # type: ignore[attr-defined]
        return True

    def broadcast(self, message: object) -> int:
        """Deliver one message to every reachable worker; returns the count."""
        if self._closed:
            raise ShardingError("worker pool is closed")
        if self._hub is not None:
            return self._hub.broadcast(message)
        for inbox in self._inboxes:
            inbox.put(message)  # type: ignore[attr-defined]
        return self.size

    def recv(self, timeout_s: float = 1.0) -> object:
        """The next worker-to-coordinator message (stashed first).

        Raises ``queue.Empty`` on timeout — callers own the retry loop and
        its liveness checks.
        """
        if self._stash:
            return self._stash.pop(0)
        return self._poll(timeout_s)
