"""Sharded multi-process serving over a shared-memory compiled graph.

The subsystem splits into independently testable layers:

* :mod:`~repro.service.sharding.plan` — partitioning the network into
  shards (regions clustering, boundary structure);
* :mod:`~repro.service.sharding.overlay` — the boundary overlay graph and
  exact cross-shard stitching;
* :mod:`~repro.service.sharding.protocol` — the transport-agnostic message
  dataclasses (and the TCP wire framing they travel in);
* :mod:`~repro.service.sharding.transport` — the TCP transport: the
  worker-side auto-reconnecting :class:`SocketTransport` and the
  coordinator-side :class:`TcpHub`;
* :mod:`~repro.service.sharding.replication` — replica liveness
  (:class:`HeartbeatMonitor`) and reconnect catch-up
  (:class:`CostDiffJournal`);
* :mod:`~repro.service.sharding.worker` / :mod:`~repro.service.sharding.
  pool` — the spawn-based worker loop and its process lifecycle;
* :mod:`~repro.service.sharding.service` — the
  :class:`ShardedRoutingService` facade keeping the ``RoutingService`` API,
  plus replica failover, hedged requests, and journal replay.
"""

from .overlay import BoundaryOverlay, CrossShardRouter
from .plan import ShardPlan, build_shard_plan
from .pool import ShardWorkerPool
from .protocol import (
    DEFAULT_ENGINES,
    CostDiff,
    Fatal,
    Hello,
    Ping,
    Pong,
    QueueTransport,
    ResyncRequired,
    RouteAnswer,
    RouteResults,
    RouteWork,
    Shutdown,
    VersionAck,
    WorkerPayload,
)
from .replication import CostDiffJournal, HeartbeatMonitor
from .service import ShardedRoutingService
from .transport import (
    MAX_FRAME_BYTES,
    FrameError,
    SocketTransport,
    TcpHub,
    encode_frame,
    recv_frame,
    send_frame,
)
from .worker import ShardWorker, resync_network

__all__ = [
    "BoundaryOverlay",
    "CostDiff",
    "CostDiffJournal",
    "CrossShardRouter",
    "DEFAULT_ENGINES",
    "Fatal",
    "FrameError",
    "Hello",
    "HeartbeatMonitor",
    "MAX_FRAME_BYTES",
    "Ping",
    "Pong",
    "QueueTransport",
    "ResyncRequired",
    "RouteAnswer",
    "RouteResults",
    "RouteWork",
    "ShardPlan",
    "ShardWorker",
    "ShardWorkerPool",
    "ShardedRoutingService",
    "Shutdown",
    "SocketTransport",
    "TcpHub",
    "VersionAck",
    "WorkerPayload",
    "build_shard_plan",
    "encode_frame",
    "recv_frame",
    "resync_network",
    "send_frame",
]
