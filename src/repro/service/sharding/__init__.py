"""Sharded multi-process serving over a shared-memory compiled graph.

The subsystem splits into independently testable layers:

* :mod:`~repro.service.sharding.plan` — partitioning the network into
  shards (regions clustering, boundary structure);
* :mod:`~repro.service.sharding.overlay` — the boundary overlay graph and
  exact cross-shard stitching;
* :mod:`~repro.service.sharding.protocol` — the transport-agnostic message
  dataclasses;
* :mod:`~repro.service.sharding.worker` / :mod:`~repro.service.sharding.
  pool` — the spawn-based worker loop and its process lifecycle;
* :mod:`~repro.service.sharding.service` — the
  :class:`ShardedRoutingService` facade keeping the ``RoutingService`` API.
"""

from .overlay import BoundaryOverlay, CrossShardRouter
from .plan import ShardPlan, build_shard_plan
from .pool import ShardWorkerPool
from .protocol import (
    DEFAULT_ENGINES,
    CostDiff,
    Fatal,
    Hello,
    QueueTransport,
    RouteAnswer,
    RouteResults,
    RouteWork,
    Shutdown,
    VersionAck,
    WorkerPayload,
)
from .service import ShardedRoutingService
from .worker import ShardWorker, resync_network

__all__ = [
    "BoundaryOverlay",
    "CostDiff",
    "CrossShardRouter",
    "DEFAULT_ENGINES",
    "Fatal",
    "Hello",
    "QueueTransport",
    "RouteAnswer",
    "RouteResults",
    "RouteWork",
    "ShardPlan",
    "ShardWorker",
    "ShardWorkerPool",
    "ShardedRoutingService",
    "Shutdown",
    "VersionAck",
    "WorkerPayload",
    "build_shard_plan",
    "resync_network",
]
