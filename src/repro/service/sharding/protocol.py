"""Transport-agnostic message protocol between coordinator and shard workers.

Every message crossing the process boundary is a small frozen dataclass, so
the same worker loop can sit behind any transport that moves pickled (or
otherwise serialized) records — ``multiprocessing`` queues in-host, TCP
sockets (:mod:`~repro.service.sharding.transport`) across nodes.  The
coordinator-to-worker direction carries :class:`RouteWork` batches,
versioned :class:`CostDiff` broadcasts, :class:`Ping` heartbeats,
:class:`ResyncRequired`, and :class:`Shutdown`; the worker-to-coordinator
direction carries :class:`Hello` (boot handshake *and* reconnect
re-identification), :class:`RouteResults`, :class:`Pong`, and
:class:`VersionAck` (broadcast-lag accounting).

Answers travel as compact :class:`RouteAnswer` records — vertex tuples, not
:class:`~repro.service.api.RouteResponse` objects — because the coordinator
already holds the originating requests and rebuilding the response there
keeps the wire payload (and pickling cost) proportional to the paths, not to
the request metadata.

Wire framing (TCP transport)
----------------------------

Over sockets every message is one *frame*::

    +----------------------------+----------------------------------+
    | length: 4 bytes big-endian | payload: pickle.dumps(message)   |
    +----------------------------+----------------------------------+

The length counts payload bytes only (the 4-byte prefix excluded) and is
capped at :data:`~repro.service.sharding.transport.MAX_FRAME_BYTES` so a
corrupt or hostile peer cannot make the reader allocate unbounded memory.
Frames are written with ``sendall`` and read with an exact-length loop;
every socket operation runs under an explicit timeout (reprolint RL010
enforces this), so a stalled peer surfaces as a timeout, never as a hung
coordinator or worker.  The first frame a worker sends on every connection
— initial dial *and* every reconnect — is a :class:`Hello` carrying its
current ``cost_version``; the coordinator uses it to route the connection
and to decide between a journal replay and a full segment resync.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from ...routing.costs import CostFeature

if TYPE_CHECKING:  # pragma: no cover
    from ...network.compiled.shm import SegmentSpec
    from ...network.road_network import RoadNetwork, VertexId
    from ..api import RouteRequest
    from .plan import ShardPlan

#: The default worker engine registry: name → the cost feature it optimizes.
DEFAULT_ENGINES: tuple[tuple[str, CostFeature], ...] = (
    ("Shortest", CostFeature.DISTANCE),
    ("Fastest", CostFeature.TRAVEL_TIME),
)


@dataclass(frozen=True)
class Hello:
    """Worker boot handshake — and reconnect re-identification.

    Sent once at boot over every transport, and again as the first frame of
    every re-dialed TCP connection.  ``cost_version`` tells the coordinator
    how far behind this worker is: a stale version triggers either a
    :class:`CostDiff` journal replay or a :class:`ResyncRequired` order.
    """

    worker_id: int
    shard_id: int
    pid: int
    cost_version: int
    """The segment cost version the worker booted (or reconnected) against."""


@dataclass(frozen=True)
class Fatal:
    """Worker boot or loop failure: the process is exiting."""

    worker_id: int
    error: str


@dataclass(frozen=True)
class RouteWork:
    """One batch of requests for a single worker, all from its shard."""

    task_id: int
    engine: str | None
    requests: tuple["RouteRequest", ...]
    positions: tuple[int, ...]
    """Caller-side slot of each request in the originating batch."""
    crash_at: int | None = None
    """Chaos-test hook: the worker hard-exits (``os._exit``) before
    answering the request at this index.  Stripped by the pool before any
    resubmission, so a restarted worker serves the batch normally."""


@dataclass(frozen=True)
class RouteAnswer:
    """One request's answer in wire form (the coordinator rebuilds the
    :class:`~repro.service.api.RouteResponse` around it)."""

    position: int
    vertices: tuple["VertexId", ...] | None
    engine: str
    latency_s: float = 0.0
    cross_shard: bool = False
    cache_hit: bool = False
    error: str | None = None


@dataclass(frozen=True)
class RouteResults:
    """A worker's answers for one :class:`RouteWork` batch."""

    task_id: int
    worker_id: int
    answers: tuple[RouteAnswer, ...]


@dataclass(frozen=True)
class CostDiff:
    """A versioned live-traffic broadcast: absolute post-update values.

    ``changes`` maps each touched edge key to its new per-feature values
    (absolute, not deltas — applying the same diff twice is idempotent,
    which is what makes worker restarts, queue replays, and journal replays
    safe).  A worker whose current version is not ``base_version`` missed a
    broadcast and resyncs from the shared segment instead of applying the
    diff.
    """

    version: int
    base_version: int
    changes: tuple[tuple[tuple["VertexId", "VertexId"], tuple[tuple[str, float], ...]], ...]
    crash_workers: tuple[int, ...] = ()
    """Chaos-test hook: the named workers hard-exit (``os._exit``) on
    receipt, *before* applying or acknowledging — the crash-between-
    broadcast-and-ack scenario the ack barrier must survive."""

    def as_updates(self) -> dict[tuple["VertexId", "VertexId"], dict[str, float]]:
        return {key: dict(values) for key, values in self.changes}


@dataclass(frozen=True)
class Ping:
    """Coordinator heartbeat probe; every live worker answers with
    :class:`Pong`.  ``sequence`` matches probes to answers so a late pong
    from a slow worker cannot satisfy a newer liveness deadline."""

    sequence: int


@dataclass(frozen=True)
class Pong:
    """A worker's heartbeat answer (liveness + broadcast-lag signal)."""

    worker_id: int
    sequence: int
    cost_version: int
    """The worker's current cost version — lets the coordinator spot a
    version-divergent worker even between traffic broadcasts."""


@dataclass(frozen=True)
class ResyncRequired:
    """Coordinator order: the journal cannot bridge this worker's version
    gap — adopt the shared segment wholesale and acknowledge its version."""

    version: int
    """The cost version the coordinator expects the resync to reach (the
    segment may already be newer; the worker acks whatever it adopted)."""


@dataclass(frozen=True)
class VersionAck:
    """A worker's confirmation that its caches reflect ``version``."""

    worker_id: int
    version: int


@dataclass(frozen=True)
class Shutdown:
    """Orderly stop: the worker closes its segment view and exits."""

    reason: str = "close"


@dataclass(frozen=True)
class WorkerPayload:
    """Everything one spawned worker needs to boot (ships over the spawn
    pickle exactly once; all later state flows through the transport)."""

    worker_id: int
    shard_id: int
    plan: "ShardPlan"
    network: "RoadNetwork"
    """The full network snapshot (cost state possibly stale: the worker
    resyncs against the shared segment before serving)."""
    spec: "SegmentSpec"
    engines: tuple[tuple[str, CostFeature], ...] = DEFAULT_ENGINES
    default_engine: str = "Shortest"
    cache_size: int = 512
    ignore_shutdown: bool = False
    """Chaos-test hook: the worker drops :class:`Shutdown` messages on the
    floor, modelling a wedged process the pool must ``terminate()`` within
    its close deadline."""


class Transport(Protocol):
    """The minimal duplex channel a worker loop is written against."""

    def send(self, message: object) -> None:  # pragma: no cover - protocol
        ...

    def recv(self, timeout_s: float | None = None) -> object:  # pragma: no cover
        ...


@dataclass
class QueueTransport:
    """The in-host transport: a pair of ``multiprocessing`` queues.

    ``inbox`` is this endpoint's receive side, ``outbox`` its send side; the
    coordinator and each worker hold mirrored pairs over the same two
    queues.  ``recv`` raises ``queue.Empty`` on timeout — always pass a
    timeout from the serving loops (reprolint RL008 enforces this).
    """

    inbox: object
    outbox: object
    default_timeout_s: float = field(default=1.0)

    def send(self, message: object) -> None:
        self.outbox.put(message)  # type: ignore[attr-defined]

    def recv(self, timeout_s: float | None = None) -> object:
        wait = self.default_timeout_s if timeout_s is None else timeout_s
        return self.inbox.get(timeout=wait)  # type: ignore[attr-defined]
