"""Replica liveness and catch-up machinery for the fault-tolerant coordinator.

Two independent pieces the :class:`~repro.service.sharding.service.
ShardedRoutingService` composes:

* :class:`HeartbeatMonitor` — Ping/Pong liveness accounting.  The
  coordinator stamps every inbound message (pongs, route results, acks —
  any traffic proves life) and records when it last probed each worker; a
  worker is *suspect* once a probe has gone unanswered past the timeout.
  Process-handle liveness (``pool.alive``) catches same-host crashes
  instantly; the heartbeat path is what catches the failures a process
  handle cannot see — a wedged loop, a severed TCP link, a partitioned
  node.  Clock-injectable so the chaos suite drives expiry
  deterministically.
* :class:`CostDiffJournal` — a bounded write-ahead journal of the versioned
  :class:`~repro.service.sharding.protocol.CostDiff` broadcasts.  A worker
  that reconnects (or respawns) behind the current cost version replays the
  contiguous chain of diffs from its last version instead of rescanning the
  whole shared segment; when the bounded journal has already evicted part
  of that chain, the coordinator falls back to ordering a full resync.
  Replays are safe to repeat: diffs carry absolute post-update values and
  workers ignore versions at or below their own.
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from typing import Protocol

    from .protocol import CostDiff

    class DurableTail(Protocol):
        """The disk half of the journal (see :class:`~repro.service.
        durability.manager.DurabilityManager`): mirrors every appended diff
        and serves the chains the bounded in-memory ring has evicted."""

        def log_costdiff(self, diff: "CostDiff") -> None: ...

        def costdiff_records(self) -> list["CostDiff"]: ...

Clock = Callable[[], float]


class HeartbeatMonitor:
    """Per-worker liveness from message timestamps and probe bookkeeping.

    The monitor never sends anything itself — the coordinator owns the
    transport.  It answers one question: *has this worker proven life since
    I last probed it?*  :meth:`suspects` lists workers whose newest probe
    is older than ``timeout_s`` and unanswered by any later message.
    """

    def __init__(self, worker_ids: Iterable[int], *, clock: Clock = time.monotonic) -> None:
        self._clock = clock
        now = clock()
        self._last_seen: dict[int, float] = {w: now for w in worker_ids}
        self._last_ping_at: dict[int, float] = {}
        self._sequence = 0
        self._pings_sent = 0
        self._timeouts = 0

    @property
    def pings_sent(self) -> int:
        return self._pings_sent

    @property
    def timeouts(self) -> int:
        """Times a worker crossed the unanswered-probe deadline (each
        crossing counts once; recovery re-arms the counter)."""
        return self._timeouts

    def next_sequence(self) -> int:
        """Reserve the sequence number for one outgoing probe round."""
        self._sequence += 1
        return self._sequence

    def note_ping(self, worker_id: int) -> None:
        """One probe went out to ``worker_id`` just now."""
        self._pings_sent += 1
        # Only arm a new deadline when no probe is already outstanding:
        # re-probing a silent worker must not keep pushing its deadline out.
        last_seen = self._last_seen.get(worker_id, 0.0)
        pending = self._last_ping_at.get(worker_id)
        if pending is None or pending < last_seen:
            self._last_ping_at[worker_id] = self._clock()

    def note_message(self, worker_id: int) -> None:
        """Any inbound message from the worker proves it alive."""
        if worker_id in self._last_seen or worker_id in self._last_ping_at:
            self._last_seen[worker_id] = self._clock()

    def add_worker(self, worker_id: int) -> None:
        self._last_seen.setdefault(worker_id, self._clock())

    def last_seen(self, worker_id: int) -> float:
        return self._last_seen.get(worker_id, 0.0)

    def is_suspect(self, worker_id: int, timeout_s: float) -> bool:
        """An unanswered probe older than ``timeout_s`` marks the worker."""
        pending = self._last_ping_at.get(worker_id)
        if pending is None or pending < self._last_seen.get(worker_id, 0.0):
            return False
        return self._clock() - pending >= timeout_s

    def suspects(self, timeout_s: float) -> list[int]:
        """Workers past their probe deadline (counts each fresh crossing)."""
        out = []
        for worker_id in sorted(self._last_seen):
            if self.is_suspect(worker_id, timeout_s):
                out.append(worker_id)
                # Re-arm: one timeout is counted per unanswered probe, and
                # the probe timestamp moves forward so the next suspects()
                # call reports the worker again only after a fresh deadline.
                self._timeouts += 1
                self._last_ping_at[worker_id] = self._clock()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeartbeatMonitor(workers={sorted(self._last_seen)}, "
            f"pings={self._pings_sent}, timeouts={self._timeouts})"
        )


class CostDiffJournal:
    """Bounded, contiguous write-ahead journal of ``CostDiff`` broadcasts.

    Diffs append in version order (each new diff's ``base_version`` must be
    the previous diff's ``version``; a gap — e.g. after coordinator-side
    truncation of the feed — clears the journal, because a broken chain can
    never be replayed).  :meth:`chain` answers the replay question: the
    list of diffs bridging ``from_version`` up to the journal head, or
    ``None`` when the bounded history no longer reaches back that far.
    """

    def __init__(
        self, capacity: int = 64, *, durability: "DurableTail | None" = None
    ) -> None:
        if capacity < 0:
            raise ValueError("journal capacity must be >= 0")
        self.capacity = capacity
        # max(1, ...) keeps the deque constructible at capacity 0; append()
        # simply never stores in that configuration.
        self._diffs: deque["CostDiff"] = deque(maxlen=max(1, capacity))
        self._durability = durability
        self._replays = 0
        self._resyncs = 0
        self._disk_chains = 0

    def __len__(self) -> int:
        return len(self._diffs)

    @property
    def replays(self) -> int:
        """Catch-ups served from the journal (delta replay, no segment scan)."""
        return self._replays

    @property
    def resyncs(self) -> int:
        """Catch-ups the journal could not serve (truncated chain -> full
        segment resync ordered instead)."""
        return self._resyncs

    @property
    def head_version(self) -> int | None:
        return self._diffs[-1].version if self._diffs else None

    @property
    def tail_base_version(self) -> int | None:
        """The oldest version the journal can still replay *from*."""
        return self._diffs[0].base_version if self._diffs else None

    @property
    def disk_chains(self) -> int:
        """Catch-ups the in-memory ring had evicted but the durable tail
        could still bridge (saved resyncs)."""
        return self._disk_chains

    def append(self, diff: "CostDiff") -> None:
        if self._durability is not None:
            # Mirror to disk first: a crash between the two appends then
            # leaves the durable tail *ahead* of the ring, which chain()
            # tolerates, rather than behind it, which it must never be.
            self._durability.log_costdiff(diff)
        if self.capacity == 0:
            return
        if self._diffs and diff.base_version != self._diffs[-1].version:
            # A discontinuity poisons every older entry: drop them all
            # rather than ever replaying across the gap.
            self._diffs.clear()
        self._diffs.append(diff)

    def clear(self) -> None:
        """Drop the in-memory ring (coordinator recovery rebuilt the world;
        pre-recovery chains must never bridge across it).  The durable tail
        is not touched — version anchors already guard its replay."""
        self._diffs.clear()

    def chain(self, from_version: int) -> list["CostDiff"] | None:
        """The contiguous diffs taking ``from_version`` to the head.

        ``[]`` when the worker is already current (or ahead); ``None`` when
        the journal's bounded history no longer covers the gap.  Callers
        count the outcome via :meth:`record_replay` / :meth:`record_resync`
        once they acted on it.
        """
        head = self.head_version
        if head is None:
            return self._disk_chain(from_version)  # ring empty: disk only
        if from_version >= head:
            return []
        tail = self.tail_base_version
        if tail is None or from_version < tail:
            return self._disk_chain(from_version)
        selected = [diff for diff in self._diffs if diff.base_version >= from_version]
        if not selected or selected[0].base_version != from_version:
            # The worker sits between journal boundaries (it should never —
            # versions only take broadcast values — but replaying across a
            # mismatched base would corrupt it, so order a resync instead).
            return None
        return selected

    def _disk_chain(self, from_version: int) -> list["CostDiff"] | None:
        """Bridge from the durable tail when the ring no longer reaches back.

        The disk records are rescanned for the newest *contiguous* run; the
        run must start at ``from_version`` (same boundary rule as the ring)
        and reach at least the ring's head — a shorter disk chain would
        leave the worker in a half-caught-up state worse than a resync.
        """
        if self._durability is None:
            return None
        run: list["CostDiff"] = []
        for diff in self._durability.costdiff_records():
            if run and diff.base_version != run[-1].version:
                run = []  # discontinuity: only the newest run is trustworthy
            run.append(diff)
        selected = [diff for diff in run if diff.base_version >= from_version]
        if not selected or selected[0].base_version != from_version:
            return None
        head = self.head_version
        if head is not None and selected[-1].version < head:
            return None
        if selected[-1].version <= from_version:
            return []
        self._disk_chains += 1
        return selected

    def record_replay(self) -> None:
        self._replays += 1

    def record_resync(self) -> None:
        self._resyncs += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostDiffJournal(depth={len(self)}, head={self.head_version}, "
            f"replays={self._replays}, resyncs={self._resyncs})"
        )
