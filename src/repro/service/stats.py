"""Serving statistics of a :class:`~repro.service.RoutingService`.

The service records every answered request into a thread-safe accumulator;
:meth:`StatsAccumulator.snapshot` freezes the counters into an immutable
:class:`ServiceStats` — request counts per engine, latency percentiles,
cache hit rate, error / fallback counts, and a histogram of the routing
diagnostics cases (how many requests were answered in-region, cross-region,
out-of-region, ...).
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .api import RouteResponse
from .cache import CacheStats

if TYPE_CHECKING:  # pragma: no cover
    from ..traffic.drain import DrainStats


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile (0 for an empty sample)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass(frozen=True)
class ServiceStats:
    """An immutable snapshot of the service's counters."""

    requests: int = 0
    errors: int = 0
    fallbacks: int = 0
    cache: CacheStats = field(default_factory=lambda: CacheStats(0, 0, 0, 0))
    requests_by_engine: dict[str, int] = field(default_factory=dict)
    case_histogram: dict[str, int] = field(default_factory=dict)
    """Routing-diagnostics case -> count (cache hits replay the cached case)."""
    latency_p50_s: float = 0.0
    """p50 over *single-request* latencies (cache hits included).  Responses
    computed by a batched ``route_many`` kernel call carry amortized
    latencies that would skew these percentiles, so they are tracked
    separately below."""
    latency_p95_s: float = 0.0
    latency_mean_s: float = 0.0
    batched_requests: int = 0
    """Requests answered by batched ``route_many`` kernel calls."""
    batched_latency_p50_s: float = 0.0
    """p50 over the amortized per-request latencies of batched answers."""
    batched_latency_p95_s: float = 0.0
    batched_latency_mean_s: float = 0.0
    traffic_updates: int = 0
    """Live-traffic update batches observed via ``on_traffic_update``."""
    traffic_touched_edges: int = 0
    """Total edges touched across all observed traffic batches."""
    traffic_evicted_routes: int = 0
    """Cached routes evicted by delta-aware traffic invalidation."""
    cost_version: int = 0
    """Latest network cost version reported by the traffic feed."""
    hierarchy_reweights: int = 0
    """Live-traffic shortcut re-weights absorbed by contraction-hierarchy
    engines (cheap in-place re-customizations instead of full rebuilds)."""
    shed: int = 0
    """Requests rejected by admission control (``ServiceOverloadedError``)."""
    retries: int = 0
    """Engine attempts beyond the first, summed across served requests."""
    deadline_exceeded: int = 0
    """Requests whose deadline budget ran out mid-chain."""
    degraded_responses: int = 0
    """Responses served from the stale-route store with ``degraded=True``."""
    breaker_trips: int = 0
    """Circuit-breaker open transitions, summed over all engines."""
    breaker_states: dict[str, str] = field(default_factory=dict)
    """Engine name -> current breaker state (only engines with breakers)."""
    drain: "DrainStats | None" = None
    """Snapshot of the attached :class:`~repro.traffic.drain.TrafficDrain`
    (queue depth, staleness, crash counts), or ``None`` when no drain is
    attached."""
    shards: int = 0
    """Worker shards behind a :class:`~repro.service.sharding.
    ShardedRoutingService` (0 for an in-process service)."""
    shard_requests: dict[int, int] = field(default_factory=dict)
    """Shard id -> requests dispatched to that shard's worker."""
    cross_shard_requests: int = 0
    """Requests answered through the boundary overlay (source and
    destination in different shards, or an in-shard escape path won)."""
    in_shard_requests: int = 0
    """Requests answered entirely within one shard's sub-network."""
    broadcast_lag_s: float = 0.0
    """Wall-clock seconds from the latest traffic batch landing in the
    shared segment to the last worker acknowledging its version."""
    worker_restarts: int = 0
    """Worker processes respawned by the pool after dying mid-service."""
    transport: str = ""
    """Pool transport behind a sharded service ("queue" or "tcp"; empty for
    an in-process service)."""
    replicas: int = 0
    """Replicas per shard behind a sharded service (0 when not sharded)."""
    failovers: int = 0
    """Pending batches re-dispatched to a different replica after their
    assigned worker died or lost its link."""
    hedged_requests: int = 0
    """Batches duplicated to a second replica after the hedge delay."""
    hedge_wins: int = 0
    """Hedged batches whose *hedge* copy answered first."""
    heartbeats_sent: int = 0
    """Ping probes sent by the coordinator's heartbeat monitor."""
    heartbeat_timeouts: int = 0
    """Probes that crossed the liveness deadline unanswered."""
    journal_replays: int = 0
    """Reconnecting workers caught up via CostDiff journal replay."""
    journal_resyncs: int = 0
    """Reconnecting workers beyond the journal's bounded history, ordered
    to resync from the shared segment instead."""
    journal_depth: int = 0
    """CostDiff broadcasts currently retained in the write-ahead journal."""

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0


class StatsAccumulator:
    """Thread-safe recorder behind :class:`ServiceStats` snapshots."""

    def __init__(self, max_latency_samples: int = 10_000) -> None:
        self._lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._fallbacks = 0
        self._by_engine: Counter[str] = Counter()
        self._cases: Counter[str] = Counter()
        # Ring buffers of the most recent latencies: percentiles track current
        # behaviour on a long-lived service instead of freezing at startup.
        # Batched answers carry amortized latencies and get their own buffer
        # so single-request p50/p95 stay meaningful.
        self._latencies: list[float] = []
        self._latency_seen = 0
        self._batched = 0
        self._batch_latencies: list[float] = []
        self._batch_latency_seen = 0
        self._max_latency_samples = max_latency_samples
        self._traffic_updates = 0
        self._traffic_touched = 0
        self._traffic_evicted = 0
        self._cost_version = 0
        self._retries = 0
        self._deadline_exceeded = 0
        self._degraded = 0

    def record(self, response: RouteResponse) -> None:
        with self._lock:
            self._requests += 1
            self._by_engine[response.engine] += 1
            self._retries += response.retries
            if response.degraded:
                self._degraded += 1
            if response.error is not None:
                self._errors += 1
            # The service clears fallback_used on replays where the chain did
            # not run, so the flag counts actual fallback executions — even
            # ones answered from the fallback engine's own cache line.
            if response.fallback_used:
                self._fallbacks += 1
            if response.diagnostics is not None:
                self._cases[response.diagnostics.case] += 1
            if response.batched:
                self._batched += 1
                self._batch_latency_seen = self._push_latency(
                    self._batch_latencies, self._batch_latency_seen, response.latency_s
                )
            else:
                self._latency_seen = self._push_latency(
                    self._latencies, self._latency_seen, response.latency_s
                )

    def _push_latency(self, buffer: list[float], seen: int, value: float) -> int:
        """Append to a bounded ring buffer; returns the new seen-count."""
        if len(buffer) < self._max_latency_samples:
            buffer.append(value)
        else:
            buffer[seen % self._max_latency_samples] = value
        return seen + 1

    def record_deadline_exceeded(self) -> None:
        """Count one request whose deadline budget expired mid-chain."""
        with self._lock:
            self._deadline_exceeded += 1

    def record_traffic(self, touched: int, evicted: int, cost_version: int) -> None:
        """Count one applied live-traffic batch and its cache evictions."""
        with self._lock:
            self._traffic_updates += 1
            self._traffic_touched += touched
            self._traffic_evicted += evicted
            # Versions are monotonic per network; keep the newest observed
            # (feeds over different networks just report the latest bump).
            self._cost_version = max(self._cost_version, cost_version)

    def snapshot(
        self,
        cache: CacheStats,
        hierarchy_reweights: int = 0,
        shed: int = 0,
        breaker_trips: int = 0,
        breaker_states: dict[str, str] | None = None,
        drain: "DrainStats | None" = None,
        shards: int = 0,
        shard_requests: dict[int, int] | None = None,
        cross_shard_requests: int = 0,
        in_shard_requests: int = 0,
        broadcast_lag_s: float = 0.0,
        worker_restarts: int = 0,
        transport: str = "",
        replicas: int = 0,
        failovers: int = 0,
        hedged_requests: int = 0,
        hedge_wins: int = 0,
        heartbeats_sent: int = 0,
        heartbeat_timeouts: int = 0,
        journal_replays: int = 0,
        journal_resyncs: int = 0,
        journal_depth: int = 0,
    ) -> ServiceStats:
        """Freeze the counters; ``hierarchy_reweights``, ``shed``, the
        breaker fields, ``drain``, and the sharding fields are sampled by
        the service from its engines / admission controller / breakers /
        attached drain / worker pool (component state, not window counters,
        so :meth:`reset` does not zero them)."""
        with self._lock:
            latencies = list(self._latencies)
            batch_latencies = list(self._batch_latencies)
            return ServiceStats(
                requests=self._requests,
                errors=self._errors,
                fallbacks=self._fallbacks,
                cache=cache,
                requests_by_engine=dict(self._by_engine),
                case_histogram=dict(self._cases),
                latency_p50_s=percentile(latencies, 0.50),
                latency_p95_s=percentile(latencies, 0.95),
                latency_mean_s=sum(latencies) / len(latencies) if latencies else 0.0,
                batched_requests=self._batched,
                batched_latency_p50_s=percentile(batch_latencies, 0.50),
                batched_latency_p95_s=percentile(batch_latencies, 0.95),
                batched_latency_mean_s=(
                    sum(batch_latencies) / len(batch_latencies) if batch_latencies else 0.0
                ),
                traffic_updates=self._traffic_updates,
                traffic_touched_edges=self._traffic_touched,
                traffic_evicted_routes=self._traffic_evicted,
                cost_version=self._cost_version,
                hierarchy_reweights=hierarchy_reweights,
                shed=shed,
                retries=self._retries,
                deadline_exceeded=self._deadline_exceeded,
                degraded_responses=self._degraded,
                breaker_trips=breaker_trips,
                breaker_states=dict(breaker_states or {}),
                drain=drain,
                shards=shards,
                shard_requests=dict(shard_requests or {}),
                cross_shard_requests=cross_shard_requests,
                in_shard_requests=in_shard_requests,
                broadcast_lag_s=broadcast_lag_s,
                worker_restarts=worker_restarts,
                transport=transport,
                replicas=replicas,
                failovers=failovers,
                hedged_requests=hedged_requests,
                hedge_wins=hedge_wins,
                heartbeats_sent=heartbeats_sent,
                heartbeat_timeouts=heartbeat_timeouts,
                journal_replays=journal_replays,
                journal_resyncs=journal_resyncs,
                journal_depth=journal_depth,
            )

    def reset(self) -> None:
        with self._lock:
            self._requests = 0
            self._errors = 0
            self._fallbacks = 0
            self._by_engine.clear()
            self._cases.clear()
            self._latencies.clear()
            self._latency_seen = 0
            self._batched = 0
            self._batch_latencies.clear()
            self._batch_latency_seen = 0
            self._traffic_updates = 0
            self._traffic_touched = 0
            self._traffic_evicted = 0
            self._retries = 0
            self._deadline_exceeded = 0
            self._degraded = 0
            # _cost_version is deliberately kept: it mirrors network state,
            # not a monitoring-window counter.
