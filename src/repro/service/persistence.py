"""Saving and loading fitted L2R models.

A serving process should not have to re-run the offline pipeline (region
clustering, preference learning, transfer, path materialization) on every
start.  :func:`save_model` persists a fitted
:class:`~repro.core.l2r.LearnToRoute` — the road network, the region graph(s)
with learned and transferred preferences, and the materialized B-edge paths —
into one gzip-compressed pickle with a format header; :func:`load_model`
restores it and verifies the header.  A round-tripped model answers every
query identically to the in-memory original (the state is carried verbatim;
routing is deterministic).
"""

from __future__ import annotations

import gzip
import os
import pickle
import tempfile
from pathlib import Path as FilePath
from typing import TYPE_CHECKING

from ..exceptions import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.l2r import LearnToRoute

MODEL_FORMAT = "repro-l2r-model"
MODEL_FORMAT_VERSION = 1


class ModelPersistenceError(ReproError):
    """A model file could not be written, read, or understood."""


def _fsync_parent_dir(path: FilePath) -> None:
    """Make the rename that published ``path`` durable (directory fsync)."""
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    fd = os.open(path.parent, flags)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def save_model(pipeline: "LearnToRoute", path: str | FilePath) -> FilePath:
    """Persist a fitted pipeline to ``path``; returns the written path."""
    from .. import __version__
    from ..core.l2r import LearnToRoute

    if not isinstance(pipeline, LearnToRoute):
        raise ModelPersistenceError(
            f"save_model() expects a LearnToRoute pipeline, got {type(pipeline).__name__}"
        )
    if not pipeline.is_fitted:
        raise ModelPersistenceError("refusing to save an unfitted LearnToRoute pipeline")

    payload = {
        "format": MODEL_FORMAT,
        "format_version": MODEL_FORMAT_VERSION,
        "library_version": __version__,
        "pipeline": pipeline,
    }
    destination = FilePath(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    # Write-then-rename: a crash or full disk mid-write must not clobber a
    # previously good model at the destination with a truncated file.  The
    # scratch name is unique per call so concurrent saves to the same
    # destination cannot interleave their streams.
    handle_fd, scratch_name = tempfile.mkstemp(
        dir=destination.parent, prefix=destination.name + ".", suffix=".tmp"
    )
    scratch = FilePath(scratch_name)
    try:
        with os.fdopen(handle_fd, "wb") as raw:
            with gzip.GzipFile(fileobj=raw, mode="wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            # fsync *before* the rename: os.replace is atomic in the
            # namespace but says nothing about the data — without this, a
            # power loss after the rename can still surface a truncated
            # "committed" model under the destination name.
            raw.flush()
            os.fsync(raw.fileno())
        os.replace(scratch, destination)
        _fsync_parent_dir(destination)
    except (OSError, pickle.PicklingError, TypeError, AttributeError) as exc:
        # TypeError/AttributeError are how pickle reports unpicklable state.
        raise ModelPersistenceError(f"could not write model to {destination}: {exc}") from exc
    finally:
        scratch.unlink(missing_ok=True)  # no-op once os.replace succeeded
    return destination


def load_model(path: str | FilePath) -> "LearnToRoute":
    """Restore a pipeline previously written by :func:`save_model`.

    .. warning::
       Model files are pickles: loading executes code embedded in the file.
       Only load models you saved yourself or obtained from a trusted source
       — the format header is checked *after* unpickling and cannot protect
       against a malicious file.
    """
    from ..core.l2r import LearnToRoute

    source = FilePath(path)
    try:
        with gzip.open(source, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise ModelPersistenceError(f"model file {source} does not exist") from None
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise ModelPersistenceError(f"could not read model from {source}: {exc}") from exc

    if not isinstance(payload, dict) or payload.get("format") != MODEL_FORMAT:
        raise ModelPersistenceError(f"{source} is not a saved L2R model")
    version = payload.get("format_version")
    if version != MODEL_FORMAT_VERSION:
        raise ModelPersistenceError(
            f"{source} uses model format version {version!r}; "
            f"this library reads version {MODEL_FORMAT_VERSION}"
        )
    pipeline = payload.get("pipeline")
    if not isinstance(pipeline, LearnToRoute):
        raise ModelPersistenceError(f"{source} does not contain a LearnToRoute pipeline")
    return pipeline
