"""The :class:`RoutingService` facade — one serving API over many engines.

The service owns a registry of named :class:`~repro.service.engine.RoutingEngine`
backends (the fitted L2R pipeline, the baselines, anything satisfying the
protocol), answers single requests with :meth:`RoutingService.route` and
batches with :meth:`RoutingService.route_many` (thread-pool fan-out), follows
per-engine fallback chains when an engine fails (e.g. L2R -> Fastest on
``NoPathError``), caches answers in an LRU route cache, and exposes a
:class:`~repro.service.stats.ServiceStats` snapshot for monitoring.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import replace
from typing import TYPE_CHECKING, Iterable, Sequence

from ..core.config import PeakHours
from ..core.router import RouteDiagnostics
from ..exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    ReproError,
    ServiceOverloadedError,
)
from ..network.compiled import dispatch as _compiled
from ..network.road_network import VertexId
from ..routing.path import Path
from .api import RouteRequest, RouteResponse
from .cache import CacheStats, RouteCache
from .engine import RoutingEngine
from .resilience import (
    AdmissionController,
    CircuitBreaker,
    CircuitBreakerConfig,
    DeadlineBudget,
    RetryPolicy,
    is_transient_failure,
    sleep_within,
)
from .stats import ServiceStats, StatsAccumulator

if TYPE_CHECKING:  # pragma: no cover
    from ..traffic.drain import TrafficDrain
    from ..traffic.feed import TrafficFeed
    from .durability import DurabilityManager, RecoveryReport


class RoutingService:
    """Unified serving facade over interchangeable routing engines."""

    def __init__(
        self,
        cache_size: int = 2048,
        peak_hours: PeakHours | None = None,
        enable_cache: bool = True,
        traffic_invalidate_threshold: int = 64,
        goal_directed: bool | None = None,
        batch_min_size: int = 8,
        deadline_s: float | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreakerConfig | None = None,
        max_in_flight: int | None = None,
        admission_wait_s: float = 0.0,
        serve_degraded: bool = True,
        stale_route_capacity: int = 512,
        batch_result_timeout_s: float = 60.0,
    ) -> None:
        """``traffic_invalidate_threshold`` bounds the delta-aware cache scan:
        a live-traffic batch touching more edges than this drops the whole
        route cache instead of checking every cached path (see
        :meth:`on_traffic_update`).  ``goal_directed`` (when not ``None``)
        becomes the default for requests that leave their own
        ``goal_directed`` field unset — the service-wide opt-in to ALT
        landmark search for single-cost queries.  ``batch_min_size`` is the
        smallest group of compatible ``route_many`` requests worth a batched
        ``dijkstra_many`` call; smaller groups use the thread pool.

        The resilience knobs (all off by default, preserving the fault-free
        fast path):

        * ``deadline_s`` — service-wide wall-clock budget per request
          (``RouteRequest.deadline_s`` overrides per request); the budget is
          consumed across fallback hops and retry backoff;
        * ``retry_policy`` — bounded seeded-jitter retries for transient
          engine failures (never for request errors like ``NoPathError``);
        * ``breaker`` — when set, every registered engine gets its own
          :class:`CircuitBreaker` with this config; open breakers skip the
          engine and go straight to its fallback chain;
        * ``max_in_flight`` — admission control: requests beyond this many
          concurrently served are shed with ``ServiceOverloadedError``
          (after waiting at most ``admission_wait_s`` for a slot);
        * ``serve_degraded`` — when the whole chain fails within budget,
          serve the last known good route for the OD pair flagged
          ``degraded=True`` (``stale_route_capacity`` bounds that store)
          instead of a bare error;
        * ``batch_result_timeout_s`` — hard per-future timeout of the
          ``route_many`` thread-pool fan-out, so one stuck worker cannot
          hang a whole batch."""
        self._engines: dict[str, RoutingEngine] = {}
        self._fallbacks: dict[str, str] = {}
        self._default_engine: str | None = None
        self._cache: RouteCache | None = (
            RouteCache(max_size=cache_size, peak_hours=peak_hours) if enable_cache else None
        )
        self._peak_hours_pinned = peak_hours is not None
        self._traffic_invalidate_threshold = traffic_invalidate_threshold
        self._goal_directed = goal_directed
        self._batch_min_size = max(2, batch_min_size)
        self._engine_generation: dict[str, int] = {}
        self._traffic_generation = 0
        self._stats = StatsAccumulator()
        self._executor: ThreadPoolExecutor | None = None
        self._executor_workers = 0
        self._retired_executors: list[ThreadPoolExecutor] = []
        self._pool_users: dict[ThreadPoolExecutor, int] = {}
        self._executor_lock = threading.Lock()
        self._deadline_s = deadline_s
        self._retry_policy = retry_policy
        self._breaker_config = breaker
        self._breakers: dict[str, CircuitBreaker] = {}
        self._admission = (
            AdmissionController(max_in_flight, max_wait_s=admission_wait_s)
            if max_in_flight is not None
            else None
        )
        self._serve_degraded = serve_degraded
        self._stale_capacity = stale_route_capacity
        self._stale_routes: OrderedDict[tuple, tuple[RouteResponse, int | None]] = (
            OrderedDict()
        )
        self._stale_lock = threading.Lock()
        self._batch_result_timeout_s = batch_result_timeout_s
        self._drain: "TrafficDrain | None" = None

    # ------------------------------------------------------------------ #
    # Registry
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        engine: RoutingEngine,
        *,
        fallback: str | None = None,
        default: bool = False,
    ) -> "RoutingService":
        """Register an engine under ``name``; returns ``self`` for chaining.

        ``fallback`` names the engine to consult when this one fails (chains
        are followed transitively); the first registered engine — or the one
        registered with ``default=True`` — becomes the default.

        A time-dependent L2R engine carries its own peak windows: the route
        cache adopts them automatically so peak and off-peak answers are
        bucketed exactly as the pipeline switches models.  If the service was
        constructed with explicit (or already-adopted) ``peak_hours`` that
        disagree, registration fails rather than risking a peak-model answer
        being replayed for an off-peak request.
        """
        self._adopt_peak_hours(name, engine)
        if self._cache is not None:
            self._cache.mark_time_dependent(
                name, getattr(engine, "peak_hours", None) is not None
            )
        reregistration = name in self._engines
        # Swap before bumping: a route() that observes the bumped generation
        # is then guaranteed to have computed on the new engine.
        self._engines[name] = engine
        if reregistration and self._cache is not None:
            # Re-registration (e.g. a refit model): the old engine's answers
            # must not be replayed for the new one — including answers it
            # produced through another engine's fallback chain, which sit
            # under the calling engine's key but carry this registry name.
            # The generation bump vetoes in-flight old-engine puts (the
            # guard is evaluated under the cache lock); the invalidation
            # drops the entries that already landed.
            self._engine_generation[name] = self._engine_generation.get(name, 0) + 1
            self._cache.invalidate_engine(name)
        if fallback is not None:
            self._fallbacks[name] = fallback
        if default or self._default_engine is None:
            self._default_engine = name
        if self._breaker_config is not None and name not in self._breakers:
            self._breakers[name] = CircuitBreaker(self._breaker_config)
        return self

    def _adopt_peak_hours(self, name: str, engine: RoutingEngine) -> None:
        """Align the cache's peak bucketing with a time-dependent engine.

        An engine declares its windows through the optional ``peak_hours``
        attribute of the ``RoutingEngine`` protocol (both built-in adapters
        derive it from the wrapped pipeline's config).
        """
        if self._cache is None:
            return
        hours = getattr(engine, "peak_hours", None)
        if hours is None:
            return
        if hours == self._cache.peak_hours:
            # The engine's windows are in force now — a later time-dependent
            # engine with different windows must not silently re-bucket them.
            self._peak_hours_pinned = True
            return
        if self._peak_hours_pinned:
            raise ConfigurationError(
                f"engine {name!r} is time-dependent with peak hours that differ from "
                "this service's cache bucketing; construct RoutingService(peak_hours=...) "
                "with the pipeline's config.peak_hours (or disable the cache)"
            )
        self._cache.set_peak_hours(hours)
        self._peak_hours_pinned = True

    def _cache_tag(self, name: str) -> object:
        """The engine's optional ``cache_version`` tag (``None`` for most).

        Folded into route-cache keys so engines whose answers depend on
        mutable internal state (a contraction hierarchy's re-weightable
        shortcut weights) never replay answers across a state change that
        involved no re-registration.
        """
        engine = self._engines.get(name)
        return getattr(engine, "cache_version", None) if engine is not None else None

    def engines(self) -> list[str]:
        """Names of the registered engines (registration order)."""
        return list(self._engines)

    def engine(self, name: str) -> RoutingEngine:
        try:
            return self._engines[name]
        except KeyError:
            raise ConfigurationError(
                f"no engine named {name!r} is registered (have: {sorted(self._engines)})"
            ) from None

    @property
    def default_engine(self) -> str | None:
        return self._default_engine

    @default_engine.setter
    def default_engine(self, name: str) -> None:
        self.engine(name)  # validates
        self._default_engine = name

    def set_fallback(self, name: str, fallback: str) -> None:
        """Declare ``fallback`` as the next engine when ``name`` fails."""
        self.engine(name)
        self.engine(fallback)
        self._fallbacks[name] = fallback

    def breaker(self, name: str) -> CircuitBreaker | None:
        """The engine's circuit breaker (``None`` without breaker config)."""
        self.engine(name)  # validates
        return self._breakers.get(name)

    @property
    def admission(self) -> AdmissionController | None:
        """The admission controller (``None`` without ``max_in_flight``)."""
        return self._admission

    def attach_drain(self, drain: "TrafficDrain") -> "TrafficDrain":
        """Adopt a :class:`~repro.traffic.drain.TrafficDrain` for monitoring
        and lifecycle: its counters surface in :meth:`stats` and
        :meth:`close` stops it before draining in-flight requests."""
        self._drain = drain
        return drain

    @property
    def drain(self) -> "TrafficDrain | None":
        return self._drain

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def route(
        self,
        request: RouteRequest,
        engine: str | None = None,
        _probe_cache: bool = False,
    ) -> RouteResponse:
        """Answer one request with the named (or default) engine.

        The answer is served from the route cache when possible; on failure
        the engine's fallback chain is followed within the request's deadline
        budget, and — when the whole chain fails — a stale cached route is
        served flagged ``degraded=True`` before falling back to a structured
        error.  Requests beyond the admission limit are shed immediately
        with a ``ServiceOverloadedError`` error response (cache hits are
        always served: they cost no engine work).  The returned response
        always reports the engine that actually produced the path, the
        latency, and the cache-hit flag.  ``_probe_cache`` (internal) marks
        the cache lookup as a follow-up to one ``route_many`` already
        counted, keeping the hit/miss counters at one outcome per logical
        request.
        """
        name = engine or self._default_engine
        if name is None:
            raise ConfigurationError("no engines registered with this RoutingService")
        self.engine(name)  # validates the name before cache lookup
        request = self._effective_request(request)

        if self._cache is not None:
            cached = self._cache.get(
                name, request, probe=_probe_cache, version=self._cache_tag(name)
            )
            if cached is not None:
                # A replay from the requested engine's own key did not run the
                # fallback chain this time, whatever produced the entry.
                if cached.fallback_used:
                    cached = cached.with_request(request, fallback_used=False)
                self._stats.record(cached)
                return cached

        admission = self._admission
        if admission is not None:
            try:
                admission.acquire()
            except ServiceOverloadedError as exc:
                # Fast reject: no engine work, no fallback walk, no caching.
                response = RouteResponse.from_error(request, name, exc)
                self._stats.record(response)
                return response
        try:
            return self._route_admitted(name, request)
        finally:
            if admission is not None:
                admission.release()

    def _route_admitted(self, name: str, request: RouteRequest) -> RouteResponse:
        """Compute one admitted request: fallback chain, degraded serving,
        cache insert, stats."""
        # Snapshot generations before computing: the guard rejects the insert
        # if either the requested engine or the engine that actually answered
        # (a fallback) was re-registered — or any live-traffic batch landed —
        # while this request was in flight.  Without the traffic check, a
        # response computed with pre-update costs could be inserted *after*
        # on_traffic_update evicted the stale entries, and then be replayed
        # forever.  The veto is coarse (the path may not cross a touched
        # edge) but a missed insert only costs one recompute.
        generations = dict(self._engine_generation)
        traffic_generation = self._traffic_generation
        budget = DeadlineBudget.start(
            request.deadline_s if request.deadline_s is not None else self._deadline_s
        )
        response = self._route_with_fallbacks(name, request, budget)
        if not response.ok and self._serve_degraded:
            degraded = self._degraded_response(name, request, response)
            if degraded is not None:
                response = degraded
        if self._cache is not None and not response.degraded:

            def _still_current() -> bool:
                return self._traffic_generation == traffic_generation and all(
                    self._engine_generation.get(involved, 0) == generations.get(involved, 0)
                    for involved in (name, response.engine)
                )

            # The tag is re-read after computing: an on_stale refresh inside
            # the engine bumps it, and the answer must land under the state
            # that produced it.
            self._cache.put(
                name, response, guard=_still_current, version=self._cache_tag(name)
            )
        if response.ok and not response.degraded:
            self._remember_last_good(name, response)
        self._stats.record(response)
        return response

    def route_between(
        self,
        source: VertexId,
        destination: VertexId,
        *,
        departure_time: float | None = None,
        engine: str | None = None,
        **request_fields: object,
    ) -> RouteResponse:
        """Convenience wrapper building the :class:`RouteRequest` inline."""
        request = RouteRequest(
            source=source,
            destination=destination,
            departure_time=departure_time,
            **request_fields,  # type: ignore[arg-type]
        )
        return self.route(request, engine=engine)

    def _effective_request(self, request: RouteRequest) -> RouteRequest:
        """Fill service-level defaults into an incoming request."""
        if request.goal_directed is None and self._goal_directed is not None:
            return replace(request, goal_directed=self._goal_directed)
        return request

    def route_many(
        self,
        requests: Sequence[RouteRequest] | Iterable[RouteRequest],
        engine: str | None = None,
        max_workers: int = 4,
        batch_min_size: int | None = None,
    ) -> list[RouteResponse]:
        """Answer a batch of requests, preserving order.

        Compatible requests — same engine, the same resolved single-cost
        view, and the same peak bucket — are partitioned into batched
        ``dijkstra_many`` kernel calls (one C-level multi-source SSSP per
        distinct source, no per-request GIL bouncing); everything else fans
        out over the thread pool as before.  Cache hits are served first,
        batch-computed answers land in the cache under the same in-flight
        guards as single requests, and failures (including unreachable
        pairs discovered *inside* a batch) re-run individually so the
        per-request fallback chains apply unchanged.  A failed request
        yields an error response in its slot instead of aborting the batch.

        ``batch_min_size`` overrides the service default: compatible groups
        smaller than this are not worth the batch setup and stay threaded.
        """
        batch = [self._effective_request(request) for request in requests]
        if not batch:
            return []
        name = engine or self._default_engine
        if name is None:
            raise ConfigurationError("no engines registered with this RoutingService")
        self.engine(name)
        threshold = self._batch_min_size if batch_min_size is None else max(2, batch_min_size)

        responses: list[RouteResponse | None] = [None] * len(batch)
        unbatched = self._route_batched(batch, name, responses, threshold)

        if unbatched:
            # These requests already took their cache miss in the first
            # pass; _probe_cache keeps the counters at one outcome each
            # (and reclassifies the miss if a concurrent insert landed).
            if max_workers <= 1 or len(unbatched) == 1:
                for position in unbatched:
                    responses[position] = self.route(
                        batch[position], engine=name, _probe_cache=True
                    )
            else:
                pool = self._acquire_executor(max_workers)
                try:
                    futures = [
                        (
                            position,
                            pool.submit(
                                self.route, batch[position], name, True
                            ),
                        )
                        for position in unbatched
                    ]
                    for position, future in futures:
                        # Bounded wait: one stuck worker degrades its own slot
                        # to a deadline error instead of hanging the batch.
                        try:
                            responses[position] = future.result(
                                timeout=self._batch_result_timeout_s
                            )
                        except FutureTimeoutError:
                            self._stats.record_deadline_exceeded()
                            exc = DeadlineExceededError(
                                self._batch_result_timeout_s,
                                self._batch_result_timeout_s,
                                stage="route_many-worker",
                            )
                            response = RouteResponse.from_error(
                                batch[position], name, exc
                            )
                            self._stats.record(response)
                            responses[position] = response
                finally:
                    self._release_executor(pool)
        return responses  # type: ignore[return-value]

    def _route_batched(
        self,
        batch: list[RouteRequest],
        name: str,
        responses: list[RouteResponse | None],
        threshold: int,
    ) -> list[int]:
        """Serve what the cache and the batch kernels can; return the rest.

        Fills ``responses`` in place for cache hits and batch-answered
        requests and returns the positions that still need the per-request
        path (uncacheable engines, too-small groups, failures needing the
        fallback chain).
        """
        pending: list[int] = []
        batch_tag = self._cache_tag(name)
        for position, request in enumerate(batch):
            if self._cache is not None:
                cached = self._cache.get(name, request, version=batch_tag)
                if cached is not None:
                    if cached.fallback_used:
                        cached = cached.with_request(request, fallback_used=False)
                    self._stats.record(cached)
                    responses[position] = cached
                    continue
            pending.append(position)
        if not pending:
            return []

        engine_obj = self._engines[name]
        resolver = getattr(engine_obj, "batch_cost", None)
        network = getattr(engine_obj, "network", None)
        if resolver is None or network is None:
            return pending

        # Partition by cost *object* (cost_function returns per-feature
        # singletons, so identity is the cost view) and by peak bucket, the
        # same time dimension the cache keys on.
        groups: dict[tuple, tuple[object, list[int]]] = {}
        leftovers: list[int] = []
        for position in pending:
            request = batch[position]
            cost = resolver(request)
            if cost is None:
                leftovers.append(position)
                continue
            bucket = (
                self._cache.bucket_for(name, request) if self._cache is not None else None
            )
            group_key = (id(cost), bucket)
            if group_key in groups:
                groups[group_key][1].append(position)
            else:
                groups[group_key] = (cost, [position])

        for cost, group in groups.values():
            if len(group) < threshold:
                leftovers.extend(group)
                continue
            generations = dict(self._engine_generation)
            traffic_generation = self._traffic_generation
            started = time.perf_counter()
            pairs = [(batch[i].source, batch[i].destination) for i in group]
            answers = _compiled.try_route_many(network, pairs, cost)
            elapsed = time.perf_counter() - started
            if answers is None:
                leftovers.extend(group)
                continue
            per_request = elapsed / len(group)

            def _still_current() -> bool:
                return self._traffic_generation == traffic_generation and (
                    self._engine_generation.get(name, 0) == generations.get(name, 0)
                )

            for position, answer in zip(group, answers):
                if not isinstance(answer, list):
                    # Unreachable (or unknown vertex): run the per-request
                    # path so the engine's error and fallback chain apply.
                    leftovers.append(position)
                    continue
                response = RouteResponse(
                    request=batch[position],
                    path=Path.of(answer),
                    engine=name,
                    latency_s=per_request,
                    batched=True,
                )
                if self._cache is not None:
                    self._cache.put(
                        name,
                        response,
                        guard=_still_current,
                        version=self._cache_tag(name),
                    )
                self._stats.record(response)
                responses[position] = response
        return leftovers

    def _acquire_executor(self, max_workers: int) -> ThreadPoolExecutor:
        """The shared worker pool, grown (never shrunk) on demand.

        Reused across :meth:`route_many` calls so per-batch pool setup does
        not tax the throughput path.  Each batch holds a usage count on the
        pool it was handed: growing the pool never shuts down one a
        concurrent batch is still using — an idle pool is shut down at once,
        a busy one is retired and reaped when its last batch releases it.
        """
        with self._executor_lock:
            if self._executor is None or self._executor_workers < max_workers:
                if self._executor is not None:
                    if self._pool_users.get(self._executor, 0) == 0:
                        self._executor.shutdown(wait=False)
                    else:
                        self._retired_executors.append(self._executor)
                self._executor = ThreadPoolExecutor(max_workers=max_workers)
                self._executor_workers = max_workers
            self._pool_users[self._executor] = self._pool_users.get(self._executor, 0) + 1
            return self._executor

    def _release_executor(self, pool: ThreadPoolExecutor) -> None:
        with self._executor_lock:
            remaining = self._pool_users.get(pool, 1) - 1
            if remaining > 0:
                self._pool_users[pool] = remaining
                return
            self._pool_users.pop(pool, None)
            if pool in self._retired_executors:
                self._retired_executors.remove(pool)
                pool.shutdown(wait=False)

    def close(self, timeout_s: float | None = 5.0) -> bool:
        """Orderly shutdown; idempotent; the service stays usable after.

        The ordering matters: the attached :class:`TrafficDrain` (if any) is
        stopped *first* — no new re-weights land mid-drain of the request
        side — then in-flight batches are given up to ``timeout_s`` to
        finish, then the worker pools are released.  Pools still held by an
        in-flight batch after the timeout are retired, not shut down — the
        batch's release reaps them — so close() can never crash or deadlock
        a concurrent :meth:`route_many`, even one running on this thread's
        own stack.  Returns ``False`` when something (drain thread,
        in-flight batch) failed to stop within the timeout.
        """
        clean = True
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        if self._drain is not None:
            budget = (
                max(0.0, deadline - time.monotonic()) if deadline is not None else 5.0
            )
            clean = self._drain.close(timeout_s=budget) and clean
        # Bounded wait for in-flight batches: each holds a usage count on its
        # pool, so "all counts zero" means no route_many is mid-flight.
        while deadline is not None and time.monotonic() < deadline:
            with self._executor_lock:
                busy = any(count > 0 for count in self._pool_users.values())
            if not busy:
                break
            time.sleep(0.005)
        with self._executor_lock:
            if any(count > 0 for count in self._pool_users.values()):
                clean = False
            still_busy: list[ThreadPoolExecutor] = []
            for retired in self._retired_executors:
                if self._pool_users.get(retired, 0) == 0:
                    self._pool_users.pop(retired, None)
                    retired.shutdown(wait=True)
                else:
                    still_busy.append(retired)
            self._retired_executors = still_busy
            if self._executor is not None:
                if self._pool_users.get(self._executor, 0) == 0:
                    self._pool_users.pop(self._executor, None)
                    self._executor.shutdown(wait=True)
                else:
                    self._retired_executors.append(self._executor)
                self._executor = None
                self._executor_workers = 0
        return clean

    def _route_with_fallbacks(
        self,
        name: str,
        request: RouteRequest,
        budget: DeadlineBudget | None = None,
    ) -> RouteResponse:
        """Run the engine, following its fallback chain on failure.

        Each hop is guarded by the resilience layer: an open circuit breaker
        skips the engine (the skip is the hop's failure), the deadline
        ``budget`` stops the walk once spent, and transient failures are
        retried per the service's :class:`RetryPolicy` before falling
        through.  Fallback names that were never registered (``register()``
        accepts forward references) are skipped rather than crashing the
        request.
        """
        chain = [name]
        current = name
        unresolved: str | None = None
        while current in self._fallbacks and self._fallbacks[current] not in chain:
            current = self._fallbacks[current]
            if current not in self._engines:
                unresolved = current
                break
            chain.append(current)

        started = time.perf_counter()
        first_failure: RouteResponse | None = None
        retries_total = 0
        deadline_hit = False
        for position, engine_name in enumerate(chain):
            if budget is not None and budget.expired:
                deadline_hit = True
                break
            # A fallback engine may already have this answer cached under its
            # own key — serve it instead of recomputing.  The latency still
            # covers the failed primary attempt(s) that got us here.
            if position > 0 and self._cache is not None:
                cached = self._cache.get(
                    engine_name, request, probe=True, version=self._cache_tag(engine_name)
                )
                if cached is not None and cached.ok:
                    return cached.with_request(
                        request,
                        fallback_used=True,
                        latency_s=time.perf_counter() - started,
                        retries=retries_total,
                    )
            breaker = self._breakers.get(engine_name)
            if breaker is not None and not breaker.allow():
                # Open breaker: skip the engine without paying its failure
                # latency; the skip itself is this hop's (transient) failure.
                if first_failure is None:
                    first_failure = RouteResponse.from_error(
                        request, engine_name, breaker.open_error(engine_name)
                    )
                continue
            response, attempts = self._attempt_engine(
                engine_name, request, budget, breaker
            )
            retries_total += attempts - 1
            # Report the *registry* name: two aliases may wrap engines with
            # the same internal name (e.g. two L2R model versions), and
            # stats / cache invalidation key on what the caller registered.
            if response.engine != engine_name:
                response = response.with_request(request, engine=engine_name)
            if response.ok:
                changes: dict[str, object] = {}
                if position > 0:
                    changes["fallback_used"] = True
                if retries_total:
                    changes["retries"] = retries_total
                if changes:
                    response = response.with_request(request, **changes)
                return response
            if first_failure is None:
                first_failure = response
        # Chain exhausted: attribute the failure to the engine the caller
        # asked for — its error is the informative one for debugging.  A
        # fallback name that never got registered (typo?) is surfaced here,
        # exactly when it would have mattered.
        if deadline_hit:
            self._stats.record_deadline_exceeded()
            if first_failure is None:
                assert budget is not None
                exc = DeadlineExceededError(
                    budget.budget_s, budget.elapsed(), stage="fallback-chain"
                )
                first_failure = RouteResponse.from_error(
                    request, name, exc, latency_s=time.perf_counter() - started
                )
        assert first_failure is not None  # chain is never empty
        if retries_total and first_failure.retries != retries_total:
            first_failure = first_failure.with_request(request, retries=retries_total)
        if unresolved is not None:
            first_failure = first_failure.with_request(
                request,
                error=f"{first_failure.error} "
                f"(fallback {unresolved!r} is not registered)",
            )
        return first_failure

    def _attempt_engine(
        self,
        engine_name: str,
        request: RouteRequest,
        budget: DeadlineBudget | None,
        breaker: CircuitBreaker | None,
    ) -> tuple[RouteResponse, int]:
        """One engine's attempt(s) at a request; returns (response, attempts).

        Engines built on ``BaseEngine`` report failures on the response; the
        protocol cannot enforce that on arbitrary engines, and a raising
        engine must not abort a ``route_many`` batch — exceptions are folded
        into error responses here.  Transient failures feed the breaker and
        are retried (with budget-bounded backoff); request-level errors like
        ``NoPathError`` count as breaker *successes* — the engine is alive
        and answering — and are never retried.
        """
        policy = self._retry_policy
        attempt = 0
        while True:
            started = time.perf_counter()
            failure_exc: BaseException | None = None
            try:
                response = self._engines[engine_name].route(request)
            except ReproError as exc:
                failure_exc = exc
                response = RouteResponse.from_error(
                    request, engine_name, exc, latency_s=time.perf_counter() - started
                )
            attempt += 1
            failure: BaseException | str | None = (
                None if response.ok else (failure_exc or response.error)
            )
            if breaker is not None:
                if response.ok or not is_transient_failure(failure):
                    breaker.record_success()
                else:
                    breaker.record_failure()
            if response.ok or policy is None:
                return response, attempt
            if not policy.is_retryable(failure):
                return response, attempt
            delay = policy.delay(attempt - 1)
            if delay is None:
                return response, attempt
            if budget is not None and budget.expired:
                return response, attempt
            if not sleep_within(delay, budget):
                return response, attempt

    # ------------------------------------------------------------------ #
    # Degraded serving (stale-route store)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _stale_key(name: str, request: RouteRequest) -> tuple:
        """Identity of one (engine, OD-pair, preference) answer line.

        Deliberately coarser than the route-cache key: no peak bucket and no
        cost version — degraded serving *wants* the last known good answer
        even when it is stale, that is the point."""
        return (
            name,
            request.source,
            request.destination,
            request.driver_id,
            request.cost_override,
            request.goal_directed,
        )

    def _remember_last_good(self, name: str, response: RouteResponse) -> None:
        """Keep the freshest good answer per OD line for degraded serving."""
        if not self._serve_degraded or self._stale_capacity < 1:
            return
        key = self._stale_key(name, response.request)
        answering = self._engines.get(response.engine)
        network = getattr(answering, "network", None)
        version = getattr(network, "cost_version", None) if network is not None else None
        with self._stale_lock:
            self._stale_routes[key] = (response, version)
            self._stale_routes.move_to_end(key)
            while len(self._stale_routes) > self._stale_capacity:
                self._stale_routes.popitem(last=False)

    def _degraded_response(
        self, name: str, request: RouteRequest, failure: RouteResponse
    ) -> RouteResponse | None:
        """A stale-but-flagged answer for a request whose whole chain failed.

        Only *engine-health* failures degrade (timeouts, crashes, open
        breakers): a ``NoPathError`` is a correct answer about the request
        and must stay an error.  The served response carries
        ``degraded=True`` and diagnostics recording the cost version it was
        computed under; it is never re-cached.
        """
        if not is_transient_failure(failure.error):
            return None
        with self._stale_lock:
            entry = self._stale_routes.get(self._stale_key(name, request))
        if entry is None:
            return None
        stale, served_version = entry
        diagnostics = RouteDiagnostics(
            case="degraded-stale", served_cost_version=served_version
        )
        return stale.with_request(
            request,
            degraded=True,
            diagnostics=diagnostics,
            cache_hit=False,
            fallback_used=False,
            latency_s=failure.latency_s,
            error=None,
        )

    # ------------------------------------------------------------------ #
    # Live traffic
    # ------------------------------------------------------------------ #
    def on_traffic_update(
        self,
        touched_edges: Iterable[tuple[VertexId, VertexId]],
        cost_version: int | None = None,
    ) -> int:
        """React to a live-traffic cost update; returns routes evicted.

        Called by a :class:`~repro.traffic.TrafficFeed` subscription (wire it
        with ``TrafficFeed(network, services=[service])``).  Cached
        responses are invalidated *delta-aware*: only answers whose path
        crosses a touched edge are dropped.  Batches touching more than the
        service's ``traffic_invalidate_threshold`` edges fall back to
        dropping the whole route cache — scanning every cached path per
        entry would cost more than the misses it saves.  The batch count,
        touched-edge count, evictions, and the reported cost version all
        surface in :meth:`stats`.
        """
        touched = set(touched_edges)
        evicted = 0
        # Bump before evicting: an in-flight route() that snapshotted the old
        # generation is then vetoed at put() time (guard under the cache
        # lock), and anything it managed to insert earlier is dropped by the
        # eviction below — either way no pre-update answer survives.
        self._traffic_generation += 1
        if self._cache is not None and touched:
            evicted = self._cache.invalidate_edges(
                touched, threshold=self._traffic_invalidate_threshold
            )
        self._stats.record_traffic(len(touched), evicted, cost_version or 0)
        return evicted

    def recover(
        self, durability: "DurabilityManager", feed: "TrafficFeed"
    ) -> "RecoveryReport":
        """Restore the feed's network from disk after a crash, then resume.

        Runs the full durability recovery (newest snapshot + WAL replay +
        coherence verification) against ``feed``'s network, drops the route
        cache outright — every cached answer predates the restart — and
        bumps the traffic generation so in-flight requests racing the
        recovery cannot re-insert pre-crash routes.  The feed is reused for
        replay so resolution semantics match production exactly; reattach
        the durability manager (``feed.attach_journal``) after this returns
        if it was not already attached.
        """
        report = durability.recover(feed.network, feed)
        self._traffic_generation += 1
        self.clear_cache()
        self._stats.record_traffic(0, 0, report.recovered_version)
        return report

    # ------------------------------------------------------------------ #
    # Monitoring
    # ------------------------------------------------------------------ #
    def stats(self) -> ServiceStats:
        """A frozen snapshot of the service counters."""
        if self._cache is not None:
            cache_stats = self._cache.stats()
        else:
            cache_stats = CacheStats(hits=0, misses=0, size=0, max_size=0)
        # Engines may share one prepared hierarchy: count each hierarchy
        # object once, whatever number of engines serve it.
        reweights = 0
        counted: set[int] = set()
        for engine in self._engines.values():
            count = getattr(engine, "hierarchy_reweights", 0)
            if not count:
                continue
            shared = getattr(engine, "current_hierarchy", None)
            key = id(shared) if shared is not None else id(engine)
            if key not in counted:
                counted.add(key)
                reweights += count
        return self._stats.snapshot(
            cache_stats,
            hierarchy_reweights=reweights,
            shed=self._admission.shed if self._admission is not None else 0,
            breaker_trips=sum(b.trips for b in self._breakers.values()),
            breaker_states={n: b.state for n, b in self._breakers.items()},
            drain=self._drain.stats() if self._drain is not None else None,
        )

    def reset_stats(self) -> None:
        """Start a fresh monitoring window (keeps cached entries)."""
        self._stats.reset()
        if self._cache is not None:
            self._cache.reset_counters()

    def clear_cache(self) -> None:
        if self._cache is not None:
            self._cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoutingService(engines={list(self._engines)}, "
            f"default={self._default_engine!r})"
        )
