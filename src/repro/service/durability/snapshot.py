"""Atomic, CRC-stamped snapshots of the live cost state.

A snapshot is the compaction point of the durability layer: it captures the
:class:`~repro.network.compiled.graph.CostStore` arrays together with the
``cost_version`` they correspond to and a topology stamp (vertex/edge
counts plus a CRC of the CSR ``offsets``/``targets``), so recovery can
refuse a snapshot taken against a different graph.  Once a snapshot at
version *v* is durable, every WAL segment whose records all have
``base_version < v`` is dead history and may be deleted.

Publication is the classic atomic dance, in this exact order:

1. write the whole image to ``<name>.tmp`` in the snapshot directory,
2. flush + ``os.fsync`` the temp file (bytes durable under a temp name),
3. ``os.replace`` onto the final ``snapshot-<version>.snap`` name,
4. ``os.fsync`` the directory (the rename itself durable).

A crash between any two steps leaves either the previous snapshot intact or
the new one fully published — never a half-written file under the final
name.  Readers additionally verify a header CRC over the payload, so even a
snapshot damaged *after* publication (bit rot, truncation) is skipped in
favor of an older valid one rather than trusted.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from ...exceptions import ReproError
from .killpoints import KillHook

if TYPE_CHECKING:  # pragma: no cover
    from ...network.compiled.graph import CompiledTopology

_MAGIC = b"RSNAP1\n"
_CRC = struct.Struct(">I")
SNAPSHOT_FORMAT_VERSION = 1


class SnapshotError(ReproError):
    """A snapshot could not be written, or no valid snapshot exists."""


def topology_stamp(topology: "CompiledTopology") -> dict:
    """A compact identity stamp for the graph a snapshot belongs to.

    Recovery compares stamps before adopting arrays: cost arrays are
    positional (slot-indexed), so replaying them onto a graph whose CSR
    layout differs would silently scramble every edge cost.
    """
    offsets = np.asarray(topology.offsets, dtype=np.int64)
    targets = np.asarray(topology.targets, dtype=np.int64)
    return {
        "vertices": int(topology.vertex_count),
        "edges": int(topology.edge_count),
        "crc": zlib.crc32(targets.tobytes(), zlib.crc32(offsets.tobytes())),
    }


@dataclass(frozen=True)
class SnapshotState:
    """One decoded, validated snapshot."""

    path: Path
    cost_version: int
    topology: dict
    arrays: dict[str, np.ndarray]


def _default_opener(path: str, mode: str):
    """Unbuffered handles so fault wrappers see every byte (cf. journal)."""
    # The caller context-manages the returned handle at the single write
    # site (SnapshotStore.save).
    # reprolint: disable-next-line=RL011
    return open(path, mode, buffering=0)


def _fsync_dir(directory: Path) -> None:
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    fd = os.open(directory, flags)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class SnapshotStore:
    """Bounded-retention store of atomic cost-state snapshots.

    ``retain`` caps how many published snapshots are kept; older ones are
    deleted after each successful save.  Stale ``*.tmp`` leftovers from a
    crashed save are swept on open — they were never published, so deleting
    them is always safe.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        retain: int = 2,
        opener: Callable[[str, str], object] | None = None,
        kill: KillHook | None = None,
    ) -> None:
        if retain < 1:
            raise SnapshotError(f"retain must be >= 1, got {retain}")
        self.directory = Path(directory)
        self.retain = int(retain)
        self._opener = opener or _default_opener
        self._kill = kill
        self.saves = 0
        self.pruned_snapshots = 0
        self.invalid_skipped = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        for leftover in self.directory.glob("*.tmp"):
            leftover.unlink()

    def _hit(self, point: str) -> None:
        if self._kill is not None:
            self._kill(point)

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def _path_for(self, cost_version: int) -> Path:
        return self.directory / f"snapshot-{cost_version:012d}.snap"

    def save(
        self,
        cost_version: int,
        arrays: Mapping[str, np.ndarray],
        topology: dict,
    ) -> Path:
        """Atomically publish a snapshot; returns its final path.

        Only after this returns may WAL segments below ``cost_version`` be
        pruned — the caller owns that ordering (see
        :class:`~repro.service.durability.manager.DurabilityManager`).
        """
        body = pickle.dumps(
            {
                "format": "repro-cost-snapshot",
                "format_version": SNAPSHOT_FORMAT_VERSION,
                "cost_version": int(cost_version),
                "topology": dict(topology),
                "arrays": {name: np.asarray(array) for name, array in arrays.items()},
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        blob = _MAGIC + _CRC.pack(zlib.crc32(body)) + body
        final = self._path_for(cost_version)
        scratch = final.with_suffix(final.suffix + ".tmp")
        self._hit("snapshot.pre-write")
        with self._opener(str(scratch), "wb") as handle:
            handle.write(blob)
            self._hit("snapshot.pre-fsync")
            handle.flush()
            os.fsync(handle.fileno())
        self._hit("snapshot.pre-rename")
        os.replace(scratch, final)
        _fsync_dir(self.directory)
        self._hit("snapshot.post-rename")
        self.saves += 1
        self._apply_retention()
        return final

    def _apply_retention(self) -> None:
        published = self.snapshot_paths()
        for stale in published[: -self.retain]:
            stale.unlink()
            self.pruned_snapshots += 1
        if len(published) > self.retain:
            _fsync_dir(self.directory)

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def snapshot_paths(self) -> list[Path]:
        """Published snapshot files, oldest first (names sort by version)."""
        return sorted(self.directory.glob("snapshot-*.snap"))

    def _decode(self, path: Path) -> SnapshotState | None:
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        if not blob.startswith(_MAGIC) or len(blob) < len(_MAGIC) + _CRC.size:
            return None
        (crc,) = _CRC.unpack_from(blob, len(_MAGIC))
        body = blob[len(_MAGIC) + _CRC.size :]
        if zlib.crc32(body) != crc:
            return None
        try:
            state = pickle.loads(body)
        except Exception:  # noqa: BLE001 - damaged payload == invalid snapshot
            return None
        if (
            not isinstance(state, dict)
            or state.get("format") != "repro-cost-snapshot"
            or state.get("format_version") != SNAPSHOT_FORMAT_VERSION
        ):
            return None
        return SnapshotState(
            path=path,
            cost_version=int(state["cost_version"]),
            topology=dict(state["topology"]),
            arrays={name: np.asarray(a) for name, a in state["arrays"].items()},
        )

    def latest(self, *, topology: dict | None = None) -> SnapshotState | None:
        """Newest snapshot that validates (and, if given, matches ``topology``).

        Damaged or mismatched snapshots are skipped, not errors: recovery
        falls back to the next-oldest valid image plus a longer WAL replay.
        """
        for path in reversed(self.snapshot_paths()):
            state = self._decode(path)
            if state is None:
                self.invalid_skipped += 1
                continue
            if topology is not None and state.topology != topology:
                self.invalid_skipped += 1
                continue
            return state
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SnapshotStore(dir={str(self.directory)!r}, "
            f"snapshots={len(self.snapshot_paths())}, retain={self.retain})"
        )
