"""Named crash points for deterministic crash-consistency testing.

Every durable-write sequence in this package threads an optional ``kill``
hook through its dangerous instants — immediately before a WAL frame hits
the file, halfway through the frame, before/after the fsync, around segment
rotation, and around the snapshot temp-write → fsync → rename → dir-fsync
dance.  A :class:`KillSwitch` armed on one :data:`KILL_POINTS` name raises
:class:`SimulatedCrash` the *n*-th time execution reaches it, which the
chaos harness (:mod:`repro.service.durability.chaos`) treats as the process
dying on the spot: it abandons every open handle and recovers from the
directory alone, exactly like a restart after ``kill -9`` or power loss.

The points are data (:data:`KILL_POINTS`), not prose, so the property suite
can assert recovery at *every* crash point by iterating the tuple — a new
durable write path that adds a point is automatically covered.
"""

from __future__ import annotations

import threading
from typing import Callable

#: Every instrumented crash instant, in rough execution order.  Tests
#: iterate this tuple to prove recovery from each one.
KILL_POINTS: tuple[str, ...] = (
    "journal.append.pre-write",
    "journal.append.mid-write",
    "journal.append.pre-fsync",
    "journal.append.post-fsync",
    "journal.rotate.pre-create",
    "journal.rotate.post-create",
    "snapshot.pre-write",
    "snapshot.pre-fsync",
    "snapshot.pre-rename",
    "snapshot.post-rename",
    "snapshot.pre-prune",
)

#: Signature of the hook the durable writers call at each point.
KillHook = Callable[[str], None]


class SimulatedCrash(RuntimeError):
    """The simulated process death raised by an armed :class:`KillSwitch`.

    Deliberately *not* an ``OSError``: the durability code must never catch
    it — it unwinds through every layer like a real crash would, and only
    the chaos harness (standing in for init/systemd) is allowed to observe
    it.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at kill point {point!r}")
        self.point = point


class KillSwitch:
    """Raise :class:`SimulatedCrash` the ``hits``-th time ``point`` is hit.

    Thread-safe and single-shot: once fired it never fires again, so the
    recovery that follows can reuse the same hook (or none).  ``hits``
    selects the *n*-th occurrence, letting a schedule crash on the third
    append rather than the first.
    """

    def __init__(self, point: str, hits: int = 1) -> None:
        if point not in KILL_POINTS:
            raise ValueError(
                f"unknown kill point {point!r}; known points: {KILL_POINTS}"
            )
        if hits < 1:
            raise ValueError(f"hits must be >= 1, got {hits}")
        self.point = point
        self.hits = hits
        self.seen = 0
        self.fired = False
        self._lock = threading.Lock()

    def __call__(self, name: str) -> None:
        with self._lock:
            if self.fired or name != self.point:
                return
            self.seen += 1
            if self.seen < self.hits:
                return
            self.fired = True
        raise SimulatedCrash(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KillSwitch(point={self.point!r}, hits={self.hits}, "
            f"fired={self.fired})"
        )
