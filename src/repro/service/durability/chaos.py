"""Deterministic crash-recovery harness for the durability layer.

The harness answers one question, mechanically, for every instrumented
crash instant: *if the process dies exactly here, does restart + recovery
reach the same cost state an uninterrupted run reaches?*  It does so by
running the same batch sequence three ways:

1. **Reference** — apply every batch to a fresh network, no durability at
   all; capture the final arrays and ``cost_version``.
2. **Crashed run** — fresh network + :class:`DurabilityManager` armed with
   a :class:`KillSwitch`; apply batches until :class:`SimulatedCrash`
   unwinds, then abandon every handle exactly as ``kill -9`` would.
3. **Recovery + resume** — a new manager over the same directory repairs
   the journal, restores the newest snapshot, replays the WAL suffix, and
   the harness re-applies the batches recovery proved *not* durable.

Step 3's resume set is derived from version arithmetic, which is why the
harness requires **effective** batches (each must change at least one
cost): every applied batch then bumps ``cost_version`` by exactly one, so
``recovered_version - initial_version`` counts the durably-logged prefix —
including a batch whose record hit disk but whose apply never ran (the
write-ahead limbo case: the client never got an acknowledgment, and
recovery's redo of the record is the WAL contract working as designed).

:func:`run_killpoint_matrix` sweeps :data:`KILL_POINTS` with parameters
chosen so each point actually fires (tiny segments for rotation, a
mid-sequence snapshot for the snapshot points) and reports a
:class:`ChaosResult` per point; a point that never fired is still checked
(the run degenerates to fault-free) but flagged ``crashed=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ...network.compiled.graph import EDGE_COST_ATTRIBUTES
from ...traffic.feed import TrafficFeed
from .killpoints import KILL_POINTS, KillSwitch, SimulatedCrash
from .manager import DurabilityManager, RecoveryReport

if TYPE_CHECKING:  # pragma: no cover
    from ...network.road_network import RoadNetwork
    from ...traffic.updates import TrafficUpdate

NetworkFactory = Callable[[], "RoadNetwork"]
Batch = Sequence["TrafficUpdate"]


@dataclass
class ChaosResult:
    """Outcome of one crash-at-point / recover / resume / compare cycle."""

    point: str
    hits: int
    crashed: bool
    crash_batch: int | None
    report: RecoveryReport | None
    resumed: int
    identical: bool
    detail: str = ""


def final_state(network: "RoadNetwork") -> tuple[dict[str, np.ndarray], int]:
    """The comparable endpoint of a run: cost arrays + cost version."""
    return network.compiled().costs.export_arrays(), network.cost_version


def reference_state(
    make_network: NetworkFactory, batches: Sequence[Batch]
) -> tuple[dict[str, np.ndarray], int]:
    """Apply every batch with no durability layer; the ground truth."""
    network = make_network()
    feed = TrafficFeed(network)
    for batch in batches:
        feed.apply(batch)
    return final_state(network)


def states_identical(
    left: tuple[dict[str, np.ndarray], int],
    right: tuple[dict[str, np.ndarray], int],
) -> bool:
    """Bit-identical comparison: exact version, exact float arrays."""
    if left[1] != right[1]:
        return False
    return all(
        np.array_equal(left[0][attr], right[0][attr])
        for attr in EDGE_COST_ATTRIBUTES
    )


def crash_and_recover(
    make_network: NetworkFactory,
    batches: Sequence[Batch],
    directory: str | Path,
    point: str,
    *,
    hits: int = 1,
    fsync: str = "always",
    fsync_interval: int = 32,
    segment_max_bytes: int = 1 << 20,
    snapshot_after: int | None = None,
    reference: tuple[dict[str, np.ndarray], int] | None = None,
) -> ChaosResult:
    """Crash at ``point``, recover, resume, and compare to the reference.

    ``batches`` must all be effective (see module docstring).  The crashed
    run's manager is deliberately never closed — a simulated process death
    leaves no one to flush; recovery must cope with whatever the directory
    holds.  ``snapshot_after`` takes a snapshot after that batch index,
    which is what puts the ``snapshot.*`` kill points in the execution
    path.
    """
    directory = Path(directory)
    if reference is None:
        reference = reference_state(make_network, batches)

    network = make_network()
    initial_version = network.cost_version
    switch = KillSwitch(point, hits)
    manager = DurabilityManager(
        directory,
        fsync=fsync,
        fsync_interval=fsync_interval,
        segment_max_bytes=segment_max_bytes,
        kill=switch,
    )
    feed = TrafficFeed(network)
    feed.attach_journal(manager)
    crash_batch: int | None = None
    try:
        for index, batch in enumerate(batches):
            feed.apply(batch)
            if snapshot_after is not None and index == snapshot_after:
                manager.snapshot(network)
    except SimulatedCrash:
        crash_batch = index
    # The crashed manager is abandoned, never closed: its open handles die
    # with the "process", and only the bytes already on disk survive.

    recovered = make_network()
    recovery_manager = DurabilityManager(
        directory,
        fsync=fsync,
        fsync_interval=fsync_interval,
        segment_max_bytes=segment_max_bytes,
    )
    try:
        recovered_feed = TrafficFeed(recovered)
        report = recovery_manager.recover(recovered, recovered_feed)
        durable_prefix = report.recovered_version - initial_version
        if durable_prefix < 0 or durable_prefix > len(batches):
            return ChaosResult(
                point=point,
                hits=hits,
                crashed=crash_batch is not None,
                crash_batch=crash_batch,
                report=report,
                resumed=0,
                identical=False,
                detail=(
                    f"recovered version {report.recovered_version} is outside "
                    f"[{initial_version}, {initial_version + len(batches)}]"
                ),
            )
        remaining = batches[durable_prefix:]
        recovered_feed.attach_journal(recovery_manager)
        for batch in remaining:
            recovered_feed.apply(batch)
        identical = states_identical(final_state(recovered), reference)
        return ChaosResult(
            point=point,
            hits=hits,
            crashed=crash_batch is not None,
            crash_batch=crash_batch,
            report=report,
            resumed=len(remaining),
            identical=identical,
            detail="" if identical else "recovered+resumed state diverged",
        )
    finally:
        recovery_manager.close()


def run_killpoint_matrix(
    make_network: NetworkFactory,
    batches: Sequence[Batch],
    root: str | Path,
    *,
    points: Sequence[str] = KILL_POINTS,
    hits: int = 1,
    fsync: str = "always",
    segment_max_bytes: int = 512,
    snapshot_after: int | None = None,
) -> list[ChaosResult]:
    """One :func:`crash_and_recover` cycle per kill point, isolated dirs.

    ``segment_max_bytes`` defaults tiny so rotation points fire; pass
    ``snapshot_after`` (e.g. the middle batch) to put the snapshot points
    in play.  The reference run is computed once and shared.
    """
    root = Path(root)
    reference = reference_state(make_network, batches)
    if snapshot_after is None:
        snapshot_after = len(batches) // 2
    results = []
    for point in points:
        results.append(
            crash_and_recover(
                make_network,
                batches,
                root / point.replace(".", "_").replace("-", "_"),
                point,
                hits=hits,
                fsync=fsync,
                segment_max_bytes=segment_max_bytes,
                snapshot_after=snapshot_after,
                reference=reference,
            )
        )
    return results
