"""A segmented, CRC-framed, append-only write-ahead log on disk.

The :class:`DiskJournal` is the persistence layer beneath the serving
stack's live-traffic path: every :class:`~repro.traffic.updates.
TrafficUpdate` batch is logged *before* it is applied (write-ahead), and
every sharded :class:`~repro.service.sharding.protocol.CostDiff` broadcast
may be mirrored behind the bounded in-memory
:class:`~repro.service.sharding.replication.CostDiffJournal` as its
persistent tail.  Records are opaque :class:`JournalRecord` envelopes —
the journal neither interprets nor orders them beyond append order.

On-disk format (one ``wal-<index>.seg`` file per segment, strictly
increasing indices)::

    ┌────────────┬────────────┬──────────────────────┐
    │ length  u32│ crc32   u32│ payload (pickle)     │  repeated
    └────────────┴────────────┴──────────────────────┘

Each frame is length-prefixed and CRC-checked, so a torn tail — the frame a
crash cut short mid-write — is *detected*, truncated away on the next open,
and never replayed; a CRC mismatch or unpicklable payload anywhere marks the
rest of the log unreplayable (a broken chain must not be bridged) and the
suffix is discarded.  Segments rotate at ``segment_max_bytes`` so snapshots
can retire covered history by deleting whole files
(:meth:`DiskJournal.prune_through`).

Durability is governed by the ``fsync`` policy:

* ``"always"`` — fsync after every append: an acknowledged batch survives
  power loss (the bar the crash-chaos suite holds recovery to);
* ``"interval"`` — fsync every ``fsync_interval`` appends (and on rotation
  and close): bounded loss window, near-in-memory append latency;
* ``"never"`` — leave flushing to the OS: fastest, survives process
  crashes but not power loss.

Segment files are opened **unbuffered** (the default opener passes
``buffering=0``), so with a plain opener every byte handed to ``write`` is
visible to a same-process recovery scan immediately; the buffered-data-
loss failure mode of a real power cut is modeled by the
:meth:`~repro.service.faults.FaultInjector.disk` file wrapper, which
buffers internally and drops its buffer at a ``crash-before-fsync`` fault.
The ``kill`` hook threads :mod:`~repro.service.durability.killpoints`
through every dangerous instant for deterministic crash testing.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from ...exceptions import ReproError
from .killpoints import KillHook

if TYPE_CHECKING:  # pragma: no cover
    from ...traffic.updates import TrafficUpdate
    from ..sharding.protocol import CostDiff

#: Accepted fsync policies, strictest first.
FSYNC_POLICIES: tuple[str, ...] = ("always", "interval", "never")

_HEADER = struct.Struct(">II")
#: Upper bound on one record's payload; a corrupt length field must not
#: trigger a multi-gigabyte allocation during the recovery scan.
_MAX_RECORD_BYTES = 64 * 1024 * 1024

#: Record kinds the serving stack writes (the journal itself is agnostic).
RECORD_TRAFFIC = "traffic"
RECORD_COSTDIFF = "costdiff"


class JournalError(ReproError):
    """The write-ahead log could not be opened, written, or rotated."""


@dataclass(frozen=True)
class JournalRecord:
    """One durable log entry: a kind tag, a version anchor, and a payload.

    ``base_version`` is the network cost version the payload applies *on
    top of* — replay applies a record only when the recovering network sits
    exactly at its base (earlier records are already absorbed, a gap means
    the chain is broken).  The payload is whatever the writer needs to
    replay: a tuple of :class:`TrafficUpdate` for write-ahead traffic
    batches, a :class:`CostDiff` for mirrored broadcasts.
    """

    kind: str
    base_version: int
    payload: object

    @classmethod
    def traffic(
        cls, base_version: int, updates: Iterable["TrafficUpdate"]
    ) -> "JournalRecord":
        """A write-ahead record of one not-yet-applied traffic batch."""
        return cls(
            kind=RECORD_TRAFFIC, base_version=int(base_version), payload=tuple(updates)
        )

    @classmethod
    def costdiff(cls, diff: "CostDiff") -> "JournalRecord":
        """A mirror record of one already-applied versioned broadcast."""
        return cls(kind=RECORD_COSTDIFF, base_version=int(diff.base_version), payload=diff)


@dataclass
class JournalScan:
    """What a full read-back of the journal found on disk."""

    records: list[JournalRecord] = field(default_factory=list)
    truncated: bool = False
    """``True`` when any segment stopped early (torn tail or corruption) —
    the returned records are the longest replayable prefix, never a
    superset."""
    dropped_bytes: int = 0
    """Bytes past the last valid frame across all segments."""


def _encode_frame(record: JournalRecord) -> bytes:
    payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > _MAX_RECORD_BYTES:
        raise JournalError(
            f"journal record of {len(payload)} bytes exceeds the "
            f"{_MAX_RECORD_BYTES}-byte frame cap"
        )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _scan_frames(buffer: bytes) -> tuple[list[JournalRecord], int, bool]:
    """Decode the longest valid frame prefix of one segment's bytes.

    Returns ``(records, valid_end, clean)`` where ``valid_end`` is the byte
    offset just past the last intact frame and ``clean`` reports whether the
    whole buffer decoded.  Any defect — short header, short payload, CRC
    mismatch, oversized length, unpicklable payload — ends the scan; the
    caller decides whether that is a repairable torn tail (last segment) or
    a poisoned chain (anything earlier).
    """
    records: list[JournalRecord] = []
    offset = 0
    total = len(buffer)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(buffer, offset)
        if length > _MAX_RECORD_BYTES:
            break
        end = offset + _HEADER.size + length
        if end > total:
            break
        payload = buffer[offset + _HEADER.size : end]
        if zlib.crc32(payload) != crc:
            break
        try:
            record = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any unpickling defect poisons the frame
            break
        if not isinstance(record, JournalRecord):
            break
        records.append(record)
        offset = end
    return records, offset, offset == total


def _default_opener(path: str, mode: str):
    """Unbuffered binary file handles (see module docstring)."""
    # Ownership moves to the DiskJournal, which stores the handle on a
    # `self.` attribute and closes it in close()/rotation.
    # reprolint: disable-next-line=RL011
    return open(path, mode, buffering=0)


def _fsync_dir(directory: Path) -> None:
    """Make directory entries (created/renamed/deleted files) durable."""
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    fd = os.open(directory, flags)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class DiskJournal:
    """Segmented append-only WAL with CRC framing and torn-tail repair.

    Opening a journal scans every segment: the final segment's torn tail
    (if any) is truncated in place, a mid-chain defect quarantines the
    entire suffix (later segments are deleted — a broken chain must never
    be bridged), and appends resume exactly after the last intact record.
    All methods are thread-safe; appends are serialized by one lock, which
    is what makes ``(base_version, append order)`` a replayable total
    order.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "always",
        fsync_interval: int = 32,
        segment_max_bytes: int = 1 << 20,
        opener: Callable[[str, str], object] | None = None,
        kill: KillHook | None = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise JournalError(
                f"unknown fsync policy {fsync!r}; choose one of {FSYNC_POLICIES}"
            )
        if fsync_interval < 1:
            raise JournalError(f"fsync_interval must be >= 1, got {fsync_interval}")
        if segment_max_bytes < 1:
            raise JournalError(f"segment_max_bytes must be >= 1, got {segment_max_bytes}")
        self.directory = Path(directory)
        self.fsync_policy = fsync
        self.fsync_interval = int(fsync_interval)
        self.segment_max_bytes = int(segment_max_bytes)
        self._opener = opener or _default_opener
        self._kill = kill
        self._lock = threading.Lock()
        self._active = None
        self._active_index = 0
        self._active_size = 0
        self._appends_since_sync = 0
        self._spans: dict[int, tuple[int, int]] = {}
        self._closed = False
        self.records_appended = 0
        self.syncs = 0
        self.rotations = 0
        self.torn_records_dropped = 0
        self.discarded_segments = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        self._open_and_repair()

    # ------------------------------------------------------------------ #
    # Open / repair
    # ------------------------------------------------------------------ #
    def _segment_path(self, index: int) -> Path:
        return self.directory / f"wal-{index:08d}.seg"

    def segment_paths(self) -> list[Path]:
        """Existing segment files, oldest first."""
        return sorted(self.directory.glob("wal-*.seg"))

    @staticmethod
    def _segment_index(path: Path) -> int:
        return int(path.stem.split("-", 1)[1])

    def _open_and_repair(self) -> None:
        segments = self.segment_paths()
        broken_at: int | None = None
        for position, path in enumerate(segments):
            index = self._segment_index(path)
            data = path.read_bytes()
            records, valid_end, clean = _scan_frames(data)
            if records:
                bases = [record.base_version for record in records]
                self._spans[index] = (min(bases), max(bases))
            if not clean:
                # Repair: drop the defective suffix of this segment...
                os.truncate(path, valid_end)
                self.torn_records_dropped += 1
                if position < len(segments) - 1:
                    broken_at = position
                break
        if broken_at is not None:
            # ... and quarantine everything after a mid-chain defect: those
            # records sit past a gap and must never be replayed.
            for path in segments[broken_at + 1 :]:
                self._spans.pop(self._segment_index(path), None)
                path.unlink()
                self.discarded_segments += 1
            _fsync_dir(self.directory)
            segments = segments[: broken_at + 1]
        if segments:
            tail = segments[-1]
            self._active_index = self._segment_index(tail)
            self._active_size = tail.stat().st_size
        else:
            self._active_index = 1
            self._active_size = 0
            self._segment_path(1).touch()
            _fsync_dir(self.directory)
        self._active = self._opener(str(self._segment_path(self._active_index)), "ab")

    # ------------------------------------------------------------------ #
    # Appends
    # ------------------------------------------------------------------ #
    def _hit(self, point: str) -> None:
        if self._kill is not None:
            self._kill(point)

    def _sync_active(self) -> None:
        assert self._active is not None
        self._active.flush()
        os.fsync(self._active.fileno())
        self._appends_since_sync = 0
        self.syncs += 1

    def append(self, record: JournalRecord) -> int:
        """Durably append one record; returns the record's append index.

        The fsync policy decides when the bytes are forced to disk; the
        frame itself is written in two pieces (header, then payload) so the
        ``journal.append.mid-write`` kill point models a frame the crash
        cut in half — exactly the torn tail :meth:`read_records` must
        detect and drop.
        """
        frame = _encode_frame(record)
        with self._lock:
            self._ensure_open()
            assert self._active is not None
            self._hit("journal.append.pre-write")
            if self._kill is None:
                # One syscall on the hot path; the two-piece write below
                # exists only to give the mid-write kill point a real torn
                # frame to leave behind.
                self._active.write(frame)
            else:
                self._active.write(frame[: _HEADER.size])
                self._hit("journal.append.mid-write")
                self._active.write(frame[_HEADER.size :])
            self._active_size += len(frame)
            self._appends_since_sync += 1
            self.records_appended += 1
            base = int(record.base_version)
            span = self._spans.get(self._active_index)
            self._spans[self._active_index] = (
                (base, base) if span is None else (min(span[0], base), max(span[1], base))
            )
            self._hit("journal.append.pre-fsync")
            if self.fsync_policy == "always" or (
                self.fsync_policy == "interval"
                and self._appends_since_sync >= self.fsync_interval
            ):
                self._sync_active()
            self._hit("journal.append.post-fsync")
            if self._active_size >= self.segment_max_bytes:
                self._rotate()
            return self.records_appended

    def _rotate(self) -> None:
        """Seal the active segment and start the next one (durably)."""
        assert self._active is not None
        self._hit("journal.rotate.pre-create")
        if self.fsync_policy == "never":
            self._active.flush()
        else:
            self._sync_active()
        self._active.close()
        self._active_index += 1
        path = self._segment_path(self._active_index)
        self._active = self._opener(str(path), "ab")
        self._active_size = 0
        self.rotations += 1
        self._hit("journal.rotate.post-create")
        _fsync_dir(self.directory)

    def sync(self) -> None:
        """Force everything appended so far to disk, whatever the policy."""
        with self._lock:
            self._ensure_open()
            self._sync_active()

    # ------------------------------------------------------------------ #
    # Read-back / retention
    # ------------------------------------------------------------------ #
    def read_records(self) -> JournalScan:
        """Every replayable record on disk, oldest first.

        The scan validates each frame; it stops at the first defect per
        segment and — when the defect is not in the final segment — refuses
        every later segment, mirroring the open-time repair.  The live
        append handle is flushed first so a writer can read its own log.
        """
        scan = JournalScan()
        with self._lock:
            if self._active is not None and not self._closed:
                self._active.flush()
            segments = self.segment_paths()
            for position, path in enumerate(segments):
                data = path.read_bytes()
                records, valid_end, clean = _scan_frames(data)
                scan.records.extend(records)
                if not clean:
                    scan.truncated = True
                    scan.dropped_bytes += len(data) - valid_end
                    for later in segments[position + 1 :]:
                        scan.dropped_bytes += later.stat().st_size
                    break
        return scan

    def prune_through(self, version: int) -> int:
        """Delete sealed segments fully covered by a snapshot at ``version``.

        A segment is deletable when every record in it has
        ``base_version < version`` (its effects are inside the snapshot) and
        every *earlier* segment is deletable too — retention never punches
        holes in the replayable chain.  Returns the number of segments
        removed; the active segment is never touched.
        """
        removed = 0
        with self._lock:
            self._ensure_open()
            for path in self.segment_paths():
                index = self._segment_index(path)
                if index == self._active_index:
                    break
                span = self._spans.get(index)
                if span is not None and span[1] >= version:
                    break
                self._spans.pop(index, None)
                path.unlink()
                removed += 1
            if removed:
                _fsync_dir(self.directory)
        return removed

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_open(self) -> None:
        if self._closed:
            raise JournalError("this DiskJournal is closed")

    def close(self) -> None:
        """Flush (and, unless ``fsync='never'``, fsync) and close; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._active is not None:
                if self.fsync_policy == "never":
                    self._active.flush()
                else:
                    self._sync_active()
                self._active.close()
                self._active = None

    def __enter__(self) -> "DiskJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskJournal(dir={str(self.directory)!r}, segments={len(self.segment_paths())}, "
            f"appended={self.records_appended}, fsync={self.fsync_policy!r})"
        )
