"""The durability coordinator: write-ahead logging, snapshots, recovery.

:class:`DurabilityManager` owns one on-disk layout::

    <directory>/
        wal/        wal-00000001.seg ...   (DiskJournal)
        snapshots/  snapshot-000000000042.snap ...  (SnapshotStore)

and stitches the two halves together with the live serving stack:

* **Logging** — attach the manager to a :class:`~repro.traffic.feed.
  TrafficFeed` (``feed.attach_journal(manager)``) and every traffic batch
  is journaled *before* it is applied, stamped with the pre-apply
  ``cost_version``.  The sharded coordinator's
  :class:`~repro.service.sharding.replication.CostDiffJournal` mirrors its
  post-apply broadcasts through :meth:`log_costdiff`, making the disk the
  persistent tail behind the bounded in-memory ring.
* **Snapshots** — :meth:`snapshot` captures the cost arrays + version +
  topology stamp atomically, then prunes WAL segments the snapshot covers.
* **Recovery** — :meth:`recover` restores the newest valid snapshot, replays
  the WAL suffix through the normal update machinery, and verifies the
  result with the runtime sanitizer.

Replay is deterministic because the WAL stores *inputs* anchored to exact
versions: a traffic record with ``base_version == v`` is resolved against
precisely the state that existed when it was first applied, so scale/delta
updates compose identically and each effective batch advances the version
by exactly one.  The skip rule (``base_version < current`` → already
absorbed) also deduplicates the two record kinds: once a batch's traffic
record has replayed, the mirrored cost diff for the same batch anchors one
version behind and is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from ...exceptions import ReproError
from .journal import (
    RECORD_COSTDIFF,
    RECORD_TRAFFIC,
    DiskJournal,
    JournalRecord,
)
from .killpoints import KillHook
from .snapshot import SnapshotStore, topology_stamp

if TYPE_CHECKING:  # pragma: no cover
    from ...network.road_network import RoadNetwork
    from ...traffic.feed import TrafficFeed
    from ...traffic.updates import TrafficUpdate
    from ..sharding.protocol import CostDiff


class RecoveryError(ReproError):
    """Recovery produced an incoherent or unverifiable cost state."""


@dataclass
class RecoveryReport:
    """What one :meth:`DurabilityManager.recover` call did."""

    snapshot_version: int | None = None
    snapshot_path: str | None = None
    replayed: int = 0
    """Records whose effects were applied during replay."""
    skipped: int = 0
    """Records anchored below the current version — already absorbed."""
    failed: int = 0
    """Records that raised on replay (they raised identically when first
    logged, so the original run never applied them either)."""
    gap: bool = False
    """Replay stopped early: a record anchored *above* the current version
    means the chain is broken past this point."""
    truncated_tail: bool = False
    """The WAL scan dropped torn/corrupt bytes (never replayed)."""
    recovered_version: int = 0
    verified: bool = False
    notes: list[str] = field(default_factory=list)


class DurabilityManager:
    """One durable home (WAL + snapshots) for one network's cost state.

    Construction opens (and, after a crash, repairs) the journal, so simply
    building a manager over an existing directory is the first half of
    restart; :meth:`recover` is the second.  ``opener`` and ``kill`` are
    forwarded to both stores for fault injection and crash-point testing.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "always",
        fsync_interval: int = 32,
        segment_max_bytes: int = 1 << 20,
        retain: int = 2,
        opener: Callable[[str, str], object] | None = None,
        kill: KillHook | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.journal = DiskJournal(
            self.directory / "wal",
            fsync=fsync,
            fsync_interval=fsync_interval,
            segment_max_bytes=segment_max_bytes,
            opener=opener,
            kill=kill,
        )
        self.snapshots = SnapshotStore(
            self.directory / "snapshots",
            retain=retain,
            opener=opener,
            kill=kill,
        )
        self._kill = kill
        self._replaying = False

    def _hit(self, point: str) -> None:
        if self._kill is not None:
            self._kill(point)

    # ------------------------------------------------------------------ #
    # Logging (the TrafficFeed / CostDiffJournal hooks)
    # ------------------------------------------------------------------ #
    def log_traffic(
        self, updates: Iterable["TrafficUpdate"], base_version: int
    ) -> None:
        """Write-ahead log one raw traffic batch (called by the feed,
        inside its lock, *before* the batch is applied)."""
        if self._replaying:
            return
        self.journal.append(JournalRecord.traffic(base_version, updates))

    def log_costdiff(self, diff: "CostDiff") -> None:
        """Mirror one applied broadcast (the in-memory ring's disk tail)."""
        if self._replaying:
            return
        self.journal.append(JournalRecord.costdiff(diff))

    def costdiff_records(self) -> list["CostDiff"]:
        """Every replayable mirrored :class:`CostDiff` on disk, oldest
        first — the persistent tail :meth:`CostDiffJournal.chain` falls
        back to when its in-memory ring has already evicted a version."""
        return [
            record.payload
            for record in self.journal.read_records().records
            if record.kind == RECORD_COSTDIFF
        ]

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self, network: "RoadNetwork") -> Path:
        """Atomically snapshot the current cost state, then prune the WAL.

        Must not race a concurrent ``feed.apply`` (call it from a feed
        subscriber, a quiesced maintenance window, or the serving loop's
        own thread): the version stamp and the array export must describe
        the same instant.
        """
        compiled = network.compiled()
        version = network.cost_version
        arrays = compiled.costs.export_arrays()
        stamp = topology_stamp(compiled.topology)
        path = self.snapshots.save(version, arrays, stamp)
        self._hit("snapshot.pre-prune")
        self.journal.prune_through(version)
        return path

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def recover(
        self,
        network: "RoadNetwork",
        feed: "TrafficFeed | None" = None,
        *,
        verify: bool = True,
    ) -> RecoveryReport:
        """Restore snapshot + replay WAL suffix onto ``network``.

        ``network`` is expected to be freshly loaded from the model file
        (pristine costs, ``cost_version`` as pickled).  Traffic records
        replay through ``feed`` (one is built if not given) so resolution
        semantics — absolute → scale → delta against current state — are
        byte-for-byte the production ones; mirrored cost diffs apply their
        absolute values directly.  With ``verify=True`` the recovered state
        must pass the runtime coherence check or :class:`RecoveryError` is
        raised.
        """
        from ...traffic.feed import TrafficFeed

        report = RecoveryReport()
        self._replaying = True
        try:
            compiled = network.compiled()
            stamp = topology_stamp(compiled.topology)
            state = self.snapshots.latest(topology=stamp)
            if state is not None:
                try:
                    network.restore_cost_state(state.arrays, state.cost_version)
                except Exception as exc:
                    # CRC-valid but semantically unusable arrays (the network
                    # validates shape/finiteness/positivity on adoption).
                    raise RecoveryError(
                        f"snapshot {state.path} failed adoption: {exc}"
                    ) from exc
                report.snapshot_version = state.cost_version
                report.snapshot_path = str(state.path)
            elif self.snapshots.invalid_skipped:
                report.notes.append(
                    "no usable snapshot (damaged or topology mismatch); "
                    "replaying the full journal from the model's base state"
                )
            scan = self.journal.read_records()
            report.truncated_tail = scan.truncated
            if scan.truncated:
                report.notes.append(
                    f"journal tail dropped {scan.dropped_bytes} torn/corrupt bytes"
                )
            feed = feed if feed is not None else TrafficFeed(network)
            for record in scan.records:
                current = network.cost_version
                if record.base_version < current:
                    report.skipped += 1
                    continue
                if record.base_version > current:
                    report.gap = True
                    report.notes.append(
                        f"replay gap: record anchored at {record.base_version} "
                        f"but network is at {current}; suffix not replayable"
                    )
                    break
                try:
                    if record.kind == RECORD_TRAFFIC:
                        feed.apply(record.payload)
                    elif record.kind == RECORD_COSTDIFF:
                        network.update_edge_costs(record.payload.as_updates())
                    else:
                        report.failed += 1
                        continue
                except Exception:  # noqa: BLE001 - failed identically pre-crash
                    report.failed += 1
                    continue
                report.replayed += 1
            report.recovered_version = network.cost_version
            if verify:
                self._verify(network, report)
            return report
        finally:
            self._replaying = False

    @staticmethod
    def _verify(network: "RoadNetwork", report: RecoveryReport) -> None:
        from ...analysis import check_cost_coherence

        try:
            check_cost_coherence(network, strict=True)
        except Exception as exc:
            raise RecoveryError(
                f"recovered cost state failed coherence verification: {exc}"
            ) from exc
        report.verified = True

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self.journal.close()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DurabilityManager(dir={str(self.directory)!r}, "
            f"appended={self.journal.records_appended}, "
            f"snapshots={len(self.snapshots.snapshot_paths())})"
        )
