"""Crash-consistent durability for the serving stack's live cost state.

Three layers, bottom up:

* :mod:`~repro.service.durability.journal` — :class:`DiskJournal`, a
  segmented CRC-framed write-ahead log with configurable fsync policy and
  torn-tail repair;
* :mod:`~repro.service.durability.snapshot` — :class:`SnapshotStore`,
  atomic (temp → fsync → ``os.replace`` → dir fsync) snapshots of the cost
  arrays with bounded retention;
* :mod:`~repro.service.durability.manager` — :class:`DurabilityManager`,
  which wires both into the :class:`~repro.traffic.feed.TrafficFeed` /
  :class:`~repro.service.sharding.replication.CostDiffJournal` write paths
  and owns the snapshot-restore + WAL-replay recovery flow.

:mod:`~repro.service.durability.killpoints` and
:mod:`~repro.service.durability.chaos` are the proof obligations: named
crash instants threaded through every durable write, and a harness showing
recovery from each one is bit-identical to an uninterrupted run.
"""

from .chaos import (
    ChaosResult,
    crash_and_recover,
    final_state,
    reference_state,
    run_killpoint_matrix,
    states_identical,
)
from .journal import (
    FSYNC_POLICIES,
    RECORD_COSTDIFF,
    RECORD_TRAFFIC,
    DiskJournal,
    JournalError,
    JournalRecord,
    JournalScan,
)
from .killpoints import KILL_POINTS, KillSwitch, SimulatedCrash
from .manager import DurabilityManager, RecoveryError, RecoveryReport
from .snapshot import SnapshotError, SnapshotState, SnapshotStore, topology_stamp

__all__ = [
    "ChaosResult",
    "DiskJournal",
    "DurabilityManager",
    "FSYNC_POLICIES",
    "JournalError",
    "JournalRecord",
    "JournalScan",
    "KILL_POINTS",
    "KillSwitch",
    "RECORD_COSTDIFF",
    "RECORD_TRAFFIC",
    "RecoveryError",
    "RecoveryReport",
    "SimulatedCrash",
    "SnapshotError",
    "SnapshotState",
    "SnapshotStore",
    "crash_and_recover",
    "final_state",
    "reference_state",
    "run_killpoint_matrix",
    "states_identical",
    "topology_stamp",
]
