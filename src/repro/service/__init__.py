"""The routing service layer: one serving API over interchangeable engines.

* :mod:`repro.service.api` — typed :class:`RouteRequest` / :class:`RouteResponse`
* :mod:`repro.service.engine` — the :class:`RoutingEngine` protocol + adapters
* :mod:`repro.service.service` — the :class:`RoutingService` facade
  (registry, batch routing, fallback chains, LRU route cache)
* :mod:`repro.service.stats` — :class:`ServiceStats` monitoring snapshots
* :mod:`repro.service.resilience` — deadline budgets, bounded retries,
  per-engine circuit breakers, admission control
* :mod:`repro.service.faults` — deterministic fault injection for chaos tests
* :mod:`repro.service.persistence` — save / load fitted L2R models
* :mod:`repro.service.sharding` — sharded multi-process serving over a
  shared-memory compiled graph (:class:`ShardedRoutingService`)
* :mod:`repro.service.durability` — crash-consistent disk WAL + snapshots
  and the recovery path (:class:`DurabilityManager`)
"""

from .api import RouteRequest, RouteResponse
from .cache import CacheStats, RouteCache
from .durability import (
    KILL_POINTS,
    DiskJournal,
    DurabilityManager,
    JournalError,
    JournalRecord,
    KillSwitch,
    RecoveryError,
    RecoveryReport,
    SimulatedCrash,
    SnapshotError,
    SnapshotStore,
)
from .engine import (
    AlgorithmEngine,
    BaseEngine,
    ContractionEngine,
    FunctionEngine,
    L2REngine,
    RoutingEngine,
)
from .faults import FaultCounters, FaultInjector
from .persistence import ModelPersistenceError, load_model, save_model
from .resilience import (
    AdmissionController,
    CircuitBreaker,
    CircuitBreakerConfig,
    DeadlineBudget,
    HedgePolicy,
    RetryPolicy,
)
from .service import RoutingService
from .sharding import (
    ShardedRoutingService,
    ShardPlan,
    ShardWorkerPool,
    SocketTransport,
    TcpHub,
    build_shard_plan,
)
from .stats import ServiceStats, StatsAccumulator

__all__ = [
    "AdmissionController",
    "AlgorithmEngine",
    "BaseEngine",
    "CacheStats",
    "CircuitBreaker",
    "CircuitBreakerConfig",
    "ContractionEngine",
    "DeadlineBudget",
    "DiskJournal",
    "DurabilityManager",
    "FaultCounters",
    "FaultInjector",
    "FunctionEngine",
    "HedgePolicy",
    "JournalError",
    "JournalRecord",
    "KILL_POINTS",
    "KillSwitch",
    "L2REngine",
    "ModelPersistenceError",
    "RecoveryError",
    "RecoveryReport",
    "RetryPolicy",
    "SimulatedCrash",
    "SnapshotError",
    "SnapshotStore",
    "RouteCache",
    "RouteRequest",
    "RouteResponse",
    "RoutingEngine",
    "RoutingService",
    "ServiceStats",
    "ShardPlan",
    "ShardWorkerPool",
    "ShardedRoutingService",
    "SocketTransport",
    "StatsAccumulator",
    "TcpHub",
    "build_shard_plan",
    "load_model",
    "save_model",
]
