"""The routing service layer: one serving API over interchangeable engines.

* :mod:`repro.service.api` — typed :class:`RouteRequest` / :class:`RouteResponse`
* :mod:`repro.service.engine` — the :class:`RoutingEngine` protocol + adapters
* :mod:`repro.service.service` — the :class:`RoutingService` facade
  (registry, batch routing, fallback chains, LRU route cache)
* :mod:`repro.service.stats` — :class:`ServiceStats` monitoring snapshots
* :mod:`repro.service.persistence` — save / load fitted L2R models
"""

from .api import RouteRequest, RouteResponse
from .cache import CacheStats, RouteCache
from .engine import (
    AlgorithmEngine,
    BaseEngine,
    ContractionEngine,
    FunctionEngine,
    L2REngine,
    RoutingEngine,
)
from .persistence import ModelPersistenceError, load_model, save_model
from .service import RoutingService
from .stats import ServiceStats, StatsAccumulator

__all__ = [
    "AlgorithmEngine",
    "BaseEngine",
    "CacheStats",
    "ContractionEngine",
    "FunctionEngine",
    "L2REngine",
    "ModelPersistenceError",
    "RouteCache",
    "RouteRequest",
    "RouteResponse",
    "RoutingEngine",
    "RoutingService",
    "ServiceStats",
    "StatsAccumulator",
    "load_model",
    "save_model",
]
