"""Deterministic fault injection for chaos-testing the serving stack.

A :class:`FaultInjector` wraps any :class:`~repro.service.engine.RoutingEngine`
or :class:`~repro.traffic.feed.TrafficFeed` with a *seeded* schedule of
latency spikes, raised :class:`~repro.exceptions.TransientEngineError`\\ s,
and dropped / delayed traffic batches.  Every random decision comes from a
per-wrapper ``np.random.Generator`` derived from the injector seed (in the
style of the seeded condition grids of SNIPPETS.md Snippet 3), so a chaos
run is exactly replayable: the same seed produces the same fault sequence,
the same breaker trips, and the same shed / degraded counters — in tests
and in CI.

Three wrapper kinds:

* :meth:`FaultInjector.engine` — a :class:`FaultyEngine` that, per call,
  may sleep (latency spike) and/or raise a ``TransientEngineError`` before
  delegating.  It deliberately does **not** forward ``batch_cost``, so the
  service cannot batch around it — faults always apply.
* :meth:`FaultInjector.feed` — a :class:`FaultyFeed` whose ``apply`` may
  drop the batch (returning an empty result), delay it, or raise, modelling
  lossy / crashing ingestion in front of a
  :class:`~repro.traffic.drain.TrafficDrain`.
* :meth:`FaultInjector.transport` — a :class:`FaultyTransport` wrapping any
  :class:`~repro.service.sharding.protocol.Transport` with send-side drops,
  delays, and duplicates, plus *one-way partitions* (sends silently lost,
  or receives blacked out, independently) — the message-level chaos the
  multi-node serving tests are built on.
* :meth:`FaultInjector.disk` — a :class:`FaultyDisk` that wraps file-like
  objects (or stands in as the ``opener`` hook of a
  :class:`~repro.service.durability.journal.DiskJournal` /
  :class:`~repro.service.durability.snapshot.SnapshotStore`) with seeded
  short writes, ``EIO`` / ``ENOSPC`` errors, and crash-before/after-fsync
  schedules.  Its :class:`FaultyFile` buffers writes in memory and only
  pushes them to the real file on flush — modeling the OS page cache, so a
  ``crash-before-fsync`` genuinely *loses* unflushed bytes the way a power
  cut would, which an in-process crash simulation otherwise cannot do.

Instead of probabilities, an explicit ``script`` (sequence of action names,
cycled) pins the exact failure pattern — the breaker state-transition tests
are written against scripts.
"""

from __future__ import annotations

import itertools
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..exceptions import TransientEngineError
from .api import RouteRequest, RouteResponse

if TYPE_CHECKING:  # pragma: no cover
    from ..traffic.feed import TrafficFeed
    from ..traffic.updates import TrafficUpdate, TrafficUpdateResult
    from .engine import RoutingEngine
    from .sharding.protocol import Transport

#: Engine actions a script may name.
ENGINE_ACTIONS = ("ok", "error", "slow")
#: Feed actions a script may name.
FEED_ACTIONS = ("ok", "error", "drop", "delay")
#: Transport send actions a script may name.
TRANSPORT_ACTIONS = ("ok", "drop", "delay", "duplicate")
#: Disk write actions a script may name.
DISK_WRITE_ACTIONS = ("ok", "short", "eio", "enospc")
#: Disk flush actions a script may name.
DISK_FLUSH_ACTIONS = ("ok", "crash-before-fsync", "crash-after-fsync")


@dataclass
class FaultCounters:
    """Mutable per-wrapper accounting (thread-safe via the wrapper lock)."""

    calls: int = 0
    injected_errors: int = 0
    injected_spikes: int = 0
    dropped_batches: int = 0
    delayed_batches: int = 0
    dropped_messages: int = 0
    delayed_messages: int = 0
    duplicated_messages: int = 0
    partitioned_messages: int = 0
    """Messages silently lost to an active one-way partition (not part of
    the seeded schedule — partitions are explicit test choreography)."""
    short_writes: int = 0
    disk_errors: int = 0
    """Injected ``EIO`` / ``ENOSPC`` write failures."""
    disk_crashes: int = 0
    """Injected crash-before/after-fsync events (power-cut simulation)."""
    lost_bytes: int = 0
    """Bytes dropped from the simulated page cache by crash-before-fsync
    (plus the unwritten suffix of short writes)."""
    actions: list[str] = field(default_factory=list)
    """Action taken per call, in order — the replayable schedule itself."""


class FaultInjector:
    """Factory for seeded faulty wrappers sharing one experiment seed.

    Each wrapper gets its own child generator (``default_rng([seed, n])``
    where ``n`` is the wrapper index), so the fault schedule of one wrapper
    is independent of how often the others are called — concurrency between
    wrappers cannot perturb replay.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._wrappers = 0
        self._lock = threading.Lock()

    def _child_rng(self) -> np.random.Generator:
        with self._lock:
            index = self._wrappers
            self._wrappers += 1
        return np.random.default_rng([self.seed, index])

    def engine(
        self,
        engine: "RoutingEngine",
        *,
        error_rate: float = 0.0,
        spike_rate: float = 0.0,
        spike_s: float = 0.005,
        script: Sequence[str] | None = None,
    ) -> "FaultyEngine":
        """Wrap a routing engine with a seeded (or scripted) fault schedule."""
        return FaultyEngine(
            engine,
            rng=self._child_rng(),
            error_rate=error_rate,
            spike_rate=spike_rate,
            spike_s=spike_s,
            script=script,
        )

    def feed(
        self,
        feed: "TrafficFeed",
        *,
        error_rate: float = 0.0,
        drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_s: float = 0.005,
        script: Sequence[str] | None = None,
    ) -> "FaultyFeed":
        """Wrap a traffic feed with a seeded (or scripted) fault schedule."""
        return FaultyFeed(
            feed,
            rng=self._child_rng(),
            error_rate=error_rate,
            drop_rate=drop_rate,
            delay_rate=delay_rate,
            delay_s=delay_s,
            script=script,
        )

    def transport(
        self,
        transport: "Transport",
        *,
        drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_s: float = 0.005,
        script: Sequence[str] | None = None,
    ) -> "FaultyTransport":
        """Wrap a protocol transport with a seeded (or scripted) schedule of
        message-level faults."""
        return FaultyTransport(
            transport,
            rng=self._child_rng(),
            drop_rate=drop_rate,
            delay_rate=delay_rate,
            duplicate_rate=duplicate_rate,
            delay_s=delay_s,
            script=script,
        )

    def disk(
        self,
        *,
        short_rate: float = 0.0,
        eio_rate: float = 0.0,
        enospc_rate: float = 0.0,
        crash_before_fsync_rate: float = 0.0,
        crash_after_fsync_rate: float = 0.0,
        write_script: Sequence[str] | None = None,
        flush_script: Sequence[str] | None = None,
    ) -> "FaultyDisk":
        """A seeded (or scripted) disk-fault layer for file-like objects.

        The returned :class:`FaultyDisk` is callable with ``(path, mode)``
        so it can be handed directly to the ``opener=`` hook of
        :class:`~repro.service.durability.journal.DiskJournal` /
        :class:`~repro.service.durability.snapshot.SnapshotStore`, or wrap
        an already-open handle via :meth:`FaultyDisk.wrap`.  Write faults
        and flush faults draw from independent child generators so the
        write schedule never perturbs the crash schedule.
        """
        return FaultyDisk(
            write_rng=self._child_rng(),
            flush_rng=self._child_rng(),
            short_rate=short_rate,
            eio_rate=eio_rate,
            enospc_rate=enospc_rate,
            crash_before_fsync_rate=crash_before_fsync_rate,
            crash_after_fsync_rate=crash_after_fsync_rate,
            write_script=write_script,
            flush_script=flush_script,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector(seed={self.seed}, wrappers={self._wrappers})"


class _ScheduledWrapper:
    """Shared decision machinery: scripted actions or seeded draws."""

    def __init__(
        self,
        rng: np.random.Generator,
        script: Sequence[str] | None,
        valid_actions: tuple[str, ...],
    ) -> None:
        self._rng = rng
        self._lock = threading.Lock()
        self.counters = FaultCounters()
        if script is not None:
            unknown = sorted(set(script) - set(valid_actions))
            if unknown:
                raise ValueError(
                    f"unknown fault-script action(s) {unknown}; valid: {valid_actions}"
                )
            self._script: "itertools.cycle[str] | None" = itertools.cycle(script)
        else:
            self._script = None

    def _decide(self, rates: Sequence[tuple[str, float]]) -> str:
        """One action for this call: scripted, or first rate that fires.

        Exactly one uniform draw happens per configured rate per call —
        whether or not an earlier rate already fired — so the consumed
        randomness (and therefore the whole downstream schedule) depends
        only on the call index, never on prior outcomes.
        """
        with self._lock:
            self.counters.calls += 1
            if self._script is not None:
                action = next(self._script)
            else:
                action = "ok"
                for name, rate in rates:
                    draw = float(self._rng.random())
                    if action == "ok" and rate > 0.0 and draw < rate:
                        action = name
            self.counters.actions.append(action)
            return action


class FaultyEngine(_ScheduledWrapper):
    """A routing engine that injects scheduled latency spikes and errors.

    Satisfies the :class:`~repro.service.engine.RoutingEngine` protocol.
    ``peak_hours``, ``cache_version``, and ``network`` are forwarded from
    the wrapped engine (cache and degraded-serving semantics must not
    change); ``batch_cost`` is *not*, so batched ``route_many`` kernels
    cannot bypass the faults.
    """

    def __init__(
        self,
        engine: "RoutingEngine",
        *,
        rng: np.random.Generator,
        error_rate: float = 0.0,
        spike_rate: float = 0.0,
        spike_s: float = 0.005,
        script: Sequence[str] | None = None,
    ) -> None:
        super().__init__(rng, script, ENGINE_ACTIONS)
        self.inner = engine
        self.name = engine.name
        self.error_rate = error_rate
        self.spike_rate = spike_rate
        self.spike_s = spike_s

    @property
    def peak_hours(self):
        return getattr(self.inner, "peak_hours", None)

    @property
    def cache_version(self):
        return getattr(self.inner, "cache_version", None)

    @property
    def network(self):
        """Forwarded so degraded responses can report the served cost
        version; batching stays blocked because ``batch_cost`` is not
        forwarded (``route_many`` requires both)."""
        return getattr(self.inner, "network", None)

    def route(self, request: RouteRequest) -> RouteResponse:
        action = self._decide(
            (("error", self.error_rate), ("slow", self.spike_rate))
        )
        if action == "slow":
            with self._lock:
                self.counters.injected_spikes += 1
            time.sleep(self.spike_s)
        elif action == "error":
            with self._lock:
                self.counters.injected_errors += 1
            raise TransientEngineError(
                f"injected fault in engine {self.name!r} "
                f"(call {self.counters.calls})"
            )
        return self.inner.route(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultyEngine({self.inner!r}, calls={self.counters.calls})"


class FaultyFeed:
    """A traffic feed whose ``apply`` may drop, delay, or crash per schedule.

    Duck-types the :class:`~repro.traffic.feed.TrafficFeed` surface a
    :class:`~repro.traffic.drain.TrafficDrain` uses (``apply``, ``network``,
    ``subscribe``), so it can sit between a drain and the real feed.
    """

    def __init__(
        self,
        feed: "TrafficFeed",
        *,
        rng: np.random.Generator,
        error_rate: float = 0.0,
        drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_s: float = 0.005,
        script: Sequence[str] | None = None,
    ) -> None:
        self._scheduler = _ScheduledWrapper(rng, script, FEED_ACTIONS)
        self.inner = feed
        self.error_rate = error_rate
        self.drop_rate = drop_rate
        self.delay_rate = delay_rate
        self.delay_s = delay_s

    @property
    def counters(self) -> FaultCounters:
        return self._scheduler.counters

    @property
    def network(self):
        return self.inner.network

    def subscribe(self, callback):
        return self.inner.subscribe(callback)

    def apply(self, updates: "Iterable[TrafficUpdate]") -> "TrafficUpdateResult":
        from ..traffic.updates import TrafficUpdateResult

        batch = list(updates)
        action = self._scheduler._decide(
            (
                ("error", self.error_rate),
                ("drop", self.drop_rate),
                ("delay", self.delay_rate),
            )
        )
        counters = self._scheduler.counters
        lock = self._scheduler._lock
        if action == "error":
            with lock:
                counters.injected_errors += 1
            raise TransientEngineError(
                f"injected fault applying traffic batch (call {counters.calls})"
            )
        if action == "drop":
            with lock:
                counters.dropped_batches += 1
            # The batch is lost: report an empty, truthful result.
            return TrafficUpdateResult(
                touched_edges=frozenset(),
                cost_version=self.inner.network.cost_version,
                applied=0,
            )
        if action == "delay":
            with lock:
                counters.delayed_batches += 1
            time.sleep(self.delay_s)
        return self.inner.apply(batch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultyFeed({self.inner!r}, calls={self.counters.calls})"


class FaultyTransport:
    """A protocol transport whose *sends* misbehave per seeded schedule.

    Satisfies the :class:`~repro.service.sharding.protocol.Transport`
    protocol, so it drops between a :class:`~repro.service.sharding.worker.
    ShardWorker` (or a coordinator-side endpoint) and any real transport.
    The scheduled faults are send-side — ``drop`` loses the message,
    ``delay`` sleeps before delivery, ``duplicate`` delivers it twice (the
    at-least-once failure mode every versioned/idempotent message must
    tolerate).  On top of the schedule, :meth:`partition` opens explicit
    *one-way* partitions: an outbound partition silently swallows sends, an
    inbound partition makes ``recv`` time out as if the peer went dark.
    Partitions are deliberate test choreography (not random), so healing
    them at a known point keeps chaos runs replayable.
    """

    def __init__(
        self,
        transport: "Transport",
        *,
        rng: np.random.Generator,
        drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_s: float = 0.005,
        script: Sequence[str] | None = None,
    ) -> None:
        self._scheduler = _ScheduledWrapper(rng, script, TRANSPORT_ACTIONS)
        self.inner = transport
        self.drop_rate = drop_rate
        self.delay_rate = delay_rate
        self.duplicate_rate = duplicate_rate
        self.delay_s = delay_s
        self._partition_outbound = False
        self._partition_inbound = False

    @property
    def counters(self) -> FaultCounters:
        return self._scheduler.counters

    # -- partitions ------------------------------------------------------ #
    def partition(self, *, outbound: bool = True, inbound: bool = True) -> None:
        """Open a (possibly one-way) partition until :meth:`heal`."""
        self._partition_outbound = self._partition_outbound or outbound
        self._partition_inbound = self._partition_inbound or inbound

    def heal(self) -> None:
        """Close any open partition; scheduled faults keep applying."""
        self._partition_outbound = False
        self._partition_inbound = False

    @property
    def partitioned(self) -> bool:
        return self._partition_outbound or self._partition_inbound

    # -- Transport protocol ---------------------------------------------- #
    def send(self, message: object) -> None:
        if self._partition_outbound:
            with self._scheduler._lock:
                self.counters.partitioned_messages += 1
            return
        action = self._scheduler._decide(
            (
                ("drop", self.drop_rate),
                ("delay", self.delay_rate),
                ("duplicate", self.duplicate_rate),
            )
        )
        counters = self._scheduler.counters
        lock = self._scheduler._lock
        if action == "drop":
            with lock:
                counters.dropped_messages += 1
            return
        if action == "delay":
            with lock:
                counters.delayed_messages += 1
            time.sleep(self.delay_s)
        elif action == "duplicate":
            with lock:
                counters.duplicated_messages += 1
            self.inner.send(message)
        self.inner.send(message)

    def recv(self, timeout_s: float | None = None) -> object:
        if self._partition_inbound:
            # The peer has gone dark: behave exactly like an idle link —
            # wait out the poll budget, then report nothing arrived.
            time.sleep(timeout_s if timeout_s is not None else 0.05)
            raise queue_module.Empty()
        return self.inner.recv(timeout_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultyTransport({self.inner!r}, calls={self.counters.calls}, "
            f"partitioned={self.partitioned})"
        )


class FaultyDisk:
    """Factory for :class:`FaultyFile` wrappers sharing one fault schedule.

    Callable as an ``opener(path, mode)`` (opens the real file unbuffered
    underneath) and usable as :meth:`wrap` around any binary file-like
    object.  All files opened through one ``FaultyDisk`` consume the same
    two schedules — one per-``write`` (short / ``EIO`` / ``ENOSPC``), one
    per-``flush`` (crash before / after fsync) — so a multi-file component
    like the segmented journal sees one coherent, replayable fault
    sequence.
    """

    def __init__(
        self,
        *,
        write_rng: np.random.Generator,
        flush_rng: np.random.Generator,
        short_rate: float = 0.0,
        eio_rate: float = 0.0,
        enospc_rate: float = 0.0,
        crash_before_fsync_rate: float = 0.0,
        crash_after_fsync_rate: float = 0.0,
        write_script: Sequence[str] | None = None,
        flush_script: Sequence[str] | None = None,
    ) -> None:
        self._writes = _ScheduledWrapper(write_rng, write_script, DISK_WRITE_ACTIONS)
        self._flushes = _ScheduledWrapper(flush_rng, flush_script, DISK_FLUSH_ACTIONS)
        self.short_rate = short_rate
        self.eio_rate = eio_rate
        self.enospc_rate = enospc_rate
        self.crash_before_fsync_rate = crash_before_fsync_rate
        self.crash_after_fsync_rate = crash_after_fsync_rate

    @property
    def write_counters(self) -> FaultCounters:
        return self._writes.counters

    @property
    def flush_counters(self) -> FaultCounters:
        return self._flushes.counters

    def __call__(self, path: str, mode: str) -> "FaultyFile":
        # Opener hook: ownership moves to the caller, which closes the
        # wrapping FaultyFile.
        # reprolint: disable-next-line=RL011
        return self.wrap(open(path, mode, buffering=0))

    def wrap(self, inner) -> "FaultyFile":
        """Wrap an already-open binary file-like object."""
        return FaultyFile(inner, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultyDisk(writes={self.write_counters.calls}, "
            f"flushes={self.flush_counters.calls})"
        )


class FaultyFile:
    """A binary file wrapper with a simulated page cache and fault schedule.

    ``write`` appends to an in-memory buffer (the "page cache"); ``flush``
    pushes the buffer to the real file.  Faults:

    * ``short`` — a seeded prefix of the data reaches the buffer, then
      ``OSError(EIO)`` is raised (a partial write the caller sees fail);
    * ``eio`` / ``enospc`` — nothing is written, ``OSError`` raised;
    * ``crash-before-fsync`` — the buffer is *discarded* and
      :class:`~repro.service.durability.killpoints.SimulatedCrash` raised:
      power died before the data left the page cache;
    * ``crash-after-fsync`` — the buffer is pushed, flushed, and fsynced,
      *then* the crash is raised: the data is durable but the writer never
      learned so.

    ``fileno`` forwards to the real file, so an ``os.fsync(f.fileno())``
    after a clean ``flush`` behaves exactly like production code expects.
    """

    def __init__(self, inner, disk: FaultyDisk) -> None:
        self.inner = inner
        self._disk = disk
        self._buffer = bytearray()
        self._closed = False

    # -- write path ------------------------------------------------------ #
    def write(self, data) -> int:
        import errno as _errno

        data = bytes(data)
        disk = self._disk
        action = disk._writes._decide(
            (
                ("short", disk.short_rate),
                ("eio", disk.eio_rate),
                ("enospc", disk.enospc_rate),
            )
        )
        counters = disk._writes.counters
        lock = disk._writes._lock
        if action == "short":
            # The prefix length is a seeded draw from the *write* stream so
            # replays tear the frame at the same byte every time.
            with lock:
                counters.short_writes += 1
                cut = int(disk._writes._rng.integers(0, len(data))) if data else 0
                counters.lost_bytes += len(data) - cut
            self._buffer.extend(data[:cut])
            raise OSError(_errno.EIO, f"simulated short write ({cut}/{len(data)} bytes)")
        if action == "eio":
            with lock:
                counters.disk_errors += 1
            raise OSError(_errno.EIO, "simulated I/O error")
        if action == "enospc":
            with lock:
                counters.disk_errors += 1
            raise OSError(_errno.ENOSPC, "simulated: no space left on device")
        self._buffer.extend(data)
        return len(data)

    def _push(self) -> None:
        if self._buffer:
            self.inner.write(bytes(self._buffer))
            self._buffer.clear()
        self.inner.flush()

    def flush(self) -> None:
        from .durability.killpoints import SimulatedCrash

        disk = self._disk
        action = disk._flushes._decide(
            (
                ("crash-before-fsync", disk.crash_before_fsync_rate),
                ("crash-after-fsync", disk.crash_after_fsync_rate),
            )
        )
        counters = disk._flushes.counters
        lock = disk._flushes._lock
        if action == "crash-before-fsync":
            with lock:
                counters.disk_crashes += 1
                counters.lost_bytes += len(self._buffer)
            self._buffer.clear()
            raise SimulatedCrash("disk.crash-before-fsync")
        if action == "crash-after-fsync":
            self._push()
            import os as _os

            _os.fsync(self.inner.fileno())
            with lock:
                counters.disk_crashes += 1
            raise SimulatedCrash("disk.crash-after-fsync")
        self._push()

    # -- passthrough ----------------------------------------------------- #
    def fileno(self) -> int:
        return self.inner.fileno()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._push()
        finally:
            self.inner.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultyFile({self.inner!r}, buffered={len(self._buffer)})"
