"""Typed request / response objects of the routing service.

A :class:`RouteRequest` describes one (source, destination) query together
with the optional context a production routing service accepts: a departure
time, the requesting driver, a per-request cost override, and a caller-chosen
request id for correlation.  A :class:`RouteResponse` is the service's answer:
the recommended path, routing diagnostics, the engine that produced it, the
observed latency, whether the answer came from the route cache, and — for
partial-batch failures — the error that prevented an answer.

Both objects are immutable so they can be shared freely between the service's
worker threads, cached, and logged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.router import RouteDiagnostics
from ..network.road_network import VertexId
from ..routing.costs import CostFeature
from ..routing.path import Path


@dataclass(frozen=True)
class RouteRequest:
    """One routing query as accepted by :class:`~repro.service.RoutingService`."""

    source: VertexId
    destination: VertexId
    departure_time: float | None = None
    """Requested departure time (seconds of day).  Engines that are not
    time-dependent ignore it for path selection, but the value is always
    echoed back on the response via :attr:`RouteResponse.request`."""
    driver_id: int | None = None
    """Driver identity, used by the personalized engines (Dom, TRIP)."""
    cost_override: CostFeature | None = None
    """Per-request preference override: when set, the engine answers with the
    single-cost optimal path for this feature instead of its own policy."""
    goal_directed: bool | None = None
    """Per-request opt-in to goal-directed (ALT landmark) search for requests
    that reduce to a single-cost query.  ``None`` defers to the engine's (or
    the service's) configuration.  Goal-directed answers are cost-optimal but
    may pick a different equal-cost path than the Dijkstra reference."""
    request_id: str | None = None
    """Caller-chosen correlation id, echoed back unchanged."""
    deadline_s: float | None = None
    """Per-request wall-clock budget (seconds).  The service threads a
    :class:`~repro.service.resilience.DeadlineBudget` through the fallback
    chain and retry backoff: once the budget is spent, remaining engines are
    skipped and the request degrades (stale cached route, flagged) or fails
    with ``DeadlineExceededError``.  ``None`` defers to the service-level
    default (``RoutingService(deadline_s=...)``); both ``None`` means no
    deadline."""


@dataclass(frozen=True)
class RouteResponse:
    """The service's answer to one :class:`RouteRequest`."""

    request: RouteRequest
    """The originating request (including the requested departure time)."""
    path: Path | None
    """The recommended path, or ``None`` when the request failed."""
    engine: str
    """Name of the engine that produced the answer (after any fallback).
    Responses served through a :class:`~repro.service.RoutingService` carry
    the *registry* name the answering engine was registered under."""
    diagnostics: RouteDiagnostics | None = None
    latency_s: float = 0.0
    """Wall-clock time spent answering (near zero on cache hits)."""
    cache_hit: bool = False
    fallback_used: bool = False
    """True when the answer came from a fallback engine, not the one asked."""
    batched: bool = False
    """True when the answer was computed by a batched ``route_many`` kernel
    call rather than a single-request engine invocation.  ``latency_s`` is
    then the batch's wall-clock time amortized over its requests, and the
    service accounts it separately (see ``ServiceStats``)."""
    degraded: bool = False
    """True when every live engine failed (timeout, crash, open breaker)
    within the request's budget and the service served a **stale cached
    route** instead of an error.  The path may predate live-traffic cost
    updates; ``diagnostics.served_cost_version`` records the network cost
    version the answer was computed under.  Degraded responses are never
    re-cached."""
    retries: int = 0
    """Engine attempts beyond the first across the whole fallback chain
    (the resilience layer's bounded-retry accounting for this request)."""
    error: str | None = None
    """Error description for failed requests (``path`` is ``None`` then)."""

    @property
    def ok(self) -> bool:
        """True when the request was answered with a path."""
        return self.path is not None and self.error is None

    @classmethod
    def from_error(
        cls,
        request: RouteRequest,
        engine: str,
        exc: BaseException,
        latency_s: float = 0.0,
    ) -> "RouteResponse":
        """The canonical failure response for an exception-reported error."""
        return cls(
            request=request,
            path=None,
            engine=engine,
            latency_s=latency_s,
            error=f"{type(exc).__name__}: {exc}",
        )

    def with_request(self, request: RouteRequest, **changes: object) -> "RouteResponse":
        """A copy of this response bound to another request (cache replays)."""
        return replace(self, request=request, **changes)
