"""Evaluation harness: metrics, categorization, replay, and reporting."""

from .categories import RegionCategory, band_label, distance_category, region_category
from .metrics import AggregateRow, QueryResult, accuracy_eq1, accuracy_eq4, aggregate
from .harness import EvaluationHarness, EvaluationReport
from .reporting import format_accuracy_table, format_series

__all__ = [
    "AggregateRow",
    "EvaluationHarness",
    "EvaluationReport",
    "QueryResult",
    "RegionCategory",
    "accuracy_eq1",
    "accuracy_eq4",
    "aggregate",
    "band_label",
    "distance_category",
    "format_accuracy_table",
    "format_series",
    "region_category",
]
