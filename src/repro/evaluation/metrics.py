"""Accuracy metrics and per-query measurement records."""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Iterable, Sequence

from ..network.road_network import RoadNetwork
from ..preferences.similarity import path_similarity, path_similarity_union
from ..routing.path import Path
from .categories import RegionCategory


@dataclass(frozen=True)
class QueryResult:
    """One evaluated routing query."""

    algorithm: str
    trajectory_id: int
    distance_band: int | None
    region_category: RegionCategory
    accuracy_eq1: float
    accuracy_eq4: float
    runtime_s: float
    ground_truth_km: float
    failed: bool = False


def accuracy_eq1(network: RoadNetwork, ground_truth: Path, constructed: Path) -> float:
    """Eq. 1 accuracy in percent (shared length over ground-truth length)."""
    return 100.0 * path_similarity(network, ground_truth, constructed)


def accuracy_eq4(network: RoadNetwork, ground_truth: Path, constructed: Path) -> float:
    """Eq. 4 accuracy in percent (shared length over union length)."""
    return 100.0 * path_similarity_union(network, ground_truth, constructed)


def mean_or_zero(values: Sequence[float]) -> float:
    return float(mean(values)) if values else 0.0


@dataclass(frozen=True)
class AggregateRow:
    """One aggregated cell of a results table (per algorithm per category)."""

    algorithm: str
    group: str
    query_count: int
    mean_accuracy_eq1: float
    mean_accuracy_eq4: float
    mean_runtime_s: float
    failure_rate: float


def aggregate(
    results: Iterable[QueryResult],
    group_label: str,
) -> list[AggregateRow]:
    """Aggregate a homogeneous group of query results per algorithm."""
    by_algorithm: dict[str, list[QueryResult]] = {}
    for result in results:
        by_algorithm.setdefault(result.algorithm, []).append(result)
    rows: list[AggregateRow] = []
    for algorithm, items in sorted(by_algorithm.items()):
        ok = [r for r in items if not r.failed]
        rows.append(
            AggregateRow(
                algorithm=algorithm,
                group=group_label,
                query_count=len(items),
                mean_accuracy_eq1=mean_or_zero([r.accuracy_eq1 for r in ok]),
                mean_accuracy_eq4=mean_or_zero([r.accuracy_eq4 for r in ok]),
                mean_runtime_s=mean_or_zero([r.runtime_s for r in ok]),
                failure_rate=(len(items) - len(ok)) / len(items) if items else 0.0,
            )
        )
    return rows
