"""Text rendering of evaluation results (the benchmark harness's output)."""

from __future__ import annotations

from typing import Sequence

from .metrics import AggregateRow


def format_accuracy_table(
    rows: Sequence[AggregateRow],
    title: str,
    use_eq4: bool = False,
    value: str = "accuracy",
) -> str:
    """Render aggregated rows as a figure-style text table.

    ``value`` selects what to print: ``"accuracy"`` (Figs. 10/11),
    ``"runtime"`` (Fig. 12), or ``"count"``.
    """
    groups: list[str] = []
    algorithms: list[str] = []
    for row in rows:
        if row.group not in groups:
            groups.append(row.group)
        if row.algorithm not in algorithms:
            algorithms.append(row.algorithm)

    lookup = {(row.algorithm, row.group): row for row in rows}

    lines = [title]
    header = f"{'Algorithm':<12}" + "".join(f"{group:>16}" for group in groups)
    lines.append(header)
    for algorithm in algorithms:
        cells: list[str] = []
        for group in groups:
            row = lookup.get((algorithm, group))
            if row is None or row.query_count == 0:
                cells.append(f"{'-':>16}")
                continue
            if value == "runtime":
                cells.append(f"{row.mean_runtime_s * 1000.0:>13.2f} ms")
            elif value == "count":
                cells.append(f"{row.query_count:>16d}")
            else:
                accuracy = row.mean_accuracy_eq4 if use_eq4 else row.mean_accuracy_eq1
                cells.append(f"{accuracy:>14.1f} %")
        lines.append(f"{algorithm:<12}" + "".join(cells))
    return "\n".join(lines)


def format_series(series: dict[str, Sequence[float]], x_labels: Sequence[str], title: str) -> str:
    """Render named numeric series over shared x labels (parameter sweeps)."""
    lines = [title]
    lines.append(f"{'x':<12}" + "".join(f"{label:>14}" for label in x_labels))
    for name, values in series.items():
        cells = "".join(f"{value:>14.2f}" for value in values)
        lines.append(f"{name:<12}" + cells)
    return "\n".join(lines)
